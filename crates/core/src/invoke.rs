//! The invocation engine: the level-0 mechanism (Lookup → Match → Apply),
//! the meta-invocation tower, and the bridge that lets script bodies reach
//! the meta-methods.
//!
//! ## Level 0
//!
//! The paper's base mechanism is implemented natively here — it is the
//! "primitive, level 0 invocation mechanism" whose "representation is not
//! visible and non-reflective, is not accommodated for change, and can be
//! implemented in a more efficient way". Its three phases:
//!
//! 1. **Lookup** — find the method (fixed section first, then extensible).
//! 2. **Match** — check the caller principal against the method's invoke
//!    ACL (security == encapsulation, enforced at this single point).
//! 3. **Apply** — pre-procedure (falsy ⇒ body skipped), body,
//!    post-procedure (falsy ⇒ error).
//!
//! ## The tower
//!
//! If the object has installed meta-invoke levels
//! ([`crate::MromObject::install_meta_invoke`]), an external invocation
//! enters at the *topmost* level: the meta-invoke method receives the
//! target method name and argument list as data (exactly Figure 1 — `Mfoo`
//! is passed as a parameter to `meta_invoke`), and descends one level each
//! time it performs `self.invoke(...)`, bottoming out at level 0.
//!
//! ## Fuel
//!
//! Every invocation shares a fuel ledger so hostile mobile code cannot hold
//! a host hostage; each script body is additionally bounded by the ledger
//! value at its entry, and cross-object nesting is bounded by
//! [`InvokeLimits::max_call_depth`].

use std::sync::atomic::{AtomicU8, Ordering};

use mrom_script::{Evaluator, HostContext, ScriptError, Vm};
use mrom_value::{ObjectId, Value};

use crate::error::MromError;
use crate::method::{MetaOp, Method, MethodBody};
use crate::object::MromObject;

/// Which engine executes mobile (script) method bodies.
///
/// Both engines are observationally identical — same results, same
/// errors, same fuel accounting, same host-call sequences — so this is a
/// pure performance switch. The default is [`ScriptEngine::Vm`]; set the
/// `MROM_SCRIPT_ENGINE` environment variable to `interp` (or call
/// [`set_script_engine`]) to fall back to the tree-walking interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptEngine {
    /// The original fuel-metered AST-walking interpreter.
    Interp,
    /// The register-bytecode VM, running bodies compiled at admission
    /// time (or lazily on first invocation) and cached on the `Program`.
    Vm,
}

/// 0 = undecided, 1 = interpreter, 2 = VM.
static SCRIPT_ENGINE: AtomicU8 = AtomicU8::new(0);

/// The engine currently executing script bodies. Resolved once from
/// `MROM_SCRIPT_ENGINE` (`interp`/`vm`) on first use; defaults to
/// [`ScriptEngine::Vm`].
pub fn script_engine() -> ScriptEngine {
    match SCRIPT_ENGINE.load(Ordering::Relaxed) {
        1 => ScriptEngine::Interp,
        2 => ScriptEngine::Vm,
        _ => {
            let engine = match std::env::var("MROM_SCRIPT_ENGINE").as_deref() {
                Ok("interp") | Ok("interpreter") => ScriptEngine::Interp,
                _ => ScriptEngine::Vm,
            };
            set_script_engine(engine);
            engine
        }
    }
}

/// Selects the script engine for the whole process, overriding the
/// environment. Safe to call at any time; running invocations finish on
/// the engine they started with.
pub fn set_script_engine(engine: ScriptEngine) {
    let code = match engine {
        ScriptEngine::Interp => 1,
        ScriptEngine::Vm => 2,
    };
    SCRIPT_ENGINE.store(code, Ordering::Relaxed);
}

/// Resource bounds applied to an invocation and everything nested in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeLimits {
    /// Script fuel ledger shared by the whole invocation tree.
    pub fuel: u64,
    /// Maximum number of installed meta-invoke levels honoured.
    pub max_tower: usize,
    /// Maximum nesting of method application (tower levels + self-calls).
    pub max_call_depth: usize,
}

impl Default for InvokeLimits {
    fn default() -> Self {
        InvokeLimits {
            fuel: mrom_script::DEFAULT_FUEL,
            max_tower: 8,
            max_call_depth: 32,
        }
    }
}

/// Node-level services available to running method bodies: inter-object
/// invocation, logging, clocks — whatever the embedding substrate offers.
///
/// The object model itself needs nothing from the world; `hadas` and the
/// node runtime implement this to give mobile code a (mediated, auditable)
/// door out of its object.
pub trait WorldHook {
    /// Performs a world operation on behalf of `caller`.
    ///
    /// # Errors
    ///
    /// [`MromError::World`] (or any model error) when the operation is
    /// unknown, denied, or fails.
    fn world_call(
        &mut self,
        caller: ObjectId,
        op: &str,
        args: &[Value],
    ) -> Result<Value, MromError>;
}

/// A world that offers nothing: every operation fails. The right hook for
/// objects that must stay fully self-contained.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWorld;

impl WorldHook for NoWorld {
    fn world_call(
        &mut self,
        _caller: ObjectId,
        op: &str,
        _args: &[Value],
    ) -> Result<Value, MromError> {
        Err(MromError::World(format!(
            "no world is attached; operation {op:?} unavailable"
        )))
    }
}

/// Execution environment handed to native method bodies.
///
/// A native body runs with the authority of the object itself and may
/// inspect the current caller, re-invoke methods (through the remaining
/// tower), and reach the world hook.
pub struct CallEnv<'a> {
    object: &'a mut MromObject,
    world: &'a mut dyn WorldHook,
    caller: ObjectId,
    level: usize,
    depth: usize,
    fuel: &'a mut u64,
    limits: &'a InvokeLimits,
}

impl<'a> CallEnv<'a> {
    /// The object the running method belongs to.
    pub fn object(&mut self) -> &mut MromObject {
        self.object
    }

    /// Read-only view of the object.
    pub fn object_ref(&self) -> &MromObject {
        self.object
    }

    /// The principal that invoked the currently running method.
    pub fn caller(&self) -> ObjectId {
        self.caller
    }

    /// Remaining fuel in the shared ledger.
    pub fn fuel_remaining(&self) -> u64 {
        *self.fuel
    }

    /// Invokes a method on the same object with the object's own authority,
    /// continuing at the current tower level (a meta-invoke body calling
    /// this descends one level; an ordinary body re-enters the full tower).
    ///
    /// # Errors
    ///
    /// Any invocation error.
    pub fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, MromError> {
        let self_id = self.object.id();
        dispatch(
            self.object,
            self.world,
            self_id,
            method,
            args,
            self.level,
            self.depth + 1,
            self.fuel,
            self.limits,
        )
    }

    /// Performs a world operation with the object's own authority.
    ///
    /// # Errors
    ///
    /// Whatever the hook returns.
    pub fn world_call(&mut self, op: &str, args: &[Value]) -> Result<Value, MromError> {
        let self_id = self.object.id();
        self.world.world_call(self_id, op, args)
    }
}

/// Invokes `method` on `object` as `caller` with default [`InvokeLimits`].
///
/// This is the model's single entry point for method invocation — the Rust
/// face of the `invoke` meta-method.
///
/// # Errors
///
/// Lookup, security, wrapping, script, fuel, and depth errors; see
/// [`MromError`].
///
/// # Example
///
/// ```
/// use mrom_core::{invoke, Method, MethodBody, NoWorld, ObjectBuilder};
/// use mrom_value::{IdGenerator, NodeId, Value};
///
/// # fn main() -> Result<(), mrom_core::MromError> {
/// let mut ids = IdGenerator::new(NodeId(1));
/// let mut obj = ObjectBuilder::new(ids.next_id())
///     .fixed_method(
///         "double",
///         Method::public(MethodBody::script("param x; return x * 2;")?),
///     )
///     .build();
/// let mut world = NoWorld;
/// let caller = ids.next_id();
/// let out = invoke(&mut obj, &mut world, caller, "double", &[Value::Int(21)])?;
/// assert_eq!(out, Value::Int(42));
/// # Ok(())
/// # }
/// ```
pub fn invoke(
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    caller: ObjectId,
    method: &str,
    args: &[Value],
) -> Result<Value, MromError> {
    invoke_with_limits(
        object,
        world,
        caller,
        method,
        args,
        &InvokeLimits::default(),
    )
}

/// [`invoke`] with explicit resource limits.
///
/// # Errors
///
/// As [`invoke`], plus [`MromError::TowerDepthExceeded`] when the object
/// has more installed meta-invoke levels than `limits.max_tower`.
pub fn invoke_with_limits(
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    caller: ObjectId,
    method: &str,
    args: &[Value],
    limits: &InvokeLimits,
) -> Result<Value, MromError> {
    let level = object.tower().len();
    if level > limits.max_tower {
        return Err(MromError::TowerDepthExceeded(limits.max_tower));
    }
    let mut fuel = limits.fuel;
    dispatch(
        object, world, caller, method, args, level, 0, &mut fuel, limits,
    )
}

/// Core dispatch: enter at `level`; levels > 0 route through the tower.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    caller: ObjectId,
    method: &str,
    args: &[Value],
    level: usize,
    depth: usize,
    fuel: &mut u64,
    limits: &InvokeLimits,
) -> Result<Value, MromError> {
    if depth > limits.max_call_depth {
        return Err(MromError::CallDepthExceeded(limits.max_call_depth));
    }
    // The tower may have shrunk while a body was running (deleteMethod on a
    // level): clamp rather than error, matching "the stack below me is
    // whatever the object currently has".
    let level = level.min(object.tower().len());
    if level > 0 {
        // Apply the tower method; every body it runs (pre, body, post)
        // performs nested invokes one level further down. Tower entries
        // are interned `Arc<str>`, so pinning the level name is a handle
        // clone, not a string copy.
        let meta_name = object.tower()[level - 1].clone();
        mrom_obs::tower_descend(
            object.id(),
            u32::try_from(level).unwrap_or(u32::MAX),
            &meta_name,
        );
        let meta_args = [Value::Str(method.to_owned()), Value::List(args.to_vec())];
        apply_method(
            object,
            world,
            caller,
            &meta_name,
            &meta_args,
            pack_levels(level - 1, level),
            depth + 1,
            fuel,
            limits,
        )
    } else {
        // The level-0 target: its nested invokes re-enter the full tower,
        // so every invocation — external or internal — is wrapped.
        let nested_level = object.tower().len();
        apply_method(
            object,
            world,
            caller,
            method,
            args,
            pack_levels(nested_level, 0),
            depth + 1,
            fuel,
            limits,
        )
    }
}

/// Pack the level pair into one argument. `apply_method` already passes
/// more arguments than fit in registers; an eleventh spills to the stack
/// on every application and costs a measurable fraction of the ~45 ns
/// invocation, so the two small levels share one slot. Low half: the
/// level nested invokes enter at; high half: the tower level this
/// application conceptually runs at (0 = base).
#[inline]
const fn pack_levels(nested: usize, tower: usize) -> u64 {
    (nested as u64) | ((tower as u64) << 32)
}

/// Phases 1-3 of the base mechanism on a single method.
///
/// When observability is on this opens one span per application — tower
/// descents therefore produce one *nested* span per level — and reports
/// the outcome and fuel delta on close. When off, the single
/// [`mrom_obs::enabled`] byte-check is the entire overhead.
#[allow(clippy::too_many_arguments)]
fn apply_method(
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    caller: ObjectId,
    name: &str,
    args: &[Value],
    levels: u64,
    depth: usize,
    fuel: &mut u64,
    limits: &InvokeLimits,
) -> Result<Value, MromError> {
    // One thread-local byte-read per application; `obs: false` then
    // short-circuits every instrumentation point inside the phases, so
    // this check is the entire disabled-path overhead. The traced variant
    // is outlined to keep the hot function small.
    if !mrom_obs::enabled() {
        return apply_phases(
            object,
            world,
            caller,
            name,
            args,
            (levels & 0xFFFF_FFFF) as usize,
            depth,
            fuel,
            limits,
            false,
        );
    }
    apply_method_traced(
        object, world, caller, name, args, levels, depth, fuel, limits,
    )
}

/// [`apply_method`] with the recorder on: wraps the phases in an
/// invocation span and reports outcome and fuel on close. `cold` keeps
/// the disabled path the straight-line fall-through.
#[allow(clippy::too_many_arguments)]
#[cold]
#[inline(never)]
fn apply_method_traced(
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    caller: ObjectId,
    name: &str,
    args: &[Value],
    levels: u64,
    depth: usize,
    fuel: &mut u64,
    limits: &InvokeLimits,
) -> Result<Value, MromError> {
    let nested_level = (levels & 0xFFFF_FFFF) as usize;
    let tower_level = (levels >> 32) as u32;
    let span = mrom_obs::invoke_start(object.id(), name, caller, tower_level);
    let fuel_entry = *fuel;
    let result = apply_phases(
        object,
        world,
        caller,
        name,
        args,
        nested_level,
        depth,
        fuel,
        limits,
        true,
    );
    let outcome = match &result {
        Ok(_) => "ok",
        Err(e) => e.label(),
    };
    mrom_obs::invoke_end(
        span,
        object.id(),
        name,
        outcome,
        fuel_entry.saturating_sub(*fuel),
    );
    result
}

/// The three phases themselves. `obs` is the observability gate read
/// once per application by [`apply_method`]; the phase-level
/// instrumentation points test that register instead of re-reading the
/// thread-local mode byte. Inlined into both the traced and untraced
/// callers so the disabled path stays one straight-line function, as it
/// was before instrumentation.
#[allow(clippy::too_many_arguments)]
#[inline]
fn apply_phases(
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    caller: ObjectId,
    name: &str,
    args: &[Value],
    nested_level: usize,
    depth: usize,
    fuel: &mut u64,
    limits: &InvokeLimits,
    obs: bool,
) -> Result<Value, MromError> {
    // Phase 1: Lookup, through the generation-stamped dispatch cache.
    // The returned handle is an `Arc`-backed clone pinning the method for
    // the whole application, so the running body may mutate the object
    // (including replacing this very method) without invalidating the
    // ongoing application — the paper's "dynamic update ... without
    // interference with ongoing computations" — at the cost of a refcount
    // bump, not a deep copy.
    let method: Method = object
        .lookup_method_traced(name, obs)
        .map(|(m, _)| m)
        .ok_or_else(|| MromError::NoSuchMethod {
            object: object.id(),
            name: name.to_owned(),
        })?;

    // Phase 2: Match.
    let allowed = object.acl_allows(method.invoke_acl(), caller);
    if obs {
        mrom_obs::acl_decision(object.id(), name, caller, allowed);
    }
    if !allowed {
        return Err(MromError::AccessDenied {
            object: object.id(),
            item: name.to_owned(),
            operation: "invoke",
            caller,
        });
    }

    // Phase 3: Apply.
    // 3.1 Pre-procedure: falsy return prevents the body from running.
    if let Some(pre) = method.pre() {
        let verdict = run_body(
            pre,
            object,
            world,
            caller,
            name,
            args,
            nested_level,
            depth,
            fuel,
            limits,
        )?;
        let passed = verdict.truthy();
        if obs {
            mrom_obs::wrap_verdict(object.id(), name, mrom_obs::WrapStage::Pre, passed);
        }
        if !passed {
            return Err(MromError::PreConditionFailed {
                object: object.id(),
                method: name.to_owned(),
            });
        }
    }

    // 3.2 Body.
    let result = run_body(
        method.body(),
        object,
        world,
        caller,
        name,
        args,
        nested_level,
        depth,
        fuel,
        limits,
    )?;

    // 3.3 Post-procedure: sees [result, ...args]; falsy return raises.
    // The result is moved into the argument list and moved back out after
    // the procedure returns, instead of being cloned for it.
    if let Some(post) = method.post() {
        let mut post_args = Vec::with_capacity(args.len() + 1);
        post_args.push(result);
        post_args.extend_from_slice(args);
        let verdict = run_body(
            post,
            object,
            world,
            caller,
            name,
            &post_args,
            nested_level,
            depth,
            fuel,
            limits,
        )?;
        let passed = verdict.truthy();
        if obs {
            mrom_obs::wrap_verdict(object.id(), name, mrom_obs::WrapStage::Post, passed);
        }
        if !passed {
            return Err(MromError::PostConditionFailed {
                object: object.id(),
                method: name.to_owned(),
            });
        }
        return Ok(post_args.swap_remove(0));
    }
    Ok(result)
}

/// Executes one body (native, script, or meta) in the object's context.
#[allow(clippy::too_many_arguments)]
fn run_body(
    body: &MethodBody,
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    caller: ObjectId,
    method_name: &str,
    args: &[Value],
    level: usize,
    depth: usize,
    fuel: &mut u64,
    limits: &InvokeLimits,
) -> Result<Value, MromError> {
    match body {
        MethodBody::Native(f) => {
            let mut env = CallEnv {
                object,
                world,
                caller,
                level,
                depth,
                fuel,
                limits,
            };
            f(&mut env, args)
        }
        MethodBody::Script(program) => {
            let entry_budget = *fuel;
            if entry_budget == 0 {
                return Err(MromError::Script(ScriptError::FuelExhausted {
                    budget: limits.fuel,
                }));
            }
            let mut host = ScriptHost {
                object,
                world,
                invocation_caller: caller,
                level,
                depth,
                fuel,
                limits,
                ics: Vec::new(),
                ic_hits: 0,
                ic_misses: 0,
            };
            let (outcome, used, host_calls) = match script_engine() {
                ScriptEngine::Interp => {
                    let mut evaluator = Evaluator::with_fuel(&mut host, entry_budget);
                    let outcome = evaluator.run(program, args);
                    let used = evaluator.fuel_used();
                    let host_calls = evaluator.host_calls();
                    (outcome, used, host_calls)
                }
                ScriptEngine::Vm => {
                    // Admission normally precompiles; `compiled()` is then
                    // a cache read. Bodies that skipped admission compile
                    // here once and reuse the cache thereafter.
                    let compiled = program.compiled();
                    let mut vm = Vm::with_fuel(&mut host, entry_budget);
                    let outcome = vm.run(&compiled, args);
                    let used = vm.fuel_used();
                    let host_calls = vm.host_calls();
                    (outcome, used, host_calls)
                }
            };
            // Nested dispatches already deducted their share from the
            // ledger during the run; deduct the evaluator's own steps now.
            *host.fuel = host.fuel.saturating_sub(used);
            mrom_obs::script_run(used, host_calls);
            if host.ic_hits + host.ic_misses > 0 {
                mrom_obs::script_ic(host.ic_hits, host.ic_misses);
            }
            outcome.map_err(MromError::from)
        }
        MethodBody::Meta(op) => perform_meta(
            object,
            world,
            caller,
            *op,
            method_name,
            args,
            level,
            depth,
            fuel,
            limits,
        ),
    }
}

// ---------------------------------------------------------------------------
// Meta-operations
// ---------------------------------------------------------------------------

fn want_arity(op: MetaOp, args: &[Value], allowed: &[usize]) -> Result<(), MromError> {
    if allowed.contains(&args.len()) {
        Ok(())
    } else {
        Err(MromError::BadDescriptor(format!(
            "{} expects {:?} arguments, got {}",
            op.method_name(),
            allowed,
            args.len()
        )))
    }
}

fn want_name(op: MetaOp, args: &[Value], i: usize) -> Result<&str, MromError> {
    args.get(i).and_then(Value::as_str).ok_or_else(|| {
        MromError::BadDescriptor(format!(
            "{} argument {i} must be an item name string",
            op.method_name()
        ))
    })
}

/// Executes one of the nine reflective meta-operations with `principal`'s
/// authority.
#[allow(clippy::too_many_arguments)]
fn perform_meta(
    object: &mut MromObject,
    world: &mut dyn WorldHook,
    principal: ObjectId,
    op: MetaOp,
    _method_name: &str,
    args: &[Value],
    level: usize,
    depth: usize,
    fuel: &mut u64,
    limits: &InvokeLimits,
) -> Result<Value, MromError> {
    mrom_obs::meta_op(object.id(), op.method_name());
    match op {
        MetaOp::GetDataItem => {
            want_arity(op, args, &[1])?;
            object.data_descriptor(principal, want_name(op, args, 0)?)
        }
        MetaOp::SetDataItem => {
            want_arity(op, args, &[2])?;
            let name = want_name(op, args, 0)?;
            object.set_data_item(principal, name, &args[1])?;
            Ok(Value::Null)
        }
        MetaOp::AddDataItem => {
            want_arity(op, args, &[2, 3])?;
            let name = want_name(op, args, 0)?;
            if args.len() == 2 {
                object.add_data(principal, name, args[1].clone())?;
            } else {
                let mut item = crate::item::DataItem::new(args[1].clone());
                item.apply_descriptor(&args[2])
                    .map_err(|e| MromError::BadDescriptor(e.to_string()))?;
                object.add_data_item(principal, name, item)?;
            }
            Ok(Value::Null)
        }
        MetaOp::DeleteDataItem => {
            want_arity(op, args, &[1])?;
            object.delete_data(principal, want_name(op, args, 0)?)?;
            Ok(Value::Null)
        }
        MetaOp::GetMethod => {
            want_arity(op, args, &[1])?;
            object.method_descriptor(principal, want_name(op, args, 0)?)
        }
        MetaOp::SetMethod => {
            want_arity(op, args, &[2])?;
            let name = want_name(op, args, 0)?;
            object.set_method(principal, name, &args[1])?;
            Ok(Value::Null)
        }
        MetaOp::AddMethod => {
            want_arity(op, args, &[2])?;
            let name = want_name(op, args, 0)?;
            let method = method_from_arg(&args[1])?;
            object.add_method(principal, name, method)?;
            Ok(Value::Null)
        }
        MetaOp::DeleteMethod => {
            want_arity(op, args, &[1])?;
            object.delete_method(principal, want_name(op, args, 0)?)?;
            Ok(Value::Null)
        }
        MetaOp::Invoke => {
            want_arity(op, args, &[1, 2])?;
            let name = want_name(op, args, 0)?;
            // Borrow the argument list straight out of the meta-call frame
            // — rebuilding it per tower level was the dominant allocation
            // of a descent.
            let inner_args: &[Value] = match args.get(1) {
                None => &[],
                Some(Value::List(items)) => items,
                Some(other) => {
                    return Err(MromError::BadDescriptor(format!(
                        "invoke arguments must be a list, got {}",
                        other.kind()
                    )))
                }
            };
            dispatch(
                object,
                world,
                principal,
                name,
                inner_args,
                level,
                depth + 1,
                fuel,
                limits,
            )
        }
        MetaOp::GetStats => {
            want_arity(op, args, &[0])?;
            Ok(crate::stats::stats_value(object.id()))
        }
        MetaOp::GetEffects => {
            want_arity(op, args, &[0, 1])?;
            let table = object.effects();
            match args.first() {
                None => Ok(crate::effects::effects_value(&table)),
                Some(Value::Str(name)) => match table.get(name) {
                    Some(sig) => Ok(sig.to_value()),
                    None => Err(MromError::NoSuchMethod {
                        object: object.id(),
                        name: name.clone(),
                    }),
                },
                Some(other) => Err(MromError::BadDescriptor(format!(
                    "getEffects expects a method-name string, got {:?}",
                    other.kind()
                ))),
            }
        }
        MetaOp::GetTelemetry => {
            want_arity(op, args, &[0])?;
            Ok(crate::stats::telemetry_value(object.id()))
        }
    }
}

/// Interprets the second argument of `addMethod`: a full method descriptor
/// (map with a `body` key) or a bare body (source text / program tree /
/// meta tag).
fn method_from_arg(v: &Value) -> Result<Method, MromError> {
    if let Some(m) = v.as_map() {
        if m.contains_key("body") {
            return Method::from_descriptor(v);
        }
    }
    Ok(Method::new(MethodBody::from_value(v)?))
}

// ---------------------------------------------------------------------------
// Script bridge
// ---------------------------------------------------------------------------

/// One `self.*` call site's inline-cache state.
///
/// Only data accesses that resolved to a **fixed-section** item are
/// cached: fixed indices, ACLs, and type constraints are immutable for
/// the object's lifetime (`setDataItem` refuses the fixed section), so a
/// slow-path success proves the access verdict for every later hit at
/// the same generation. Everything else — extensible items, denials,
/// meta-methods, world calls — stays on the slow path, which produces
/// the exact errors and events of the interpreter.
enum IcEntry {
    /// Site never resolved yet.
    Empty,
    /// Site resolved to fixed-section data item `index` named `item`,
    /// stamped with the object generation at resolution time.
    FixedData {
        gen: u64,
        index: usize,
        item: Box<str>,
    },
    /// Site resolved to something the cache cannot speed up.
    Bypass,
}

/// Bridges `self.*` host calls from a running script body into the object
/// model. All calls execute with the authority of the object itself.
struct ScriptHost<'a> {
    object: &'a mut MromObject,
    world: &'a mut dyn WorldHook,
    invocation_caller: ObjectId,
    level: usize,
    depth: usize,
    fuel: &'a mut u64,
    limits: &'a InvokeLimits,
    /// Per-site inline caches, indexed by the compiler's static call-site
    /// numbering; grown on demand, alive for one script run.
    ics: Vec<IcEntry>,
    ic_hits: u64,
    ic_misses: u64,
}

impl ScriptHost<'_> {
    fn meta(&mut self, op: MetaOp, args: &[Value]) -> Result<Value, MromError> {
        let self_id = self.object.id();
        perform_meta(
            self.object,
            self.world,
            self_id,
            op,
            op.method_name(),
            args,
            self.level,
            self.depth,
            self.fuel,
            self.limits,
        )
    }
}

impl HostContext for ScriptHost<'_> {
    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        let self_id = self.object.id();
        let result: Result<Value, MromError> = match name {
            // Ordinary value access.
            "get" => match args {
                [Value::Str(item)] => self.object.read_data(self_id, item),
                _ => Err(MromError::BadDescriptor("self.get expects (name)".into())),
            },
            "set" => match args {
                [Value::Str(item), v] => self
                    .object
                    .write_data(self_id, item, v.clone())
                    .map(|()| Value::Null),
                _ => Err(MromError::BadDescriptor(
                    "self.set expects (name, value)".into(),
                )),
            },
            // The nine meta-methods, snake_cased for script ergonomics.
            "get_data_item" => self.meta(MetaOp::GetDataItem, args),
            "set_data_item" => self.meta(MetaOp::SetDataItem, args),
            "add_data_item" => self.meta(MetaOp::AddDataItem, args),
            "delete_data_item" => self.meta(MetaOp::DeleteDataItem, args),
            "get_method" => self.meta(MetaOp::GetMethod, args),
            "set_method" => self.meta(MetaOp::SetMethod, args),
            "add_method" => self.meta(MetaOp::AddMethod, args),
            "delete_method" => self.meta(MetaOp::DeleteMethod, args),
            "invoke" => self.meta(MetaOp::Invoke, args),
            "get_stats" => self.meta(MetaOp::GetStats, args),
            "get_effects" => self.meta(MetaOp::GetEffects, args),
            "get_telemetry" => self.meta(MetaOp::GetTelemetry, args),
            // Tower manipulation.
            "install_meta_invoke" => match args {
                [Value::Str(m)] => self
                    .object
                    .install_meta_invoke(self_id, m)
                    .map(|()| Value::Null),
                _ => Err(MromError::BadDescriptor(
                    "self.install_meta_invoke expects (method_name)".into(),
                )),
            },
            "uninstall_meta_invoke" => match args {
                [] => self
                    .object
                    .uninstall_meta_invoke(self_id)
                    .map(|popped| popped.map_or(Value::Null, Value::from)),
                _ => Err(MromError::BadDescriptor(
                    "self.uninstall_meta_invoke expects no arguments".into(),
                )),
            },
            // Self-representation.
            "id" => Ok(Value::ObjectRef(self_id)),
            "origin" => Ok(Value::ObjectRef(self.object.origin())),
            "class" => Ok(Value::from(self.object.class_name())),
            "caller" => Ok(Value::ObjectRef(self.invocation_caller)),
            "describe" => Ok(self.object.describe(self_id)),
            "has_data" => match args {
                [Value::Str(item)] => Ok(Value::Bool(self.object.has_data(self_id, item))),
                _ => Err(MromError::BadDescriptor(
                    "self.has_data expects (name)".into(),
                )),
            },
            "has_method" => match args {
                [Value::Str(m)] => Ok(Value::Bool(self.object.has_method(self_id, m))),
                _ => Err(MromError::BadDescriptor(
                    "self.has_method expects (name)".into(),
                )),
            },
            "list_data" => Ok(Value::List(
                self.object
                    .list_data(self_id)
                    .into_iter()
                    .map(|(n, _)| Value::Str(n))
                    .collect(),
            )),
            "list_methods" => Ok(Value::List(
                self.object
                    .list_methods(self_id)
                    .into_iter()
                    .map(|(n, _)| Value::Str(n))
                    .collect(),
            )),
            // Everything else goes to the world.
            other => self.world.world_call(self_id, other, args),
        };
        result.map_err(ScriptError::from)
    }

    fn host_call_site(
        &mut self,
        site: u32,
        name: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        // Only the data fast paths are worth caching; every other call is
        // dominated by its own work.
        let item_name = match (name, args) {
            ("get" | "get_data_item", [Value::Str(item)]) => item,
            ("set", [Value::Str(item), _]) => item,
            _ => return self.host_call(name, args),
        };
        let site = site as usize;
        if self.ics.len() <= site {
            self.ics.resize_with(site + 1, || IcEntry::Empty);
        }

        if let IcEntry::FixedData { gen, index, item } = &self.ics[site] {
            if *gen == self.object.generation() && item.as_ref() == item_name.as_str() {
                let index = *index;
                self.ic_hits += 1;
                match name {
                    "get" => {
                        if let Some(v) = self.object.fixed_data_value(index) {
                            return Ok(v);
                        }
                    }
                    "set" => {
                        // Re-runs the value-dependent half (type
                        // constraint) so a bad write errs exactly as the
                        // slow path would.
                        return self
                            .object
                            .fixed_data_write(index, item_name, args[1].clone())
                            .map(|()| Value::Null)
                            .map_err(ScriptError::from);
                    }
                    _ => {
                        // `getDataItem` is observable as a meta-op even on
                        // the fast path.
                        mrom_obs::meta_op(self.object.id(), "getDataItem");
                        if let Some(desc) = self.object.fixed_data_descriptor(index) {
                            return Ok(desc);
                        }
                    }
                }
                // A cached index out of range cannot happen (fixed section
                // never shrinks); if it somehow does, fall back safely.
                self.ic_hits -= 1;
            }
        }

        self.ic_misses += 1;
        let result = self.host_call(name, args);
        if result.is_ok() {
            // The slow path just proved the verdict; remember where the
            // item lives if it is cacheable (fixed section only).
            self.ics[site] = match self.object.fixed_data_index(item_name) {
                Some(index) => IcEntry::FixedData {
                    gen: self.object.generation(),
                    index,
                    item: item_name.as_str().into(),
                },
                None => IcEntry::Bypass,
            };
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::DataItem;
    use crate::security::Acl;
    use mrom_value::{IdGenerator, NodeId};

    fn ids() -> IdGenerator {
        IdGenerator::new(NodeId(7))
    }

    fn counter_object(gen: &mut IdGenerator) -> MromObject {
        crate::object::ObjectBuilder::new(gen.next_id())
            .class("counter")
            .fixed_data(
                "count",
                DataItem::public(Value::Int(0)).with_write_acl(Acl::Origin),
            )
            .fixed_method(
                "bump",
                Method::public(
                    MethodBody::script(
                        "let c = self.get(\"count\"); self.set(\"count\", c + 1); return c + 1;",
                    )
                    .unwrap(),
                ),
            )
            .fixed_method(
                "add",
                Method::public(MethodBody::script("param a; param b; return a + b;").unwrap()),
            )
            .build()
    }

    #[test]
    fn level0_invocation_runs_script_bodies() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let caller = gen.next_id();
        let mut world = NoWorld;
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(obj.read_data(caller, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn lookup_failure_and_acl_denial() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        let mut world = NoWorld;
        assert!(matches!(
            invoke(&mut obj, &mut world, stranger, "ghost", &[]),
            Err(MromError::NoSuchMethod { .. })
        ));
        obj.add_method(
            me,
            "private",
            Method::new(MethodBody::script("return 1;").unwrap()),
        )
        .unwrap();
        assert!(matches!(
            invoke(&mut obj, &mut world, stranger, "private", &[]),
            Err(MromError::AccessDenied { .. })
        ));
        assert_eq!(
            invoke(&mut obj, &mut world, me, "private", &[]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn native_bodies_get_a_call_env() {
        let mut gen = ids();
        let id = gen.next_id();
        let mut obj = crate::object::ObjectBuilder::new(id)
            .fixed_data("x", DataItem::public(Value::Int(5)))
            .fixed_method(
                "native_read",
                Method::public(MethodBody::native(|env, _args| {
                    let me = env.object_ref().id();
                    env.object().read_data(me, "x")
                })),
            )
            .build();
        let mut world = NoWorld;
        let caller = gen.next_id();
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "native_read", &[]).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn pre_procedure_vetoes_body() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        // Attach a pre that only admits positive first arguments.
        obj.add_method(
            me,
            "guarded",
            Method::public(MethodBody::script("param x; return x * 10;").unwrap())
                .with_pre(MethodBody::script("param x; return x > 0;").unwrap()),
        )
        .unwrap();
        assert_eq!(
            invoke(&mut obj, &mut world, me, "guarded", &[Value::Int(3)]).unwrap(),
            Value::Int(30)
        );
        assert!(matches!(
            invoke(&mut obj, &mut world, me, "guarded", &[Value::Int(-3)]),
            Err(MromError::PreConditionFailed { .. })
        ));
    }

    #[test]
    fn post_procedure_checks_result() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        // Post sees [result, ...args] and asserts result == a + b.
        obj.add_method(
            me,
            "checked_add",
            Method::public(MethodBody::script("param a; param b; return a + b;").unwrap())
                .with_post(
                    MethodBody::script("param r; param a; param b; return r == a + b;").unwrap(),
                ),
        )
        .unwrap();
        assert_eq!(
            invoke(
                &mut obj,
                &mut world,
                me,
                "checked_add",
                &[Value::Int(2), Value::Int(3)]
            )
            .unwrap(),
            Value::Int(5)
        );
        // A buggy body caught by its post-procedure.
        obj.add_method(
            me,
            "bad_add",
            Method::public(MethodBody::script("param a; param b; return a - b;").unwrap())
                .with_post(
                    MethodBody::script("param r; param a; param b; return r == a + b;").unwrap(),
                ),
        )
        .unwrap();
        assert!(matches!(
            invoke(
                &mut obj,
                &mut world,
                me,
                "bad_add",
                &[Value::Int(2), Value::Int(3)]
            ),
            Err(MromError::PostConditionFailed { .. })
        ));
    }

    #[test]
    fn meta_methods_are_invocable() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        let mut world = NoWorld;
        // Stranger can use introspective meta-methods...
        let desc = invoke(
            &mut obj,
            &mut world,
            stranger,
            "getMethod",
            &[Value::from("bump")],
        )
        .unwrap();
        assert_eq!(desc.as_map().unwrap()["section"], Value::from("fixed"));
        // ...but not mutating ones (their invoke ACL is origin-only).
        assert!(matches!(
            invoke(
                &mut obj,
                &mut world,
                stranger,
                "addDataItem",
                &[Value::from("x"), Value::Int(1)],
            ),
            Err(MromError::AccessDenied { .. })
        ));
        // The origin can.
        invoke(
            &mut obj,
            &mut world,
            me,
            "addDataItem",
            &[Value::from("x"), Value::Int(1)],
        )
        .unwrap();
        assert_eq!(obj.read_data(me, "x").unwrap(), Value::Int(1));
    }

    #[test]
    fn get_effects_meta_method_reports_signatures() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        // Zero arguments: the full method → signature table.
        let all = invoke(&mut obj, &mut world, me, "getEffects", &[]).unwrap();
        let map = all.as_map().unwrap();
        assert!(map.contains_key("bump") && map.contains_key("invoke"));
        // One argument: a single method's signature.
        let sig = invoke(
            &mut obj,
            &mut world,
            me,
            "getEffects",
            &[Value::from("bump")],
        )
        .unwrap();
        let sig = sig.as_map().unwrap();
        assert_eq!(sig["structural"], Value::Bool(false));
        assert_eq!(sig["idempotent"], Value::Bool(false), "read-modify-write");
        let add = invoke(
            &mut obj,
            &mut world,
            me,
            "getEffects",
            &[Value::from("add")],
        )
        .unwrap();
        assert_eq!(add.as_map().unwrap()["pure"], Value::Bool(true));
        // Scripts reach the same surface through self.get_effects(...).
        obj.add_method(
            me,
            "introspect",
            Method::public(MethodBody::script("return self.get_effects(\"add\");").unwrap()),
        )
        .unwrap();
        let via_script = invoke(&mut obj, &mut world, me, "introspect", &[]).unwrap();
        assert_eq!(via_script.as_map().unwrap()["pure"], Value::Bool(true));
        // Structural change invalidates the memo: new methods show up.
        obj.add_method(
            me,
            "fresh",
            Method::public(MethodBody::script("return 1;").unwrap()),
        )
        .unwrap();
        let all = invoke(&mut obj, &mut world, me, "getEffects", &[]).unwrap();
        assert!(all.as_map().unwrap().contains_key("fresh"));
        // Unknown names are an error, not a null.
        assert!(matches!(
            invoke(
                &mut obj,
                &mut world,
                me,
                "getEffects",
                &[Value::from("ghost")]
            ),
            Err(MromError::NoSuchMethod { .. })
        ));
    }

    #[test]
    fn invoke_meta_method_invokes() {
        // invoke("invoke", ["add", [1, 2]]) — the meta-method calling itself,
        // the paper's "invoke ... may or may not be invoked by a copy of
        // itself".
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let caller = gen.next_id();
        let mut world = NoWorld;
        let out = invoke(
            &mut obj,
            &mut world,
            caller,
            "invoke",
            &[
                Value::from("add"),
                Value::list([Value::Int(1), Value::Int(2)]),
            ],
        )
        .unwrap();
        assert_eq!(out, Value::Int(3));
        // Nested twice.
        let out = invoke(
            &mut obj,
            &mut world,
            caller,
            "invoke",
            &[
                Value::from("invoke"),
                Value::list([
                    Value::from("add"),
                    Value::list([Value::Int(2), Value::Int(3)]),
                ]),
            ],
        )
        .unwrap();
        assert_eq!(out, Value::Int(5));
    }

    #[test]
    fn scripts_can_mutate_their_own_structure() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        // A method that installs another method, then calls it.
        obj.add_method(
            me,
            "self_extend",
            Method::public(
                MethodBody::script(
                    r#"
                    self.add_method("made", {"body": "return 99;", "invoke_acl": "public"});
                    return self.invoke("made", []);
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
        let caller = gen.next_id();
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "self_extend", &[]).unwrap(),
            Value::Int(99)
        );
        assert!(obj.has_method(caller, "made"));
    }

    #[test]
    fn two_level_tower_matches_figure_1() {
        // Reproduces Figure 1: invoking Mfoo on Obar with a meta_invoke
        // installed routes through meta_invoke, which receives Mfoo as a
        // parameter and invokes it at level 0.
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_data(me, "trace", Value::list([])).unwrap();
        obj.set_data_item(
            me,
            "trace",
            &Value::map([("read_acl", Value::from("public"))]),
        )
        .unwrap();
        obj.add_method(
            me,
            "meta_invoke",
            Method::public(
                MethodBody::script(
                    r#"
                    param mname;
                    param margs;
                    let t = self.get("trace");
                    self.set("trace", push(t, "pre:" + mname));
                    let result = self.invoke(mname, margs);
                    t = self.get("trace");
                    self.set("trace", push(t, "post:" + mname));
                    return result;
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
        obj.install_meta_invoke(me, "meta_invoke").unwrap();

        let caller = gen.next_id();
        let out = invoke(
            &mut obj,
            &mut world,
            caller,
            "add",
            &[Value::Int(20), Value::Int(22)],
        )
        .unwrap();
        assert_eq!(out, Value::Int(42));
        assert_eq!(
            obj.read_data(caller, "trace").unwrap(),
            Value::list([Value::from("pre:add"), Value::from("post:add")])
        );
    }

    #[test]
    fn tower_levels_stack_in_order() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_data(me, "trace", Value::list([])).unwrap();
        for (name, label) in [("mi1", "level1"), ("mi2", "level2")] {
            obj.add_method(
                me,
                name,
                Method::public(
                    MethodBody::script(&format!(
                        r#"
                        param mname;
                        param margs;
                        self.set("trace", push(self.get("trace"), "{label}"));
                        return self.invoke(mname, margs);
                        "#
                    ))
                    .unwrap(),
                ),
            )
            .unwrap();
            obj.install_meta_invoke(me, name).unwrap();
        }
        let out = invoke(
            &mut obj,
            &mut world,
            me,
            "add",
            &[Value::Int(1), Value::Int(1)],
        )
        .unwrap();
        assert_eq!(out, Value::Int(2));
        // Topmost level (level2, installed last) runs first.
        assert_eq!(
            obj.read_data(me, "trace").unwrap(),
            Value::list([Value::from("level2"), Value::from("level1")])
        );
    }

    #[test]
    fn meta_invoke_can_cut_off_the_target() {
        // The paper's database-maintenance behaviour: a meta-invoke that
        // answers without ever reaching the target method.
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "maintenance",
            Method::public(
                MethodBody::script("return \"database is down for maintenance\";").unwrap(),
            ),
        )
        .unwrap();
        obj.install_meta_invoke(me, "maintenance").unwrap();
        let caller = gen.next_id();
        let out = invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap();
        assert_eq!(out, Value::from("database is down for maintenance"));
        // Uninstall restores normal semantics.
        obj.uninstall_meta_invoke(me).unwrap();
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn tower_overflow_is_rejected() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "mi",
            Method::public(
                MethodBody::script("param m; param a; return self.invoke(m, a);").unwrap(),
            ),
        )
        .unwrap();
        for _ in 0..9 {
            obj.install_meta_invoke(me, "mi").unwrap();
        }
        assert!(matches!(
            invoke(
                &mut obj,
                &mut world,
                me,
                "add",
                &[Value::Int(1), Value::Int(1)]
            ),
            Err(MromError::TowerDepthExceeded(8))
        ));
    }

    #[test]
    fn runaway_self_invocation_hits_depth_limit() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "loop_forever",
            Method::public(
                MethodBody::script("return self.invoke(\"loop_forever\", []);").unwrap(),
            ),
        )
        .unwrap();
        let err = invoke(&mut obj, &mut world, me, "loop_forever", &[]).unwrap_err();
        assert!(
            matches!(err, MromError::CallDepthExceeded(_)) || matches!(err, MromError::Script(_)),
            "got {err}"
        );
    }

    #[test]
    fn hostile_infinite_loop_burns_out() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "spin",
            Method::public(MethodBody::script("while (true) { }").unwrap()),
        )
        .unwrap();
        let limits = InvokeLimits {
            fuel: 5_000,
            ..InvokeLimits::default()
        };
        let err = invoke_with_limits(&mut obj, &mut world, me, "spin", &[], &limits).unwrap_err();
        assert!(matches!(
            err,
            MromError::Script(ScriptError::FuelExhausted { .. })
        ));
    }

    #[test]
    fn caller_is_visible_to_bodies() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "who",
            Method::public(MethodBody::script("return self.caller();").unwrap()),
        )
        .unwrap();
        let caller = gen.next_id();
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "who", &[]).unwrap(),
            Value::ObjectRef(caller)
        );
    }

    #[test]
    fn script_self_representation_calls() {
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "introspect",
            Method::public(
                MethodBody::script(
                    r#"
                    return {
                        "class": self.class(),
                        "has_bump": self.has_method("bump"),
                        "has_ghost": self.has_method("ghost"),
                        "data": self.list_data()
                    };
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
        let out = invoke(&mut obj, &mut world, me, "introspect", &[]).unwrap();
        let m = out.as_map().unwrap();
        assert_eq!(m["class"], Value::from("counter"));
        assert_eq!(m["has_bump"], Value::Bool(true));
        assert_eq!(m["has_ghost"], Value::Bool(false));
        assert!(m["data"].as_list().unwrap().contains(&Value::from("count")));
    }

    #[test]
    fn world_calls_route_through_the_hook() {
        struct EchoWorld;
        impl WorldHook for EchoWorld {
            fn world_call(
                &mut self,
                caller: ObjectId,
                op: &str,
                args: &[Value],
            ) -> Result<Value, MromError> {
                Ok(Value::map([
                    ("op", Value::from(op)),
                    ("caller", Value::ObjectRef(caller)),
                    ("args", Value::List(args.to_vec())),
                ]))
            }
        }
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = EchoWorld;
        obj.add_method(
            me,
            "reach_out",
            Method::public(MethodBody::script("return self.ping(1, 2);").unwrap()),
        )
        .unwrap();
        let out = invoke(&mut obj, &mut world, me, "reach_out", &[]).unwrap();
        let m = out.as_map().unwrap();
        assert_eq!(m["op"], Value::from("ping"));
        assert_eq!(m["caller"], Value::ObjectRef(me));
    }

    #[test]
    fn replaced_method_mid_flight_does_not_disturb_running_body() {
        // A body replaces *itself* and still completes under its old
        // definition (handles are cloned at lookup).
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "replace_self",
            Method::public(
                MethodBody::script(
                    r#"
                    self.set_method("replace_self", {"body": "return \"new\";"});
                    return "old";
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
        assert_eq!(
            invoke(&mut obj, &mut world, me, "replace_self", &[]).unwrap(),
            Value::from("old")
        );
        assert_eq!(
            invoke(&mut obj, &mut world, me, "replace_self", &[]).unwrap(),
            Value::from("new")
        );
    }

    #[test]
    fn tower_shrink_during_invoke_clamps_to_current_height() {
        // A tower level that uninstalls *itself* mid-flight: the nested
        // invoke was issued for one level further down, but the tower has
        // shrunk under it — dispatch clamps to the current height instead
        // of erroring, and the target still runs exactly once.
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "self_removing",
            Method::public(
                MethodBody::script(
                    r#"
                    param m;
                    param a;
                    self.uninstall_meta_invoke();
                    return self.invoke(m, a);
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
        obj.install_meta_invoke(me, "self_removing").unwrap();
        let caller = gen.next_id();
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
            Value::Int(1)
        );
        assert!(obj.tower().is_empty());
        // The level is gone: subsequent invocations run bare.
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn deleting_a_tower_level_mid_flight_is_not_served_stale() {
        // Same clamp, driven through deleteMethod: the level removes its
        // own method (and thereby its tower entry) before delegating.
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_method(
            me,
            "one_shot",
            Method::public(
                MethodBody::script(
                    r#"
                    param m;
                    param a;
                    self.delete_method("one_shot");
                    return self.invoke(m, a);
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
        obj.install_meta_invoke(me, "one_shot").unwrap();
        assert_eq!(
            invoke(&mut obj, &mut world, me, "bump", &[]).unwrap(),
            Value::Int(1)
        );
        assert!(obj.tower().is_empty());
        assert!(obj.find_method("one_shot").is_none());
        assert_eq!(
            invoke(&mut obj, &mut world, me, "bump", &[]).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn charging_pre_procedure_on_meta_invoke() {
        // The paper's "code renting": a level-1 invoke whose pre-procedure
        // charges for every method invocation on the object.
        let mut gen = ids();
        let mut obj = counter_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        obj.add_data(me, "credits", Value::Int(2)).unwrap();
        obj.add_method(
            me,
            "meta_invoke",
            Method::public(
                MethodBody::script("param m; param a; return self.invoke(m, a);").unwrap(),
            )
            .with_pre(
                MethodBody::script(
                    r#"
                    let c = self.get("credits");
                    if (c <= 0) { return false; }
                    self.set("credits", c - 1);
                    return true;
                    "#,
                )
                .unwrap(),
            ),
        )
        .unwrap();
        obj.install_meta_invoke(me, "meta_invoke").unwrap();
        let caller = gen.next_id();
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
            Value::Int(2)
        );
        // Credits exhausted: the pre-procedure now vetoes every invocation.
        assert!(matches!(
            invoke(&mut obj, &mut world, caller, "bump", &[]),
            Err(MromError::PreConditionFailed { .. })
        ));
    }
}
