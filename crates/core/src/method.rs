//! Methods: bodies, pre-/post-procedures (wrapping), meta-operations, and
//! per-method security.

use std::fmt;
use std::sync::Arc;

use mrom_script::Program;
use mrom_value::{Value, ValueError};

use crate::error::MromError;
use crate::invoke::CallEnv;
use crate::security::Acl;

/// Signature of a native (host-resident) method body.
///
/// Native bodies run at full Rust speed and may reach node services through
/// the [`CallEnv`], but they cannot migrate: an object carrying one is not
/// self-contained with respect to mobility and [`crate::MromObject::migration_image`]
/// refuses to serialize it.
pub type NativeFn = dyn Fn(&mut CallEnv<'_>, &[Value]) -> Result<Value, MromError> + Send + Sync;

/// The nine reflective meta-operations the paper requires every object to
/// carry within itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaOp {
    /// `getDataItem(name)` → descriptor map.
    GetDataItem,
    /// `setDataItem(name, descriptor)` — change item properties/value.
    SetDataItem,
    /// `addDataItem(name, value-or-descriptor)`.
    AddDataItem,
    /// `deleteDataItem(name)`.
    DeleteDataItem,
    /// `getMethod(name)` → descriptor map.
    GetMethod,
    /// `setMethod(name, descriptor)` — replace body, attach pre/post, ACLs.
    SetMethod,
    /// `addMethod(name, descriptor-or-program)`.
    AddMethod,
    /// `deleteMethod(name)`.
    DeleteMethod,
    /// `invoke(name, args)` — the most important meta-method.
    Invoke,
    /// `getStats()` → live behavioural counters for this object from the
    /// observability layer. A reproduction extension (not in the paper's
    /// nine): self-representation applied to *behaviour*, answering "what
    /// did my invocations do" with the same machinery that answers
    /// structural questions.
    GetStats,
    /// `getEffects()` / `getEffects(name)` → interprocedural effect
    /// signatures for this object's methods, computed by the static
    /// analyzer over the method call graph. A reproduction extension
    /// (not in the paper's nine): self-representation applied to
    /// *future* behaviour — what a method may read, write, and call —
    /// answering it with the same reflective machinery that answers
    /// structural questions.
    GetEffects,
    /// `getTelemetry()` → the windowed telemetry snapshot of the
    /// recording thread: per-object invocation profiles, the
    /// site-to-site call matrix, and per-link delivery windows. A
    /// reproduction extension (not in the paper's nine): the flight
    /// recorder's aggregate view surfaced through the same reflective
    /// door as `getStats`, so a mobile object can ask "what is hot
    /// here" wherever it lands.
    GetTelemetry,
}

impl MetaOp {
    /// All meta-operations in declaration order: the paper's nine plus
    /// the `getStats`, `getEffects`, and `getTelemetry` introspection
    /// extensions.
    pub const ALL: [MetaOp; 12] = [
        MetaOp::GetDataItem,
        MetaOp::SetDataItem,
        MetaOp::AddDataItem,
        MetaOp::DeleteDataItem,
        MetaOp::GetMethod,
        MetaOp::SetMethod,
        MetaOp::AddMethod,
        MetaOp::DeleteMethod,
        MetaOp::Invoke,
        MetaOp::GetStats,
        MetaOp::GetEffects,
        MetaOp::GetTelemetry,
    ];

    /// The method name under which the operation is registered in the
    /// object (camelCase, matching the paper's spelling).
    pub fn method_name(&self) -> &'static str {
        match self {
            MetaOp::GetDataItem => "getDataItem",
            MetaOp::SetDataItem => "setDataItem",
            MetaOp::AddDataItem => "addDataItem",
            MetaOp::DeleteDataItem => "deleteDataItem",
            MetaOp::GetMethod => "getMethod",
            MetaOp::SetMethod => "setMethod",
            MetaOp::AddMethod => "addMethod",
            MetaOp::DeleteMethod => "deleteMethod",
            MetaOp::Invoke => "invoke",
            MetaOp::GetStats => "getStats",
            MetaOp::GetEffects => "getEffects",
            MetaOp::GetTelemetry => "getTelemetry",
        }
    }

    /// Inverse of [`MetaOp::method_name`].
    pub fn from_method_name(name: &str) -> Option<MetaOp> {
        MetaOp::ALL.into_iter().find(|op| op.method_name() == name)
    }

    /// Does this operation *mutate* object structure? (Mutating meta-ops
    /// are guarded by the meta ACL; introspective ones by the read ACL.)
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            MetaOp::SetDataItem
                | MetaOp::AddDataItem
                | MetaOp::DeleteDataItem
                | MetaOp::SetMethod
                | MetaOp::AddMethod
                | MetaOp::DeleteMethod
        )
    }
}

/// A method (or procedure) body.
#[derive(Clone)]
pub enum MethodBody {
    /// Host-resident Rust closure. Fast; not mobile.
    Native(Arc<NativeFn>),
    /// Mobile script program. Serializable; travels in migration images.
    Script(Arc<Program>),
    /// A built-in reflective meta-operation, executed by the engine.
    /// Serializable (it is pure behaviour every node already has).
    Meta(MetaOp),
}

impl MethodBody {
    /// Wraps a Rust closure as a native body.
    pub fn native<F>(f: F) -> MethodBody
    where
        F: Fn(&mut CallEnv<'_>, &[Value]) -> Result<Value, MromError> + Send + Sync + 'static,
    {
        MethodBody::Native(Arc::new(f))
    }

    /// Parses source text into a script body.
    ///
    /// The [`Program`]'s register-bytecode form is compiled lazily and
    /// cached on the program itself (admission forces it), so the body
    /// compiles at most once. `setMethod`/`addMethod` install a fresh
    /// `Program`, which carries a fresh cache — bytecode invalidation is
    /// by wholesale replacement, never in place.
    ///
    /// # Errors
    ///
    /// Propagates script parse errors.
    pub fn script(source: &str) -> Result<MethodBody, MromError> {
        Ok(MethodBody::Script(Arc::new(Program::parse(source)?)))
    }

    /// Wraps an already-parsed program.
    pub fn from_program(p: Program) -> MethodBody {
        MethodBody::Script(Arc::new(p))
    }

    /// `true` if the body can be serialized into a migration image.
    pub fn is_mobile(&self) -> bool {
        !matches!(self, MethodBody::Native(_))
    }

    /// Serializes the body to a [`Value`] (`null` for native — callers must
    /// check [`MethodBody::is_mobile`] first and refuse migration).
    pub fn to_value(&self) -> Value {
        match self {
            MethodBody::Native(_) => Value::Null,
            MethodBody::Script(p) => Value::map([("script", p.to_value())]),
            MethodBody::Meta(op) => Value::map([("meta", Value::from(op.method_name()))]),
        }
    }

    /// Rebuilds a body from [`MethodBody::to_value`] output or from a raw
    /// program tree / source string (accepted for `addMethod` convenience).
    ///
    /// # Errors
    ///
    /// [`ValueError::Malformed`] for unrecognized shapes; script errors for
    /// bad program trees.
    pub fn from_value(v: &Value) -> Result<MethodBody, MromError> {
        match v {
            Value::Str(source) => MethodBody::script(source),
            Value::Map(m) => {
                if let Some(p) = m.get("script") {
                    Ok(MethodBody::Script(Arc::new(Program::from_value(p)?)))
                } else if let Some(name) = m.get("meta").and_then(Value::as_str) {
                    MetaOp::from_method_name(name)
                        .map(MethodBody::Meta)
                        .ok_or_else(|| {
                            MromError::BadDescriptor(format!("unknown meta op {name:?}"))
                        })
                } else if m.contains_key("params") && m.contains_key("body") {
                    // A bare program tree.
                    Ok(MethodBody::Script(Arc::new(Program::from_value(v)?)))
                } else {
                    Err(MromError::BadDescriptor(
                        "body map must contain `script`, `meta`, or a program tree".into(),
                    ))
                }
            }
            other => Err(MromError::BadDescriptor(format!(
                "method body must be source text or a body map, got {}",
                other.kind()
            ))),
        }
    }
}

impl fmt::Debug for MethodBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodBody::Native(_) => f.write_str("MethodBody::Native(..)"),
            MethodBody::Script(p) => write!(f, "MethodBody::Script({} nodes)", p.node_count()),
            MethodBody::Meta(op) => write!(f, "MethodBody::Meta({op:?})"),
        }
    }
}

/// Structural equality: scripts and meta ops compare by content; native
/// bodies compare by pointer identity (two distinct closures are distinct
/// behaviours).
impl PartialEq for MethodBody {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MethodBody::Native(a), MethodBody::Native(b)) => Arc::ptr_eq(a, b),
            (MethodBody::Script(a), MethodBody::Script(b)) => a == b,
            (MethodBody::Meta(a), MethodBody::Meta(b)) => a == b,
            _ => false,
        }
    }
}

/// The owned state behind a [`Method`] handle.
#[derive(Debug, Clone, PartialEq)]
struct MethodInner {
    body: MethodBody,
    pre: Option<MethodBody>,
    post: Option<MethodBody>,
    invoke_acl: Acl,
    meta_acl: Acl,
}

/// A method of an MROM object: body, optional pre-/post-procedures
/// (*wrapping*), an invoke ACL, and a meta ACL guarding structural changes
/// to the method itself.
///
/// `Method` is a cheap shared handle (`Arc` internally): cloning one — as
/// the level-0 invocation path does when it pins the looked-up method
/// before running it, so a body may replace its own method mid-flight —
/// costs a refcount bump, not a deep copy of the body and procedures.
/// Mutation (`setMethod` via [`Method::apply_descriptor`], the builder
/// methods) goes through copy-on-write and never disturbs other handles.
#[derive(Debug, Clone, PartialEq)]
pub struct Method(Arc<MethodInner>);

impl Method {
    /// Creates a method with the given body, no wrapping, and default
    /// (origin-private) ACLs.
    pub fn new(body: MethodBody) -> Method {
        Method(Arc::new(MethodInner {
            body,
            pre: None,
            post: None,
            invoke_acl: Acl::default(),
            meta_acl: Acl::default(),
        }))
    }

    /// Creates a publicly invocable method (meta ACL stays origin-private).
    pub fn public(body: MethodBody) -> Method {
        Method::new(body).with_invoke_acl(Acl::Public)
    }

    /// Sets the invoke ACL (builder style).
    pub fn with_invoke_acl(mut self, acl: Acl) -> Method {
        Arc::make_mut(&mut self.0).invoke_acl = acl;
        self
    }

    /// Sets the meta ACL (builder style).
    pub fn with_meta_acl(mut self, acl: Acl) -> Method {
        Arc::make_mut(&mut self.0).meta_acl = acl;
        self
    }

    /// Attaches a pre-procedure (builder style). A pre-procedure returning
    /// a falsy value prevents the body from running.
    pub fn with_pre(mut self, pre: MethodBody) -> Method {
        Arc::make_mut(&mut self.0).pre = Some(pre);
        self
    }

    /// Attaches a post-procedure (builder style). A post-procedure
    /// returning a falsy value raises
    /// [`MromError::PostConditionFailed`].
    pub fn with_post(mut self, post: MethodBody) -> Method {
        Arc::make_mut(&mut self.0).post = Some(post);
        self
    }

    /// The body.
    pub fn body(&self) -> &MethodBody {
        &self.0.body
    }

    /// The pre-procedure, if attached.
    pub fn pre(&self) -> Option<&MethodBody> {
        self.0.pre.as_ref()
    }

    /// The post-procedure, if attached.
    pub fn post(&self) -> Option<&MethodBody> {
        self.0.post.as_ref()
    }

    /// The invoke ACL.
    pub fn invoke_acl(&self) -> &Acl {
        &self.0.invoke_acl
    }

    /// The meta ACL (who may `setMethod`/`deleteMethod` this method).
    pub fn meta_acl(&self) -> &Acl {
        &self.0.meta_acl
    }

    /// `true` when the body and both procedures are mobile.
    pub fn is_mobile(&self) -> bool {
        self.0.body.is_mobile()
            && self.0.pre.as_ref().is_none_or(MethodBody::is_mobile)
            && self.0.post.as_ref().is_none_or(MethodBody::is_mobile)
    }

    /// Produces the `getMethod` descriptor.
    pub fn descriptor(&self) -> Value {
        Value::map([
            ("body", self.0.body.to_value()),
            (
                "pre",
                self.0
                    .pre
                    .as_ref()
                    .map_or(Value::Null, MethodBody::to_value),
            ),
            (
                "post",
                self.0
                    .post
                    .as_ref()
                    .map_or(Value::Null, MethodBody::to_value),
            ),
            ("invoke_acl", self.0.invoke_acl.to_value()),
            ("meta_acl", self.0.meta_acl.to_value()),
            ("mobile", Value::Bool(self.is_mobile())),
        ])
    }

    /// Applies a partial descriptor (the `setMethod` meta-operation): only
    /// the present keys change. Passing `null` for `pre`/`post` detaches
    /// the procedure.
    ///
    /// # Errors
    ///
    /// [`MromError::BadDescriptor`] on unknown keys or malformed fields.
    pub fn apply_descriptor(&mut self, desc: &Value) -> Result<(), MromError> {
        let m = desc.as_map().ok_or_else(|| {
            MromError::BadDescriptor(format!("descriptor must be a map, got {}", desc.kind()))
        })?;
        for key in m.keys() {
            // `mobile`, `section`, and `redacted` are informational fields
            // produced by descriptors; accepted and ignored on write.
            if !matches!(
                key.as_str(),
                "body"
                    | "pre"
                    | "post"
                    | "invoke_acl"
                    | "meta_acl"
                    | "mobile"
                    | "section"
                    | "redacted"
            ) {
                return Err(MromError::BadDescriptor(format!(
                    "unknown descriptor key {key:?}"
                )));
            }
        }
        // Parse everything before touching `self` so a failing descriptor
        // leaves the method untouched, then copy-on-write once.
        let body = m.get("body").map(MethodBody::from_value).transpose()?;
        let pre = m
            .get("pre")
            .map(|v| {
                if v.is_null() {
                    Ok(None)
                } else {
                    MethodBody::from_value(v).map(Some)
                }
            })
            .transpose()?;
        let post = m
            .get("post")
            .map(|v| {
                if v.is_null() {
                    Ok(None)
                } else {
                    MethodBody::from_value(v).map(Some)
                }
            })
            .transpose()?;
        let invoke_acl = m
            .get("invoke_acl")
            .map(|v| Acl::from_value(v).map_err(bad_acl))
            .transpose()?;
        let meta_acl = m
            .get("meta_acl")
            .map(|v| Acl::from_value(v).map_err(bad_acl))
            .transpose()?;

        let inner = Arc::make_mut(&mut self.0);
        if let Some(body) = body {
            inner.body = body;
        }
        if let Some(pre) = pre {
            inner.pre = pre;
        }
        if let Some(post) = post {
            inner.post = post;
        }
        if let Some(acl) = invoke_acl {
            inner.invoke_acl = acl;
        }
        if let Some(acl) = meta_acl {
            inner.meta_acl = acl;
        }
        Ok(())
    }

    /// Rebuilds a method from a full descriptor (`addMethod` with
    /// properties, migration images).
    ///
    /// # Errors
    ///
    /// [`MromError::BadDescriptor`] when no body is present or fields are
    /// malformed.
    pub fn from_descriptor(desc: &Value) -> Result<Method, MromError> {
        let m = desc.as_map().ok_or_else(|| {
            MromError::BadDescriptor(format!("descriptor must be a map, got {}", desc.kind()))
        })?;
        if !m.contains_key("body") {
            return Err(MromError::BadDescriptor(
                "method descriptor requires a `body`".into(),
            ));
        }
        let mut method = Method::new(MethodBody::Meta(MetaOp::Invoke));
        method.apply_descriptor(desc)?;
        Ok(method)
    }
}

fn bad_acl(e: ValueError) -> MromError {
    MromError::BadDescriptor(format!("bad acl: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_op_names_round_trip() {
        for op in MetaOp::ALL {
            assert_eq!(MetaOp::from_method_name(op.method_name()), Some(op));
        }
        assert_eq!(MetaOp::from_method_name("frob"), None);
    }

    #[test]
    fn mutating_classification() {
        assert!(MetaOp::AddMethod.is_mutating());
        assert!(MetaOp::SetDataItem.is_mutating());
        assert!(!MetaOp::GetMethod.is_mutating());
        assert!(!MetaOp::Invoke.is_mutating());
    }

    #[test]
    fn body_mobility() {
        let native = MethodBody::native(|_, _| Ok(Value::Null));
        assert!(!native.is_mobile());
        let script = MethodBody::script("return 1;").unwrap();
        assert!(script.is_mobile());
        assert!(MethodBody::Meta(MetaOp::Invoke).is_mobile());
    }

    #[test]
    fn body_value_round_trip() {
        let script = MethodBody::script("param x; return x + 1;").unwrap();
        let back = MethodBody::from_value(&script.to_value()).unwrap();
        assert_eq!(back, script);
        let meta = MethodBody::Meta(MetaOp::AddMethod);
        assert_eq!(MethodBody::from_value(&meta.to_value()).unwrap(), meta);
    }

    #[test]
    fn body_from_source_string() {
        let b = MethodBody::from_value(&Value::from("return 2;")).unwrap();
        assert!(matches!(b, MethodBody::Script(_)));
        assert!(MethodBody::from_value(&Value::from("return (;")).is_err());
        assert!(MethodBody::from_value(&Value::Int(1)).is_err());
        assert!(MethodBody::from_value(&Value::map([("huh", Value::Null)])).is_err());
    }

    #[test]
    fn native_equality_is_identity() {
        let a = MethodBody::native(|_, _| Ok(Value::Null));
        let b = MethodBody::native(|_, _| Ok(Value::Null));
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn method_descriptor_round_trip() {
        let m = Method::public(MethodBody::script("return 1;").unwrap())
            .with_pre(MethodBody::script("return true;").unwrap())
            .with_post(MethodBody::script("return args[0] > 0;").unwrap())
            .with_meta_acl(Acl::Nobody);
        let back = Method::from_descriptor(&m.descriptor()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn method_is_mobile_only_if_all_parts_are() {
        let mobile = Method::new(MethodBody::script("return 1;").unwrap());
        assert!(mobile.is_mobile());
        let tainted = mobile
            .clone()
            .with_pre(MethodBody::native(|_, _| Ok(Value::Bool(true))));
        assert!(!tainted.is_mobile());
    }

    #[test]
    fn apply_descriptor_detaches_procedures_with_null() {
        let mut m = Method::new(MethodBody::script("return 1;").unwrap())
            .with_pre(MethodBody::script("return true;").unwrap());
        m.apply_descriptor(&Value::map([("pre", Value::Null)]))
            .unwrap();
        assert!(m.pre().is_none());
    }

    #[test]
    fn apply_descriptor_rejects_unknown_keys() {
        let mut m = Method::new(MethodBody::script("return 1;").unwrap());
        assert!(m
            .apply_descriptor(&Value::map([("woble", Value::Null)]))
            .is_err());
        assert!(m.apply_descriptor(&Value::Int(3)).is_err());
    }

    #[test]
    fn from_descriptor_requires_body() {
        assert!(
            Method::from_descriptor(&Value::map([("invoke_acl", Value::from("public"))])).is_err()
        );
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", MethodBody::native(|_, _| Ok(Value::Null))).is_empty());
        assert!(!format!("{:?}", Method::new(MethodBody::Meta(MetaOp::Invoke))).is_empty());
    }
}
