//! The MROM object: four item containers, identity, the invocation tower,
//! and the ACL-checked state/structure operations behind the meta-methods.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mrom_script::EffectSignature;
use mrom_value::{ObjectId, Value};

use crate::container::{ExtensibleContainer, FixedContainer, Section};
use crate::error::MromError;
use crate::item::DataItem;
use crate::method::{MetaOp, Method, MethodBody};
use crate::security::Acl;

/// Where a cached method resolution points: a sealed fixed slot (the index
/// is a "fixed offset" valid for the object's whole lifetime) or a shared
/// handle into the extensible section (valid only for the generation it
/// was stamped with).
#[derive(Debug, Clone)]
enum CachedSlot {
    Fixed(usize),
    Extensible(Method),
}

/// Per-object memo of name → method resolution used by the level-0
/// invocation fast path.
///
/// Entries for extensible methods carry the structural generation they
/// were recorded at; any `addMethod`/`setMethod`/`deleteMethod` or tower
/// change bumps the object's generation and thereby invalidates them
/// wholesale, with no per-entry bookkeeping on the mutation path. Fixed
/// entries never go stale — the fixed section is sealed at construction.
///
/// The cache is pure acceleration state: it is deliberately ignored by
/// `PartialEq` and carries no observable behaviour of its own.
#[derive(Debug, Clone, Default)]
struct DispatchCache {
    entries: HashMap<String, (CachedSlot, u64)>,
}

/// A mutable reflective mobile object.
///
/// State is split between a *fixed* section (sealed at construction; the
/// stable basis for specialization) and an *extensible* section (the
/// runtime adaptation surface). The nine reflective meta-methods are
/// bundled inside the object as ordinary [`Method`] entries with
/// [`MethodBody::Meta`] bodies — self-containment means there is no
/// external meta-object.
///
/// All state accessors on this type take the caller's [`ObjectId`]
/// *principal* and enforce the item ACLs — encapsulation and security are
/// one mechanism. Invocation lives in [`crate::invoke`].
///
/// # Example
///
/// ```
/// use mrom_core::{DataItem, Method, MethodBody, ObjectBuilder, Acl};
/// use mrom_value::{IdGenerator, NodeId, Value};
///
/// # fn main() -> Result<(), mrom_core::MromError> {
/// let mut ids = IdGenerator::new(NodeId(1));
/// let mut obj = ObjectBuilder::new(ids.next_id())
///     .class("counter")
///     .fixed_data("count", DataItem::public(Value::Int(0)))
///     .build();
///
/// let me = obj.id();
/// assert_eq!(obj.read_data(me, "count")?, Value::Int(0));
/// // The object may extend itself at runtime:
/// obj.add_data(me, "note", Value::from("added later"))?;
/// assert!(obj.has_data(me, "note"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MromObject {
    id: ObjectId,
    origin: ObjectId,
    class_name: String,
    fixed_data: FixedContainer<DataItem>,
    fixed_methods: FixedContainer<Method>,
    ext_data: ExtensibleContainer<DataItem>,
    ext_methods: ExtensibleContainer<Method>,
    /// Names of installed meta-invoke methods; `tower[0]` is level 1, the
    /// last entry is the topmost level entered first (Figure 1). Entries
    /// are interned as `Arc<str>` so descending the tower clones handles,
    /// not strings.
    tower: Vec<Arc<str>>,
    /// Object-level policy for structural addition/removal and tower
    /// manipulation.
    meta_acl: Acl,
    /// Structural generation of the extensible method section and tower;
    /// bumped by every mutation that can change method resolution.
    generation: u64,
    /// Generation-stamped name → method memo for the dispatch fast path.
    dispatch_cache: DispatchCache,
    /// Generation-stamped memo of the interprocedural effect-signature
    /// table ([`crate::effects::object_effects`]). Like the dispatch
    /// cache, pure acceleration state: ignored by `PartialEq`, shed on
    /// clone-through-migration, recomputed on first use after any
    /// structural change.
    effects_cache: Option<(u64, Arc<BTreeMap<String, EffectSignature>>)>,
}

/// Equality is structural: the dispatch cache and its generation stamp are
/// derived acceleration state and do not participate.
impl PartialEq for MromObject {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.origin == other.origin
            && self.class_name == other.class_name
            && self.fixed_data == other.fixed_data
            && self.fixed_methods == other.fixed_methods
            && self.ext_data == other.ext_data
            && self.ext_methods == other.ext_methods
            && self.tower == other.tower
            && self.meta_acl == other.meta_acl
    }
}

impl MromObject {
    /// This object's decentralized identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The origin principal — for deployed objects (Ambassadors) this is
    /// the identity that owns and maintains the object, which may differ
    /// from `id`.
    pub fn origin(&self) -> ObjectId {
        self.origin
    }

    /// Rebinds the origin (used when an origin APO instantiates an
    /// Ambassador it will own). Only the current origin may do this.
    ///
    /// # Errors
    ///
    /// [`MromError::AccessDenied`] for any other caller.
    pub fn set_origin(&mut self, caller: ObjectId, new_origin: ObjectId) -> Result<(), MromError> {
        if caller != self.origin {
            return Err(self.denied("origin", "meta", caller));
        }
        self.origin = new_origin;
        Ok(())
    }

    /// The class this object was stamped from.
    pub fn class_name(&self) -> &str {
        &self.class_name
    }

    /// The object-level meta ACL.
    pub fn meta_acl(&self) -> &Acl {
        &self.meta_acl
    }

    /// Replaces the object-level meta ACL (origin only).
    ///
    /// # Errors
    ///
    /// [`MromError::AccessDenied`] unless `caller` passes the *current*
    /// meta ACL.
    pub fn set_meta_acl(&mut self, caller: ObjectId, acl: Acl) -> Result<(), MromError> {
        self.check_meta(caller, "meta_acl")?;
        self.meta_acl = acl;
        Ok(())
    }

    /// The single permission predicate used by every check in the model:
    /// the object *itself* is implicitly allowed by every policy except
    /// [`Acl::Nobody`] (self-containment — a deployed Ambassador whose
    /// origin is its remote APO must still reach its own items), and the
    /// origin principal is handled by [`Acl::permits`].
    #[inline]
    pub fn acl_allows(&self, acl: &Acl, caller: ObjectId) -> bool {
        (caller == self.id && !matches!(acl, Acl::Nobody)) || acl.permits(caller, self.origin)
    }

    fn denied(&self, item: &str, operation: &'static str, caller: ObjectId) -> MromError {
        MromError::AccessDenied {
            object: self.id,
            item: item.to_owned(),
            operation,
            caller,
        }
    }

    fn check_meta(&self, caller: ObjectId, item: &str) -> Result<(), MromError> {
        if self.acl_allows(&self.meta_acl, caller) {
            Ok(())
        } else {
            Err(self.denied(item, "meta", caller))
        }
    }

    /// Marks a structural change — method resolution (extensible method
    /// set or tower) or the extensible data section's shape (item set,
    /// ACLs, constraints) — invalidating every stamped cache entry at
    /// once: the dispatch cache and the script inline caches. Plain value
    /// writes are *not* structural and never bump the generation.
    fn touch_structure(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// The structural generation of the extensible method section and
    /// tower. Monotonic under mutation; exposed so callers (and tests) can
    /// observe when cached resolutions become stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    // -- effect signatures ---------------------------------------------------

    /// The interprocedural effect-signature table for every method this
    /// object carries, memoized behind the structural generation stamp:
    /// the first call after construction or any structural mutation runs
    /// the fixpoint ([`crate::effects::object_effects`]); subsequent
    /// calls return the shared table. This is what the `getEffects`
    /// meta-method serves, and what retry/migration policies consult.
    pub fn effects(&mut self) -> Arc<BTreeMap<String, EffectSignature>> {
        if let Some((stamp, table)) = &self.effects_cache {
            if *stamp == self.generation {
                return Arc::clone(table);
            }
        }
        let table = Arc::new(crate::effects::object_effects(self));
        self.effects_cache = Some((self.generation, Arc::clone(&table)));
        table
    }

    /// The effect table already memoized for the *current* structural
    /// generation, if any — a read-only probe for callers holding `&self`
    /// (e.g. a runtime deciding whether a retry is safe without forcing
    /// an analysis on the hot path).
    pub fn effects_if_cached(&self) -> Option<Arc<BTreeMap<String, EffectSignature>>> {
        match &self.effects_cache {
            Some((stamp, table)) if *stamp == self.generation => Some(Arc::clone(table)),
            _ => None,
        }
    }

    // -- data items ---------------------------------------------------------

    /// Finds a data item and its section, fixed first.
    pub fn find_data(&self, name: &str) -> Option<(&DataItem, Section)> {
        if let Some(item) = self.fixed_data.get(name) {
            return Some((item, Section::Fixed));
        }
        self.ext_data.get(name).map(|i| (i, Section::Extensible))
    }

    fn find_data_checked(
        &self,
        caller: ObjectId,
        name: &str,
        want_write: bool,
    ) -> Result<(&DataItem, Section), MromError> {
        let (item, section) = self
            .find_data(name)
            .ok_or_else(|| MromError::NoSuchDataItem {
                object: self.id,
                name: name.to_owned(),
            })?;
        let acl = if want_write {
            item.write_acl()
        } else {
            item.read_acl()
        };
        if !self.acl_allows(acl, caller) {
            return Err(self.denied(name, if want_write { "write" } else { "read" }, caller));
        }
        Ok((item, section))
    }

    /// `true` when `caller` can see a data item of this name
    /// (encapsulation == security: invisible and forbidden coincide).
    pub fn has_data(&self, caller: ObjectId, name: &str) -> bool {
        self.find_data_checked(caller, name, false).is_ok()
    }

    /// Reads a data item's value (the ordinary `get`).
    ///
    /// # Errors
    ///
    /// [`MromError::NoSuchDataItem`] / [`MromError::AccessDenied`].
    pub fn read_data(&self, caller: ObjectId, name: &str) -> Result<Value, MromError> {
        self.find_data_checked(caller, name, false)
            .map(|(item, _)| item.value().clone())
    }

    /// Writes a data item's value (the ordinary `set`). Writing the value
    /// of a **fixed** data item is allowed — the fixed section freezes
    /// *structure*, not state.
    ///
    /// # Errors
    ///
    /// Lookup/ACL errors, or [`MromError::TypeConstraint`] when the item's
    /// dynamic type rejects the value.
    pub fn write_data(
        &mut self,
        caller: ObjectId,
        name: &str,
        value: Value,
    ) -> Result<(), MromError> {
        // Check ACL on the shared view first to keep the borrow simple.
        self.find_data_checked(caller, name, true)?;
        let item = self
            .fixed_data
            .get_mut(name)
            .or_else(|| self.ext_data.get_mut(name))
            .expect("checked above");
        item.write(value).map_err(|e| MromError::TypeConstraint {
            item: name.to_owned(),
            detail: e.to_string(),
        })
    }

    /// The `getDataItem` meta-operation: the item's property descriptor
    /// plus its section. Guarded by the read ACL.
    ///
    /// # Errors
    ///
    /// Lookup/ACL errors.
    pub fn data_descriptor(&self, caller: ObjectId, name: &str) -> Result<Value, MromError> {
        let (item, section) = self.find_data_checked(caller, name, false)?;
        let mut desc = item.descriptor();
        if let Some(m) = desc.as_map_mut() {
            m.insert("section".to_owned(), Value::from(section.name()));
        }
        Ok(desc)
    }

    // -- inline-cache fast paths (crate-internal) ---------------------------
    //
    // The script bridge caches `self.get`/`self.set`/`getDataItem` sites
    // that resolved to *fixed-section* items. Fixed indices and ACLs are
    // immutable for the object's lifetime (`set_data_item` refuses the
    // fixed section), so a slow-path success proves the access verdict for
    // every later hit; only the value-dependent work (clone, type
    // constraint) re-runs per hit.

    /// Fixed-section index of a data item, for inline caches.
    pub(crate) fn fixed_data_index(&self, name: &str) -> Option<usize> {
        self.fixed_data.index_of(name)
    }

    /// Reads a fixed data item's value by index (IC hit path of `self.get`).
    pub(crate) fn fixed_data_value(&self, index: usize) -> Option<Value> {
        self.fixed_data
            .get_by_index(index)
            .map(|item| item.value().clone())
    }

    /// Writes a fixed data item's value by index (IC hit path of
    /// `self.set`), with the same type-constraint mapping as `write_data`.
    pub(crate) fn fixed_data_write(
        &mut self,
        index: usize,
        name: &str,
        value: Value,
    ) -> Result<(), MromError> {
        let item = self
            .fixed_data
            .get_by_index_mut(index)
            .expect("inline-cached fixed index in range");
        item.write(value).map_err(|e| MromError::TypeConstraint {
            item: name.to_owned(),
            detail: e.to_string(),
        })
    }

    /// A fixed data item's descriptor by index (IC hit path of
    /// `getDataItem`), identical in shape to [`MromObject::data_descriptor`].
    pub(crate) fn fixed_data_descriptor(&self, index: usize) -> Option<Value> {
        self.fixed_data.get_by_index(index).map(|item| {
            let mut desc = item.descriptor();
            if let Some(m) = desc.as_map_mut() {
                m.insert("section".to_owned(), Value::from(Section::Fixed.name()));
            }
            desc
        })
    }

    /// The `setDataItem` meta-operation: changes an item's properties
    /// (ACLs, dynamic type, value, or — with the `rename` key — its name).
    /// Structural property changes are only legal on extensible items;
    /// guarded by the item's write ACL.
    ///
    /// # Errors
    ///
    /// Lookup/ACL errors, [`MromError::FixedSectionViolation`] for fixed
    /// items, [`MromError::BadDescriptor`] for malformed descriptors, and
    /// [`MromError::DuplicateItem`] when a rename collides.
    pub fn set_data_item(
        &mut self,
        caller: ObjectId,
        name: &str,
        desc: &Value,
    ) -> Result<(), MromError> {
        let (_, section) = self.find_data_checked(caller, name, true)?;
        if section == Section::Fixed {
            return Err(MromError::FixedSectionViolation {
                object: self.id,
                item: name.to_owned(),
            });
        }
        let m = desc.as_map().ok_or_else(|| {
            MromError::BadDescriptor(format!("descriptor must be a map, got {}", desc.kind()))
        })?;
        let rename = match m.get("rename") {
            None => None,
            Some(Value::Str(new_name)) => Some(new_name.clone()),
            Some(other) => {
                return Err(MromError::BadDescriptor(format!(
                    "rename must be a string, got {}",
                    other.kind()
                )))
            }
        };
        let mut rest = m.clone();
        rest.remove("rename");
        let desc_rest = Value::Map(rest);

        // Apply property changes on a copy so a failure leaves the item
        // untouched.
        let mut item = self
            .ext_data
            .get(name)
            .expect("section checked extensible")
            .clone();
        item.apply_descriptor(&desc_rest)
            .map_err(|e| MromError::BadDescriptor(e.to_string()))?;
        if let Some(new_name) = rename {
            if new_name != name
                && (self.fixed_data.contains(&new_name) || self.ext_data.contains(&new_name))
            {
                return Err(MromError::DuplicateItem {
                    object: self.id,
                    item: new_name,
                });
            }
            self.ext_data.remove(name);
            self.ext_data.insert(new_name, item);
        } else {
            self.ext_data.replace(name, item);
        }
        self.touch_structure();
        Ok(())
    }

    /// The `addDataItem` meta-operation (plain-value form). Extensible
    /// section only; guarded by the object meta ACL.
    ///
    /// # Errors
    ///
    /// ACL errors, [`MromError::DuplicateItem`] on name collisions
    /// (including with fixed items).
    pub fn add_data(
        &mut self,
        caller: ObjectId,
        name: &str,
        value: Value,
    ) -> Result<(), MromError> {
        self.add_data_item(caller, name, DataItem::new(value))
    }

    /// The `addDataItem` meta-operation (full-item form).
    ///
    /// # Errors
    ///
    /// Same as [`MromObject::add_data`].
    pub fn add_data_item(
        &mut self,
        caller: ObjectId,
        name: &str,
        item: DataItem,
    ) -> Result<(), MromError> {
        self.check_meta(caller, name)?;
        if self.fixed_data.contains(name) {
            return Err(MromError::DuplicateItem {
                object: self.id,
                item: name.to_owned(),
            });
        }
        if !self.ext_data.insert(name.to_owned(), item) {
            return Err(MromError::DuplicateItem {
                object: self.id,
                item: name.to_owned(),
            });
        }
        self.touch_structure();
        Ok(())
    }

    /// The `deleteDataItem` meta-operation. Extensible only; guarded by
    /// the object meta ACL.
    ///
    /// # Errors
    ///
    /// ACL errors, [`MromError::FixedSectionViolation`] for fixed items,
    /// [`MromError::NoSuchDataItem`] when absent.
    pub fn delete_data(&mut self, caller: ObjectId, name: &str) -> Result<(), MromError> {
        self.check_meta(caller, name)?;
        if self.fixed_data.contains(name) {
            return Err(MromError::FixedSectionViolation {
                object: self.id,
                item: name.to_owned(),
            });
        }
        match self.ext_data.remove(name) {
            Some(_) => {
                self.touch_structure();
                Ok(())
            }
            None => Err(MromError::NoSuchDataItem {
                object: self.id,
                name: name.to_owned(),
            }),
        }
    }

    /// Names of the data items visible to `caller` (readable under their
    /// ACLs), each with its section. Self-representation is itself subject
    /// to security: what you may not read, you cannot see listed.
    pub fn list_data(&self, caller: ObjectId) -> Vec<(String, Section)> {
        let mut out = Vec::new();
        for (name, item) in self.fixed_data.iter() {
            if self.acl_allows(item.read_acl(), caller) {
                out.push((name.to_owned(), Section::Fixed));
            }
        }
        for (name, item) in self.ext_data.iter() {
            if self.acl_allows(item.read_acl(), caller) {
                out.push((name.to_owned(), Section::Extensible));
            }
        }
        out
    }

    // -- methods ------------------------------------------------------------

    /// Finds a method and its section, fixed first.
    pub fn find_method(&self, name: &str) -> Option<(&Method, Section)> {
        if let Some(m) = self.fixed_methods.get(name) {
            return Some((m, Section::Fixed));
        }
        self.ext_methods.get(name).map(|m| (m, Section::Extensible))
    }

    /// Resolves a method for dispatch through the generation-stamped
    /// cache, returning an owned (cheap, `Arc`-backed) handle.
    ///
    /// Cache hits for fixed methods go straight to the sealed slot via
    /// [`FixedContainer::get_by_index`] — the paper's "fixed offset" —
    /// skipping the name probe entirely; hits for extensible methods are
    /// honoured only when their stamp matches the current
    /// [`MromObject::generation`], so no structural mutation can ever be
    /// served a stale handle. Misses fall back to [`MromObject::find_method`]
    /// and stamp the result.
    ///
    /// This performs *no* ACL check: it is the Lookup phase, and Match
    /// (ACL) stays with the caller exactly as in the uncached path.
    pub fn lookup_method(&mut self, name: &str) -> Option<(Method, Section)> {
        self.lookup_method_traced(name, mrom_obs::enabled())
    }

    /// [`MromObject::lookup_method`] with the observability gate already
    /// read: the invocation machinery checks the thread-local mode byte
    /// once per application and passes the verdict down, so a disabled
    /// recorder costs nothing on the cache-hit path.
    pub(crate) fn lookup_method_traced(
        &mut self,
        name: &str,
        obs: bool,
    ) -> Option<(Method, Section)> {
        if let Some((slot, stamp)) = self.dispatch_cache.entries.get(name) {
            match slot {
                // Fixed slots are sealed at construction; the index can
                // never go stale, whatever the generation says.
                CachedSlot::Fixed(i) => {
                    let m = self.fixed_methods.get_by_index(*i).expect("sealed slot");
                    if obs {
                        mrom_obs::lookup(self.id, name, true, true);
                    }
                    return Some((m.clone(), Section::Fixed));
                }
                CachedSlot::Extensible(m) if *stamp == self.generation => {
                    let m = m.clone();
                    if obs {
                        mrom_obs::lookup(self.id, name, true, true);
                    }
                    return Some((m, Section::Extensible));
                }
                CachedSlot::Extensible(_) => {} // stale: re-resolve below
            }
        }
        if let Some(i) = self.fixed_methods.index_of(name) {
            let m = self
                .fixed_methods
                .get_by_index(i)
                .expect("index just probed")
                .clone();
            self.dispatch_cache
                .entries
                .insert(name.to_owned(), (CachedSlot::Fixed(i), self.generation));
            if obs {
                mrom_obs::lookup(self.id, name, false, true);
            }
            return Some((m, Section::Fixed));
        }
        if let Some(m) = self.ext_methods.get(name) {
            let m = m.clone();
            self.dispatch_cache.entries.insert(
                name.to_owned(),
                (CachedSlot::Extensible(m.clone()), self.generation),
            );
            if obs {
                mrom_obs::lookup(self.id, name, false, true);
            }
            return Some((m, Section::Extensible));
        }
        if obs {
            mrom_obs::lookup(self.id, name, false, false);
        }
        None
    }

    /// `true` when `caller` can see (i.e. is allowed to invoke) a method of
    /// this name.
    pub fn has_method(&self, caller: ObjectId, name: &str) -> bool {
        self.find_method(name)
            .is_some_and(|(m, _)| self.acl_allows(m.invoke_acl(), caller))
    }

    /// The `getMethod` meta-operation. Guarded by the invoke ACL; the body
    /// (the method's implementation) is additionally guarded by the
    /// method's meta ACL and redacted for callers that may invoke but not
    /// inspect.
    ///
    /// # Errors
    ///
    /// Lookup/ACL errors.
    pub fn method_descriptor(&self, caller: ObjectId, name: &str) -> Result<Value, MromError> {
        let (method, section) = self
            .find_method(name)
            .ok_or_else(|| MromError::NoSuchMethod {
                object: self.id,
                name: name.to_owned(),
            })?;
        if !self.acl_allows(method.invoke_acl(), caller) {
            return Err(self.denied(name, "read", caller));
        }
        let mut desc = method.descriptor();
        if !self.acl_allows(method.meta_acl(), caller) {
            if let Some(m) = desc.as_map_mut() {
                m.insert("body".to_owned(), Value::Null);
                m.insert("pre".to_owned(), Value::Null);
                m.insert("post".to_owned(), Value::Null);
                m.insert("redacted".to_owned(), Value::Bool(true));
            }
        }
        if let Some(m) = desc.as_map_mut() {
            m.insert("section".to_owned(), Value::from(section.name()));
        }
        Ok(desc)
    }

    /// The `setMethod` meta-operation: replaces the body, attaches or
    /// detaches pre-/post-procedures, changes ACLs, or renames (via the
    /// `rename` key). Extensible only; guarded by the method's meta ACL.
    ///
    /// # Errors
    ///
    /// Lookup/ACL errors, [`MromError::FixedSectionViolation`] for fixed
    /// methods, descriptor errors, rename collisions.
    pub fn set_method(
        &mut self,
        caller: ObjectId,
        name: &str,
        desc: &Value,
    ) -> Result<(), MromError> {
        let (method, section) = self
            .find_method(name)
            .ok_or_else(|| MromError::NoSuchMethod {
                object: self.id,
                name: name.to_owned(),
            })?;
        if !self.acl_allows(method.meta_acl(), caller) {
            return Err(self.denied(name, "meta", caller));
        }
        if section == Section::Fixed {
            return Err(MromError::FixedSectionViolation {
                object: self.id,
                item: name.to_owned(),
            });
        }
        let m = desc.as_map().ok_or_else(|| {
            MromError::BadDescriptor(format!("descriptor must be a map, got {}", desc.kind()))
        })?;
        let rename = match m.get("rename") {
            None => None,
            Some(Value::Str(new_name)) => Some(new_name.clone()),
            Some(other) => {
                return Err(MromError::BadDescriptor(format!(
                    "rename must be a string, got {}",
                    other.kind()
                )))
            }
        };
        let mut rest = m.clone();
        rest.remove("rename");
        let desc_rest = Value::Map(rest);

        let mut method = self
            .ext_methods
            .get(name)
            .expect("section checked extensible")
            .clone();
        method.apply_descriptor(&desc_rest)?;
        crate::admission::admit_method(
            crate::admission::default_admission_policy(),
            self,
            rename.as_deref().unwrap_or(name),
            &method,
            "set_method",
        )?;
        if let Some(new_name) = rename {
            if new_name != name
                && (self.fixed_methods.contains(&new_name) || self.ext_methods.contains(&new_name))
            {
                return Err(MromError::DuplicateItem {
                    object: self.id,
                    item: new_name,
                });
            }
            // Keep the tower consistent across renames.
            let interned: Arc<str> = Arc::from(new_name.as_str());
            for entry in &mut self.tower {
                if entry.as_ref() == name {
                    *entry = Arc::clone(&interned);
                }
            }
            self.ext_methods.remove(name);
            self.ext_methods.insert(new_name, method);
        } else {
            self.ext_methods.replace(name, method);
        }
        self.touch_structure();
        Ok(())
    }

    /// The `addMethod` meta-operation. Extensible only; guarded by the
    /// object meta ACL.
    ///
    /// # Errors
    ///
    /// ACL errors, [`MromError::DuplicateItem`] on collisions.
    pub fn add_method(
        &mut self,
        caller: ObjectId,
        name: &str,
        method: Method,
    ) -> Result<(), MromError> {
        self.check_meta(caller, name)?;
        if self.fixed_methods.contains(name) || self.ext_methods.contains(name) {
            return Err(MromError::DuplicateItem {
                object: self.id,
                item: name.to_owned(),
            });
        }
        crate::admission::admit_method(
            crate::admission::default_admission_policy(),
            self,
            name,
            &method,
            "add_method",
        )?;
        self.ext_methods.insert(name.to_owned(), method);
        self.touch_structure();
        Ok(())
    }

    /// The `deleteMethod` meta-operation. Extensible only; guarded by the
    /// method's meta ACL *and* the object meta ACL.
    ///
    /// # Errors
    ///
    /// Lookup/ACL errors, [`MromError::FixedSectionViolation`] for fixed
    /// methods.
    pub fn delete_method(&mut self, caller: ObjectId, name: &str) -> Result<(), MromError> {
        let (method, section) = self
            .find_method(name)
            .ok_or_else(|| MromError::NoSuchMethod {
                object: self.id,
                name: name.to_owned(),
            })?;
        if !self.acl_allows(method.meta_acl(), caller) {
            return Err(self.denied(name, "meta", caller));
        }
        self.check_meta(caller, name)?;
        if section == Section::Fixed {
            return Err(MromError::FixedSectionViolation {
                object: self.id,
                item: name.to_owned(),
            });
        }
        self.ext_methods.remove(name);
        // An uninstalled body cannot serve as a tower level.
        self.tower.retain(|entry| entry.as_ref() != name);
        self.touch_structure();
        Ok(())
    }

    /// Every method the object carries, fixed section first (admission
    /// analysis needs the full set regardless of ACLs).
    pub(crate) fn methods_iter(&self) -> impl Iterator<Item = (&str, &Method)> {
        self.fixed_methods.iter().chain(self.ext_methods.iter())
    }

    /// Every method the object carries, fixed section first, ignoring
    /// ACLs. For host-side tooling (admission reports, bytecode dumps) —
    /// in-language code sees only the ACL-filtered [`Self::list_methods`].
    pub fn all_methods(&self) -> impl Iterator<Item = (&str, &Method)> {
        self.methods_iter()
    }

    /// Names of the methods invocable by `caller`, each with its section.
    pub fn list_methods(&self, caller: ObjectId) -> Vec<(String, Section)> {
        let mut out = Vec::new();
        for (name, m) in self.fixed_methods.iter() {
            if self.acl_allows(m.invoke_acl(), caller) {
                out.push((name.to_owned(), Section::Fixed));
            }
        }
        for (name, m) in self.ext_methods.iter() {
            if self.acl_allows(m.invoke_acl(), caller) {
                out.push((name.to_owned(), Section::Extensible));
            }
        }
        out
    }

    // -- invocation tower ----------------------------------------------------

    /// The installed meta-invoke chain, level 1 first. Entries are interned
    /// `Arc<str>` handles; descending the tower clones a handle per level,
    /// never a string.
    pub fn tower(&self) -> &[Arc<str>] {
        &self.tower
    }

    /// Installs `method_name` as the new topmost meta-invoke level
    /// (Figure 1's `meta_invoke`). The method must exist in the extensible
    /// section. Guarded by the object meta ACL.
    ///
    /// # Errors
    ///
    /// ACL errors; [`MromError::NoSuchMethod`] when absent;
    /// [`MromError::FixedSectionViolation`] when the named method is fixed
    /// (tower levels must remain replaceable, which is their point).
    pub fn install_meta_invoke(
        &mut self,
        caller: ObjectId,
        method_name: &str,
    ) -> Result<(), MromError> {
        self.check_meta(caller, method_name)?;
        match self.find_method(method_name) {
            None => Err(MromError::NoSuchMethod {
                object: self.id,
                name: method_name.to_owned(),
            }),
            Some((_, Section::Fixed)) => Err(MromError::FixedSectionViolation {
                object: self.id,
                item: method_name.to_owned(),
            }),
            Some((_, Section::Extensible)) => {
                self.tower.push(Arc::from(method_name));
                self.touch_structure();
                Ok(())
            }
        }
    }

    /// Removes the topmost meta-invoke level, returning its method name.
    /// Guarded by the object meta ACL.
    ///
    /// # Errors
    ///
    /// ACL errors.
    pub fn uninstall_meta_invoke(&mut self, caller: ObjectId) -> Result<Option<String>, MromError> {
        self.check_meta(caller, "tower")?;
        let popped = self.tower.pop().map(|entry| entry.to_string());
        if popped.is_some() {
            self.touch_structure();
        }
        Ok(popped)
    }

    // -- introspective summary ----------------------------------------------

    /// A self-representation summary: identity, class, and the items
    /// visible to `caller`. This is what a host environment uses to
    /// "interrogate the newcomer object".
    pub fn describe(&self, caller: ObjectId) -> Value {
        Value::map([
            ("id", Value::ObjectRef(self.id)),
            ("origin", Value::ObjectRef(self.origin)),
            ("class", Value::from(self.class_name.as_str())),
            (
                "data",
                Value::List(
                    self.list_data(caller)
                        .into_iter()
                        .map(|(n, s)| {
                            Value::map([
                                ("name", Value::Str(n)),
                                ("section", Value::from(s.name())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "methods",
                Value::List(
                    self.list_methods(caller)
                        .into_iter()
                        .map(|(n, s)| {
                            Value::map([
                                ("name", Value::Str(n)),
                                ("section", Value::from(s.name())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tower",
                Value::List(
                    self.tower
                        .iter()
                        .map(|n| Value::Str(n.as_ref().to_owned()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Counts all items (data + methods, both sections).
    pub fn item_count(&self) -> usize {
        self.fixed_data.len()
            + self.fixed_methods.len()
            + self.ext_data.len()
            + self.ext_methods.len()
    }

    /// `true` when every method (and procedure) in the object is mobile.
    pub fn is_mobile(&self) -> bool {
        self.fixed_methods.iter().all(|(_, m)| m.is_mobile())
            && self.ext_methods.iter().all(|(_, m)| m.is_mobile())
    }

    // -- crate-internal raw access (migration, class stamping) ---------------

    pub(crate) fn raw_parts(
        &self,
    ) -> (
        &FixedContainer<DataItem>,
        &FixedContainer<Method>,
        &ExtensibleContainer<DataItem>,
        &ExtensibleContainer<Method>,
    ) {
        (
            &self.fixed_data,
            &self.fixed_methods,
            &self.ext_data,
            &self.ext_methods,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        id: ObjectId,
        origin: ObjectId,
        class_name: String,
        fixed_data: FixedContainer<DataItem>,
        fixed_methods: FixedContainer<Method>,
        ext_data: ExtensibleContainer<DataItem>,
        ext_methods: ExtensibleContainer<Method>,
        tower: Vec<Arc<str>>,
        meta_acl: Acl,
    ) -> MromObject {
        MromObject {
            id,
            origin,
            class_name,
            fixed_data,
            fixed_methods,
            ext_data,
            ext_methods,
            tower,
            meta_acl,
            generation: 0,
            dispatch_cache: DispatchCache::default(),
            effects_cache: None,
        }
    }
}

/// Builder for [`MromObject`]s constructed directly (tests, substrates);
/// applications usually instantiate through [`crate::ClassRegistry`].
///
/// The nine meta-methods are registered automatically at [`ObjectBuilder::build`]
/// time — in the fixed section by default, or the extensible section for
/// classes that opt into *meta-mutability* via
/// [`ObjectBuilder::meta_section`].
#[derive(Debug)]
pub struct ObjectBuilder {
    id: ObjectId,
    origin: ObjectId,
    class_name: String,
    fixed_data: Vec<(String, DataItem)>,
    fixed_methods: Vec<(String, Method)>,
    ext_data: Vec<(String, DataItem)>,
    ext_methods: Vec<(String, Method)>,
    meta_acl: Acl,
    meta_section: Section,
    register_meta: bool,
}

impl ObjectBuilder {
    /// Starts a builder for an object with the given identity.
    pub fn new(id: ObjectId) -> ObjectBuilder {
        ObjectBuilder {
            id,
            origin: id,
            class_name: "object".to_owned(),
            fixed_data: Vec::new(),
            fixed_methods: Vec::new(),
            ext_data: Vec::new(),
            ext_methods: Vec::new(),
            meta_acl: Acl::Origin,
            meta_section: Section::Fixed,
            register_meta: true,
        }
    }

    /// Sets the class name recorded on the object.
    pub fn class(mut self, name: &str) -> ObjectBuilder {
        self.class_name = name.to_owned();
        self
    }

    /// Sets the origin principal (defaults to the object's own id).
    pub fn origin(mut self, origin: ObjectId) -> ObjectBuilder {
        self.origin = origin;
        self
    }

    /// Adds a fixed data item.
    pub fn fixed_data(mut self, name: &str, item: DataItem) -> ObjectBuilder {
        self.fixed_data.push((name.to_owned(), item));
        self
    }

    /// Adds a fixed method.
    pub fn fixed_method(mut self, name: &str, method: Method) -> ObjectBuilder {
        self.fixed_methods.push((name.to_owned(), method));
        self
    }

    /// Adds an initial extensible data item.
    pub fn ext_data(mut self, name: &str, item: DataItem) -> ObjectBuilder {
        self.ext_data.push((name.to_owned(), item));
        self
    }

    /// Adds an initial extensible method.
    pub fn ext_method(mut self, name: &str, method: Method) -> ObjectBuilder {
        self.ext_methods.push((name.to_owned(), method));
        self
    }

    /// Sets the object-level meta ACL.
    pub fn meta_acl(mut self, acl: Acl) -> ObjectBuilder {
        self.meta_acl = acl;
        self
    }

    /// Chooses the section the meta-methods are registered in.
    /// [`Section::Extensible`] enables meta-mutability: the reflective
    /// machinery itself becomes subject to `setMethod`/`deleteMethod`.
    pub fn meta_section(mut self, section: Section) -> ObjectBuilder {
        self.meta_section = section;
        self
    }

    /// Skips automatic meta-method registration entirely (used by the
    /// migration decoder, which restores them from the image).
    pub fn without_meta_methods(mut self) -> ObjectBuilder {
        self.register_meta = false;
        self
    }

    /// Finalizes the object, sealing the fixed section.
    pub fn build(self) -> MromObject {
        let mut fixed_methods = self.fixed_methods;
        let mut ext_methods = self.ext_methods;
        if self.register_meta {
            for op in MetaOp::ALL {
                let name = op.method_name().to_owned();
                let already = fixed_methods.iter().any(|(n, _)| *n == name)
                    || ext_methods.iter().any(|(n, _)| *n == name);
                if already {
                    continue;
                }
                // Introspective + invoke meta-methods are publicly callable
                // (their per-item checks still apply inside); mutating ones
                // default to origin-only.
                let acl = if op.is_mutating() {
                    Acl::Origin
                } else {
                    Acl::Public
                };
                let method = Method::new(MethodBody::Meta(op)).with_invoke_acl(acl);
                match self.meta_section {
                    Section::Fixed => fixed_methods.push((name, method)),
                    Section::Extensible => ext_methods.push((name, method)),
                }
            }
        }
        MromObject {
            id: self.id,
            origin: self.origin,
            class_name: self.class_name,
            fixed_data: self.fixed_data.into_iter().collect(),
            fixed_methods: fixed_methods.into_iter().collect(),
            ext_data: self.ext_data.into_iter().collect(),
            ext_methods: ext_methods.into_iter().collect(),
            tower: Vec::new(),
            meta_acl: self.meta_acl,
            generation: 0,
            dispatch_cache: DispatchCache::default(),
            effects_cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_value::{IdGenerator, NodeId};

    fn ids() -> IdGenerator {
        IdGenerator::new(NodeId(1))
    }

    fn basic_object(gen: &mut IdGenerator) -> MromObject {
        ObjectBuilder::new(gen.next_id())
            .class("test")
            .fixed_data("core", DataItem::public(Value::Int(1)))
            .fixed_method(
                "m_fixed",
                Method::public(MethodBody::script("return 1;").unwrap()),
            )
            .ext_data("soft", DataItem::public(Value::from("x")))
            .ext_method(
                "m_ext",
                Method::public(MethodBody::script("return 2;").unwrap()),
            )
            .build()
    }

    #[test]
    fn meta_methods_are_registered_in_fixed_by_default() {
        let mut gen = ids();
        let obj = basic_object(&mut gen);
        for op in MetaOp::ALL {
            let (_, section) = obj.find_method(op.method_name()).expect("registered");
            assert_eq!(section, Section::Fixed, "{op:?}");
        }
    }

    #[test]
    fn meta_section_extensible_enables_meta_mutability() {
        let mut gen = ids();
        let obj = ObjectBuilder::new(gen.next_id())
            .meta_section(Section::Extensible)
            .build();
        let (_, section) = obj.find_method("invoke").unwrap();
        assert_eq!(section, Section::Extensible);
    }

    #[test]
    fn read_write_data_with_acls() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        // Public read works for anyone; write is origin-only by default.
        assert_eq!(obj.read_data(stranger, "core").unwrap(), Value::Int(1));
        assert!(matches!(
            obj.write_data(stranger, "core", Value::Int(2)),
            Err(MromError::AccessDenied { .. })
        ));
        obj.write_data(me, "core", Value::Int(2)).unwrap();
        assert_eq!(obj.read_data(me, "core").unwrap(), Value::Int(2));
        // Missing items.
        assert!(matches!(
            obj.read_data(me, "ghost"),
            Err(MromError::NoSuchDataItem { .. })
        ));
    }

    #[test]
    fn fixed_data_values_are_writable_but_structure_is_not() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        obj.write_data(me, "core", Value::Int(10)).unwrap();
        assert!(matches!(
            obj.delete_data(me, "core"),
            Err(MromError::FixedSectionViolation { .. })
        ));
        assert!(matches!(
            obj.set_data_item(
                me,
                "core",
                &Value::map([("read_acl", Value::from("public"))])
            ),
            Err(MromError::FixedSectionViolation { .. })
        ));
    }

    #[test]
    fn add_and_delete_extensible_data() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        obj.add_data(me, "n", Value::Int(5)).unwrap();
        assert_eq!(obj.read_data(me, "n").unwrap(), Value::Int(5));
        // Strangers cannot mutate structure (meta ACL).
        assert!(matches!(
            obj.add_data(stranger, "w", Value::Null),
            Err(MromError::AccessDenied { .. })
        ));
        assert!(matches!(
            obj.delete_data(stranger, "n"),
            Err(MromError::AccessDenied { .. })
        ));
        // Duplicate names rejected across sections.
        assert!(matches!(
            obj.add_data(me, "core", Value::Null),
            Err(MromError::DuplicateItem { .. })
        ));
        assert!(matches!(
            obj.add_data(me, "n", Value::Null),
            Err(MromError::DuplicateItem { .. })
        ));
        obj.delete_data(me, "n").unwrap();
        assert!(!obj.has_data(me, "n"));
        assert!(matches!(
            obj.delete_data(me, "n"),
            Err(MromError::NoSuchDataItem { .. })
        ));
    }

    #[test]
    fn set_data_item_changes_properties_and_renames() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let friend = gen.next_id();
        // Make `soft` readable+writable by friend via descriptor.
        obj.set_data_item(
            me,
            "soft",
            &Value::map([("write_acl", Value::list([Value::Str(friend.to_string())]))]),
        )
        .unwrap();
        obj.write_data(friend, "soft", Value::from("by friend"))
            .unwrap();
        // Rename.
        obj.set_data_item(me, "soft", &Value::map([("rename", Value::from("firm"))]))
            .unwrap();
        assert!(obj.has_data(me, "firm"));
        assert!(!obj.has_data(me, "soft"));
        // Rename collision.
        obj.add_data(me, "other", Value::Null).unwrap();
        assert!(matches!(
            obj.set_data_item(me, "other", &Value::map([("rename", Value::from("firm"))])),
            Err(MromError::DuplicateItem { .. })
        ));
        // Rename to the same name is a no-op.
        obj.set_data_item(me, "firm", &Value::map([("rename", Value::from("firm"))]))
            .unwrap();
        assert!(obj.has_data(me, "firm"));
    }

    #[test]
    fn descriptor_failure_leaves_item_untouched() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let before = obj.data_descriptor(me, "soft").unwrap();
        let err = obj.set_data_item(
            me,
            "soft",
            &Value::map([
                ("read_acl", Value::from("public")),
                ("constraint", Value::from("exact:int")), // "x" violates
            ]),
        );
        assert!(err.is_err());
        assert_eq!(obj.data_descriptor(me, "soft").unwrap(), before);
    }

    #[test]
    fn method_lifecycle() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        obj.add_method(
            me,
            "new_m",
            Method::public(MethodBody::script("return 3;").unwrap()),
        )
        .unwrap();
        assert!(obj.has_method(stranger, "new_m"));
        // setMethod guarded by meta ACL (origin-only by default).
        assert!(matches!(
            obj.set_method(
                stranger,
                "new_m",
                &Value::map([("invoke_acl", Value::from("origin"))])
            ),
            Err(MromError::AccessDenied { .. })
        ));
        obj.set_method(
            me,
            "new_m",
            &Value::map([("invoke_acl", Value::from("origin"))]),
        )
        .unwrap();
        assert!(!obj.has_method(stranger, "new_m"));
        // Fixed methods cannot be set or deleted.
        assert!(matches!(
            obj.set_method(
                me,
                "m_fixed",
                &Value::map([("invoke_acl", Value::from("origin"))])
            ),
            Err(MromError::FixedSectionViolation { .. })
        ));
        assert!(matches!(
            obj.delete_method(me, "m_fixed"),
            Err(MromError::FixedSectionViolation { .. })
        ));
        obj.delete_method(me, "new_m").unwrap();
        assert!(obj.find_method("new_m").is_none());
    }

    #[test]
    fn method_rename_updates_tower() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        obj.add_method(
            me,
            "mi",
            Method::public(MethodBody::script("return self.invoke(args[0], args[1]);").unwrap()),
        )
        .unwrap();
        obj.install_meta_invoke(me, "mi").unwrap();
        obj.set_method(me, "mi", &Value::map([("rename", Value::from("mi2"))]))
            .unwrap();
        assert_eq!(obj.tower(), [Arc::<str>::from("mi2")]);
    }

    #[test]
    fn deleting_a_tower_method_removes_the_level() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        obj.add_method(
            me,
            "mi",
            Method::new(MethodBody::script("return 0;").unwrap()),
        )
        .unwrap();
        obj.install_meta_invoke(me, "mi").unwrap();
        assert_eq!(obj.tower().len(), 1);
        obj.delete_method(me, "mi").unwrap();
        assert!(obj.tower().is_empty());
    }

    #[test]
    fn tower_requires_extensible_methods() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        assert!(matches!(
            obj.install_meta_invoke(me, "m_fixed"),
            Err(MromError::FixedSectionViolation { .. })
        ));
        assert!(matches!(
            obj.install_meta_invoke(me, "ghost"),
            Err(MromError::NoSuchMethod { .. })
        ));
        assert!(matches!(
            obj.install_meta_invoke(stranger, "m_ext"),
            Err(MromError::AccessDenied { .. })
        ));
        obj.install_meta_invoke(me, "m_ext").unwrap();
        assert_eq!(obj.uninstall_meta_invoke(me).unwrap(), Some("m_ext".into()));
        assert_eq!(obj.uninstall_meta_invoke(me).unwrap(), None);
    }

    #[test]
    fn method_descriptor_redacts_body_for_non_meta_callers() {
        let mut gen = ids();
        let obj = basic_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        let full = obj.method_descriptor(me, "m_ext").unwrap();
        assert!(!full.as_map().unwrap()["body"].is_null());
        let redacted = obj.method_descriptor(stranger, "m_ext").unwrap();
        let m = redacted.as_map().unwrap();
        assert!(m["body"].is_null());
        assert_eq!(m["redacted"], Value::Bool(true));
        // invoke_acl must still be visible so callers know they may call.
        assert_eq!(m["invoke_acl"], Value::from("public"));
    }

    #[test]
    fn listing_respects_visibility() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        obj.add_data_item(me, "secret", DataItem::new(Value::Int(0)))
            .unwrap();
        let visible: Vec<String> = obj
            .list_data(stranger)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(visible.contains(&"core".to_owned()));
        assert!(!visible.contains(&"secret".to_owned()));
        let mine: Vec<String> = obj.list_data(me).into_iter().map(|(n, _)| n).collect();
        assert!(mine.contains(&"secret".to_owned()));
        // Methods: stranger sees public ones plus non-mutating metas.
        let methods: Vec<String> = obj
            .list_methods(stranger)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(methods.contains(&"m_fixed".to_owned()));
        assert!(methods.contains(&"invoke".to_owned()));
        assert!(!methods.contains(&"addMethod".to_owned()));
    }

    #[test]
    fn describe_summarizes_visible_surface() {
        let mut gen = ids();
        let obj = basic_object(&mut gen);
        let stranger = gen.next_id();
        let desc = obj.describe(stranger);
        let m = desc.as_map().unwrap();
        assert_eq!(m["id"], Value::ObjectRef(obj.id()));
        assert_eq!(m["class"], Value::from("test"));
        assert!(m["methods"].as_list().unwrap().len() >= 2);
    }

    #[test]
    fn origin_rebinding() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let new_origin = gen.next_id();
        let stranger = gen.next_id();
        assert!(obj.set_origin(stranger, new_origin).is_err());
        obj.set_origin(me, new_origin).unwrap();
        assert_eq!(obj.origin(), new_origin);
        // Now the new origin holds the keys.
        assert!(obj.set_origin(me, me).is_err());
    }

    #[test]
    fn meta_acl_can_be_tightened_to_nobody() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        obj.set_meta_acl(me, Acl::Nobody).unwrap();
        // Even the origin is now locked out of structural mutation.
        assert!(matches!(
            obj.add_data(me, "x", Value::Null),
            Err(MromError::AccessDenied { .. })
        ));
        assert!(obj.set_meta_acl(me, Acl::Origin).is_err());
    }

    #[test]
    fn mobility_flag() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        assert!(obj.is_mobile());
        let me = obj.id();
        obj.add_method(
            me,
            "native",
            Method::new(MethodBody::native(|_, _| Ok(Value::Null))),
        )
        .unwrap();
        assert!(!obj.is_mobile());
    }

    #[test]
    fn lookup_method_caches_without_changing_resolution() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        // Cold and warm lookups agree with find_method for both sections,
        // and pure lookups never bump the structural generation.
        let g0 = obj.generation();
        for name in ["m_fixed", "m_ext", "invoke", "ghost"] {
            let via_find = obj.find_method(name).map(|(m, s)| (m.clone(), s));
            let cold = obj.lookup_method(name);
            let warm = obj.lookup_method(name);
            assert_eq!(cold, via_find, "{name}");
            assert_eq!(warm, via_find, "{name}");
        }
        assert_eq!(obj.generation(), g0);
    }

    #[test]
    fn set_method_invalidates_cached_handles() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let (before, _) = obj.lookup_method("m_ext").unwrap();
        let g0 = obj.generation();
        obj.set_method(
            me,
            "m_ext",
            &Value::map([("body", Value::from("return 99;"))]),
        )
        .unwrap();
        assert!(obj.generation() > g0);
        let (after, _) = obj.lookup_method("m_ext").unwrap();
        assert_ne!(after, before, "stale handle served after setMethod");
        assert_eq!(
            after.descriptor().as_map().unwrap()["body"],
            obj.find_method("m_ext")
                .unwrap()
                .0
                .descriptor()
                .as_map()
                .unwrap()["body"]
        );
    }

    #[test]
    fn delete_and_add_method_invalidate_cached_handles() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        obj.lookup_method("m_ext").unwrap(); // warm the cache
        obj.delete_method(me, "m_ext").unwrap();
        assert!(
            obj.lookup_method("m_ext").is_none(),
            "stale hit after deleteMethod"
        );
        let replacement = Method::public(MethodBody::script("return 7;").unwrap());
        obj.add_method(me, "m_ext", replacement.clone()).unwrap();
        let (found, section) = obj.lookup_method("m_ext").unwrap();
        assert_eq!(section, Section::Extensible);
        assert_eq!(found, replacement);
    }

    #[test]
    fn tower_changes_bump_generation() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        let g0 = obj.generation();
        obj.install_meta_invoke(me, "m_ext").unwrap();
        let g1 = obj.generation();
        assert!(g1 > g0);
        assert_eq!(obj.uninstall_meta_invoke(me).unwrap(), Some("m_ext".into()));
        assert!(obj.generation() > g1);
        // Popping an empty tower is a no-op, not a structural change.
        let g2 = obj.generation();
        assert_eq!(obj.uninstall_meta_invoke(me).unwrap(), None);
        assert_eq!(obj.generation(), g2);
    }

    #[test]
    fn cloned_objects_diverge_without_sharing_staleness() {
        let mut gen = ids();
        let mut obj = basic_object(&mut gen);
        let me = obj.id();
        obj.lookup_method("m_ext").unwrap(); // warm the cache
        let mut copy = obj.clone();
        assert_eq!(copy, obj);
        // Mutating the original must not leak into the copy's resolution
        // (and vice versa) even though the warm cache was cloned along.
        obj.delete_method(me, "m_ext").unwrap();
        assert!(obj.lookup_method("m_ext").is_none());
        assert!(copy.lookup_method("m_ext").is_some());
        assert_ne!(copy, obj);
    }

    #[test]
    fn equality_ignores_cache_state() {
        let mut gen = ids();
        let mut warm = basic_object(&mut gen);
        let cold = warm.clone();
        warm.lookup_method("m_fixed").unwrap();
        warm.lookup_method("m_ext").unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn item_count_counts_everything() {
        let mut gen = ids();
        let obj = basic_object(&mut gen);
        // 2 data + 2 own methods + 12 meta-methods (the paper's nine
        // plus the getStats/getEffects/getTelemetry reproduction
        // extensions).
        assert_eq!(obj.item_count(), 16);
    }
}
