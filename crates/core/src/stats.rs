//! The reflective stats surface: behaviour introspected *through the
//! model itself*.
//!
//! The paper's self-representation principle says an object answers
//! questions about its own structure with ordinary invocations. This
//! module extends the answerable questions to behaviour:
//!
//! * the `getStats` meta-method (auto-registered by
//!   [`crate::ObjectBuilder::build`] alongside the paper's nine) returns
//!   the object's live counters from the observability layer as a value
//!   map, and
//! * [`stats_object`] materializes those counters as a *read-only MROM
//!   object* — fixed section carries the schema, extensible section the
//!   live values — so stats are introspected with the same `getDataItem`
//!   machinery as everything else.
//!
//! Counters are only collected while [`mrom_obs`] is recording
//! ([`mrom_obs::set_mode`]); with observability disabled both surfaces
//! exist but report zeros.

use mrom_obs::ObjectStats;
use mrom_value::{ObjectId, Value};

use crate::item::DataItem;
use crate::object::{MromObject, ObjectBuilder};
use crate::security::Acl;

/// The payload of the `getStats` meta-method: the subject's live
/// counters, plus its identity and the current observability mode.
#[must_use]
pub fn stats_value(subject: ObjectId) -> Value {
    let mut v = mrom_obs::object_stats_value(subject);
    if let Some(m) = v.as_map_mut() {
        m.insert("object".to_owned(), Value::ObjectRef(subject));
        m.insert("obs_mode".to_owned(), Value::from(mrom_obs::mode().name()));
    }
    v
}

/// The payload of the `getTelemetry` meta-method: the recording
/// thread's windowed [`mrom_obs::TelemetrySnapshot`] (per-object
/// profiles, call matrix, link windows) as a value map, annotated with
/// the reflective subject that was asked. The snapshot is site-wide —
/// the object is the door, not the filter — so a mobile object can ask
/// "what is hot *here*" wherever it lands.
#[must_use]
pub fn telemetry_value(subject: ObjectId) -> Value {
    let mut v = mrom_obs::telemetry_value();
    if let Some(m) = v.as_map_mut() {
        m.insert("object".to_owned(), Value::ObjectRef(subject));
    }
    v
}

/// Materializes `subject`'s counters as a read-only MROM object.
///
/// Layout, per the self-representation discipline:
///
/// * **fixed section** (sealed): `subject` — who the stats describe —
///   and `schema`, a map from counter name to human description;
/// * **extensible section**: one data item per counter, holding the
///   value sampled at construction time.
///
/// Every item is world-readable but write-guarded by [`Acl::Nobody`],
/// and the object's meta ACL is `Nobody` too: the snapshot is immutable
/// by construction, yet fully introspectable via `getDataItem`,
/// `describe`, and plain reads.
#[must_use]
pub fn stats_object(stats_id: ObjectId, subject: ObjectId) -> MromObject {
    let stats = mrom_obs::object_stats(subject);
    let schema = Value::map(
        ObjectStats::schema()
            .iter()
            .map(|(name, doc)| (*name, Value::from(*doc))),
    );
    let mut builder = ObjectBuilder::new(stats_id)
        .class("mrom/stats")
        .meta_acl(Acl::Nobody)
        .fixed_data(
            "subject",
            DataItem::public(Value::ObjectRef(subject)).with_write_acl(Acl::Nobody),
        )
        .fixed_data(
            "schema",
            DataItem::public(schema).with_write_acl(Acl::Nobody),
        );
    if let Value::Map(entries) = stats.to_value() {
        for (name, value) in entries {
            builder = builder.ext_data(&name, DataItem::public(value).with_write_acl(Acl::Nobody));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_value::{IdGenerator, NodeId};

    #[test]
    fn stats_value_names_the_subject_and_mode() {
        let mut ids = IdGenerator::new(NodeId(4));
        let subject = ids.next_id();
        let v = stats_value(subject);
        let m = v.as_map().expect("stats are a map");
        assert_eq!(m.get("object"), Some(&Value::ObjectRef(subject)));
        assert!(m.contains_key("obs_mode"));
        assert!(m.contains_key("invocations"));
    }

    #[test]
    fn stats_object_is_introspectable_and_sealed() {
        let mut ids = IdGenerator::new(NodeId(4));
        let subject = ids.next_id();
        let snap = stats_object(ids.next_id(), subject);
        let reader = ids.next_id();
        // Schema in the fixed section, live values in the extensible one.
        assert_eq!(
            snap.read_data(reader, "subject").unwrap(),
            Value::ObjectRef(subject)
        );
        let listed = snap.list_data(reader);
        assert!(listed
            .iter()
            .any(|(n, s)| n == "schema" && *s == crate::container::Section::Fixed));
        assert!(listed
            .iter()
            .any(|(n, s)| n == "invocations" && *s == crate::container::Section::Extensible));
        // Read-only: even the origin may not write.
        let mut snap = snap;
        let origin = snap.origin();
        assert!(snap
            .write_data(origin, "invocations", Value::Int(99))
            .is_err());
    }
}
