//! Security coupled with encapsulation.
//!
//! The paper's position: "controlled access to each data-item or method
//! should serve both for visibility purposes — as with ordinary
//! object-oriented programming languages — as well as for ensuring
//! legitimacy of getting and setting data-items and of invoking methods".
//! Because the universe of callers spans trust domains, access is granted
//! at the granularity of *single objects* (ACLs of object identities), not
//! inheritance-relative categories like `protected`.
//!
//! Every data item carries a read and a write [`Acl`]; every method carries
//! an invoke ACL and a *meta* ACL (who may change the method via
//! `setMethod`/`deleteMethod`). All checks happen at one point — method
//! invocation (and the get/set entry points), matching the paper's "apply
//! security checks on one action only — method invocation".

use std::collections::BTreeSet;

use mrom_value::ObjectId;
use mrom_value::{Value, ValueError, ValueKind};

/// An access-control policy attached to a single item or method.
///
/// # Example
///
/// ```
/// use mrom_core::Acl;
/// use mrom_value::{NodeId, ObjectId};
///
/// let origin = ObjectId::from_parts(NodeId(1), 1, 1);
/// let friend = ObjectId::from_parts(NodeId(2), 1, 1);
/// let stranger = ObjectId::from_parts(NodeId(3), 1, 1);
///
/// let acl = Acl::only([friend]);
/// assert!(acl.permits(friend, origin));
/// assert!(!acl.permits(stranger, origin));
/// // The origin is always permitted: an object owns itself.
/// assert!(acl.permits(origin, origin));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acl {
    /// Anyone may perform the operation (public visibility).
    Public,
    /// Only the object itself / its origin (private visibility).
    Origin,
    /// The origin plus an explicit set of object identities.
    Only(BTreeSet<ObjectId>),
    /// No one, not even the origin. Used to freeze an operation for good
    /// (e.g. sealing meta-mutation before deployment into hostile hosts).
    Nobody,
}

impl Acl {
    /// Builds an [`Acl::Only`] from any iterable of identities.
    pub fn only<I: IntoIterator<Item = ObjectId>>(ids: I) -> Acl {
        Acl::Only(ids.into_iter().collect())
    }

    /// Is `caller` allowed, given that `origin` owns the guarded item?
    ///
    /// The origin is implicitly allowed by every policy except
    /// [`Acl::Nobody`] — an object can always reach its own items, which is
    /// what makes self-contained reflection possible.
    ///
    /// Inlined so the dominant `Public`/`Origin` policies decide in a
    /// branch or two on the invocation fast path, with no set probe.
    #[inline]
    pub fn permits(&self, caller: ObjectId, origin: ObjectId) -> bool {
        match self {
            Acl::Public => true,
            Acl::Origin => caller == origin,
            Acl::Only(ids) => caller == origin || ids.contains(&caller),
            Acl::Nobody => false,
        }
    }

    /// Adds a principal to an [`Acl::Only`] list; upgrades `Origin` to a
    /// singleton list. `Public` and `Nobody` are unchanged (they already
    /// dominate).
    pub fn grant(&mut self, id: ObjectId) {
        match self {
            Acl::Only(ids) => {
                ids.insert(id);
            }
            Acl::Origin => {
                *self = Acl::only([id]);
            }
            Acl::Public | Acl::Nobody => {}
        }
    }

    /// Removes a principal from an [`Acl::Only`] list (no-op otherwise).
    pub fn revoke(&mut self, id: ObjectId) {
        if let Acl::Only(ids) = self {
            ids.remove(&id);
            if ids.is_empty() {
                *self = Acl::Origin;
            }
        }
    }

    /// Serializes to a [`Value`] for descriptors and migration images:
    /// `"public"`, `"origin"`, `"nobody"`, or a list of id strings.
    pub fn to_value(&self) -> Value {
        match self {
            Acl::Public => Value::from("public"),
            Acl::Origin => Value::from("origin"),
            Acl::Nobody => Value::from("nobody"),
            Acl::Only(ids) => {
                Value::List(ids.iter().map(|id| Value::Str(id.to_string())).collect())
            }
        }
    }

    /// Rebuilds an ACL from [`Acl::to_value`] output (also accepted from
    /// descriptors handed to `setDataItem`/`setMethod`).
    ///
    /// # Errors
    ///
    /// [`ValueError::Malformed`] for unknown policy names or bad id lists.
    pub fn from_value(v: &Value) -> Result<Acl, ValueError> {
        match v {
            Value::Str(s) => match s.as_str() {
                "public" => Ok(Acl::Public),
                "origin" => Ok(Acl::Origin),
                "nobody" => Ok(Acl::Nobody),
                other => Err(ValueError::Malformed(format!(
                    "unknown acl policy {other:?}"
                ))),
            },
            Value::List(items) => {
                let mut ids = BTreeSet::new();
                for item in items {
                    match item {
                        Value::Str(s) => {
                            ids.insert(s.parse()?);
                        }
                        Value::ObjectRef(id) => {
                            ids.insert(*id);
                        }
                        other => {
                            return Err(ValueError::Malformed(format!(
                                "acl entries must be id strings or object refs, got {}",
                                other.kind()
                            )))
                        }
                    }
                }
                Ok(Acl::Only(ids))
            }
            other => Err(ValueError::Malformed(format!(
                "acl must be a policy string or id list, got {}",
                other.kind()
            ))),
        }
    }
}

impl Default for Acl {
    /// The default policy is [`Acl::Origin`]: encapsulated-private, the safe
    /// default for mobile code landing in untrusted territory.
    fn default() -> Self {
        Acl::Origin
    }
}

/// An optional *dynamic type* constraint on a data item: writes must be of
/// (or coercible to) this kind.
///
/// MROM is weakly typed, so constraints are opt-in per item and enforced at
/// write time, not declared in any static signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TypeConstraint {
    /// No constraint: any value may be written.
    #[default]
    Any,
    /// The written value must already be of this kind.
    Exact(ValueKind),
    /// The written value is coerced to this kind; un-coercible writes fail.
    Coerce(ValueKind),
}

impl TypeConstraint {
    /// Applies the constraint to a candidate value.
    ///
    /// # Errors
    ///
    /// [`ValueError`] when an exact constraint mismatches or a coercion
    /// fails; the caller maps this to `MromError::TypeConstraint`.
    pub fn apply(&self, v: Value) -> Result<Value, ValueError> {
        match self {
            TypeConstraint::Any => Ok(v),
            TypeConstraint::Exact(kind) => {
                if v.kind() == *kind {
                    Ok(v)
                } else {
                    Err(ValueError::CoercionFailed {
                        from: v.kind(),
                        to: *kind,
                        detail: "exact type constraint".into(),
                    })
                }
            }
            TypeConstraint::Coerce(kind) => v.coerce(*kind),
        }
    }

    /// Serializes for descriptors: `"any"`, `"exact:int"`, `"coerce:str"`.
    pub fn to_value(&self) -> Value {
        match self {
            TypeConstraint::Any => Value::from("any"),
            TypeConstraint::Exact(k) => Value::Str(format!("exact:{}", k.name())),
            TypeConstraint::Coerce(k) => Value::Str(format!("coerce:{}", k.name())),
        }
    }

    /// Rebuilds from [`TypeConstraint::to_value`] output.
    ///
    /// # Errors
    ///
    /// [`ValueError::Malformed`] on unknown forms.
    pub fn from_value(v: &Value) -> Result<TypeConstraint, ValueError> {
        let s = v.as_str().ok_or_else(|| {
            ValueError::Malformed(format!(
                "type constraint must be a string, got {}",
                v.kind()
            ))
        })?;
        if s == "any" {
            return Ok(TypeConstraint::Any);
        }
        let (mode, kind_name) = s
            .split_once(':')
            .ok_or_else(|| ValueError::Malformed(format!("bad type constraint {s:?}")))?;
        let kind = ValueKind::from_name(kind_name)
            .ok_or_else(|| ValueError::Malformed(format!("unknown kind {kind_name:?}")))?;
        match mode {
            "exact" => Ok(TypeConstraint::Exact(kind)),
            "coerce" => Ok(TypeConstraint::Coerce(kind)),
            other => Err(ValueError::Malformed(format!(
                "unknown constraint mode {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_value::NodeId;

    fn id(n: u64) -> ObjectId {
        ObjectId::from_parts(NodeId(n), 1, 1)
    }

    #[test]
    fn policy_semantics() {
        let origin = id(1);
        let friend = id(2);
        let stranger = id(3);
        assert!(Acl::Public.permits(stranger, origin));
        assert!(Acl::Origin.permits(origin, origin));
        assert!(!Acl::Origin.permits(friend, origin));
        assert!(Acl::only([friend]).permits(friend, origin));
        assert!(!Acl::only([friend]).permits(stranger, origin));
        assert!(!Acl::Nobody.permits(origin, origin));
    }

    #[test]
    fn grant_and_revoke() {
        let mut acl = Acl::Origin;
        acl.grant(id(2));
        assert!(acl.permits(id(2), id(1)));
        acl.grant(id(3));
        acl.revoke(id(2));
        assert!(!acl.permits(id(2), id(1)));
        assert!(acl.permits(id(3), id(1)));
        // Revoking the last grantee degrades to Origin.
        acl.revoke(id(3));
        assert_eq!(acl, Acl::Origin);
        // Public stays public.
        let mut acl = Acl::Public;
        acl.grant(id(2));
        acl.revoke(id(2));
        assert_eq!(acl, Acl::Public);
    }

    #[test]
    fn acl_value_round_trip() {
        for acl in [
            Acl::Public,
            Acl::Origin,
            Acl::Nobody,
            Acl::only([id(1), id(2)]),
            Acl::only([]),
        ] {
            assert_eq!(Acl::from_value(&acl.to_value()).unwrap(), acl);
        }
    }

    #[test]
    fn acl_from_value_accepts_object_refs() {
        let v = Value::list([Value::ObjectRef(id(5))]);
        assert_eq!(Acl::from_value(&v).unwrap(), Acl::only([id(5)]));
    }

    #[test]
    fn acl_from_value_rejects_garbage() {
        assert!(Acl::from_value(&Value::from("friends")).is_err());
        assert!(Acl::from_value(&Value::Int(1)).is_err());
        assert!(Acl::from_value(&Value::list([Value::Int(1)])).is_err());
        assert!(Acl::from_value(&Value::list([Value::from("not an id")])).is_err());
    }

    #[test]
    fn default_is_origin_private() {
        assert_eq!(Acl::default(), Acl::Origin);
    }

    #[test]
    fn type_constraints() {
        assert_eq!(
            TypeConstraint::Any.apply(Value::from("x")).unwrap(),
            Value::from("x")
        );
        assert_eq!(
            TypeConstraint::Exact(ValueKind::Int)
                .apply(Value::Int(3))
                .unwrap(),
            Value::Int(3)
        );
        assert!(TypeConstraint::Exact(ValueKind::Int)
            .apply(Value::from("3"))
            .is_err());
        assert_eq!(
            TypeConstraint::Coerce(ValueKind::Int)
                .apply(Value::from("<b>3</b>"))
                .unwrap(),
            Value::Int(3)
        );
        assert!(TypeConstraint::Coerce(ValueKind::Int)
            .apply(Value::from("abc"))
            .is_err());
    }

    #[test]
    fn type_constraint_value_round_trip() {
        for tc in [
            TypeConstraint::Any,
            TypeConstraint::Exact(ValueKind::Float),
            TypeConstraint::Coerce(ValueKind::Str),
        ] {
            assert_eq!(TypeConstraint::from_value(&tc.to_value()).unwrap(), tc);
        }
        assert!(TypeConstraint::from_value(&Value::from("weird")).is_err());
        assert!(TypeConstraint::from_value(&Value::from("exact:thing")).is_err());
        assert!(TypeConstraint::from_value(&Value::Int(1)).is_err());
    }
}
