//! Object-level effect signatures: the bridge from an [`MromObject`]'s
//! method table to the interprocedural solver in [`mrom_script::effects`].
//!
//! The script-side solver is object-agnostic — it closes a name →
//! [`LocalEffects`] map over the `self.invoke` call graph. This module
//! supplies that map for a concrete object:
//!
//! * **script** bodies are analyzed directly ([`LocalEffects::of_program`]);
//! * **native** bodies are opaque — analysis cannot see into a Rust
//!   closure, so everything reaching one is poisoned to the worst case;
//! * **meta** bodies are synthesized per-operation from the known
//!   semantics of the reflective surface (e.g. `invoke` is a dynamic
//!   dispatch joining every method; `getStats` is an effect-free read).
//!
//! The result is cached on the object behind the same structural
//! generation stamp as the dispatch cache ([`MromObject::effects`]), and
//! exposed reflectively through the `getEffects` meta-method.

use std::collections::BTreeMap;

use mrom_script::{solve_effects, EffectSignature, LocalEffects};
use mrom_value::Value;

use crate::method::{MetaOp, MethodBody};
use crate::object::MromObject;

/// Per-body effect facts for one method body, dispatching on its kind.
pub(crate) fn local_effects(body: &MethodBody) -> LocalEffects {
    match body {
        MethodBody::Native(_) => LocalEffects::opaque(),
        // Cached on the `Program` — a re-solve after structural change
        // only re-extracts bodies that were actually replaced.
        MethodBody::Script(p) => (*p.local_effects()).clone(),
        MethodBody::Meta(op) => meta_local(*op),
    }
}

/// Synthesized local effects of a reflective meta-operation. These are
/// host-implemented but *not* opaque: their semantics are part of the
/// model, so the signature can be exact where a native closure would
/// poison everything.
fn meta_local(op: MetaOp) -> LocalEffects {
    // The accessors take the item/method *name as an argument*, so the
    // touched sets are unknown statically: mark the dynamic flag of the
    // matching namespace rather than naming items.
    let mut l = LocalEffects {
        constant_writes_only: true,
        local_fuel: Some(0),
        ..LocalEffects::default()
    };
    match op {
        MetaOp::GetDataItem => l.manifest.dynamic_data = true,
        MetaOp::SetDataItem => {
            l.manifest.dynamic_data = true;
            // The stored value is caller-supplied: never provably constant.
            l.constant_writes_only = false;
        }
        MetaOp::AddDataItem | MetaOp::DeleteDataItem => {
            l.manifest.dynamic_data = true;
            l.manifest.meta_used.insert(structural_name(op).to_owned());
        }
        // Reading a method body is reflective but effect-free.
        MetaOp::GetMethod => {}
        MetaOp::SetMethod | MetaOp::AddMethod | MetaOp::DeleteMethod => {
            l.manifest.meta_used.insert(structural_name(op).to_owned());
        }
        // `invoke(name, args)` with a caller-supplied name: dynamic
        // dispatch — the solver joins every method in the object.
        MetaOp::Invoke => l.manifest.dynamic_methods = true,
        // Pure host-side reads of derived state.
        MetaOp::GetStats | MetaOp::GetEffects | MetaOp::GetTelemetry => {}
    }
    l
}

/// The script-surface name of a structural meta-op (the spelling the
/// solver's structural-op table uses).
fn structural_name(op: MetaOp) -> &'static str {
    match op {
        MetaOp::AddDataItem => "add_data_item",
        MetaOp::DeleteDataItem => "delete_data_item",
        MetaOp::SetMethod => "set_method",
        MetaOp::AddMethod => "add_method",
        MetaOp::DeleteMethod => "delete_method",
        _ => unreachable!("not a structural meta-op"),
    }
}

/// Computes the interprocedural effect signature of every method the
/// object carries (fixed and extensible sections, meta-methods
/// included), uncached. Deterministic for a given structural shape.
#[must_use]
pub fn object_effects(obj: &MromObject) -> BTreeMap<String, EffectSignature> {
    let locals: BTreeMap<String, LocalEffects> = obj
        .all_methods()
        .map(|(name, m)| (name.to_owned(), local_effects(m.body())))
        .collect();
    solve_effects(&locals)
}

/// `true` when two effect signatures provably cannot interfere: neither
/// is structural, dynamic, or opaque, and neither writes anything the
/// other reads or writes. Two invocations with disjoint signatures could
/// in principle have run concurrently — the shared runtime classifies
/// checkout collisions with this predicate to measure how much
/// parallelism its object-granular locking leaves on the table.
#[must_use]
pub fn signatures_disjoint(a: &EffectSignature, b: &EffectSignature) -> bool {
    fn exact(s: &EffectSignature) -> bool {
        !s.structural && !s.dynamic && !s.opaque
    }
    fn independent(x: &EffectSignature, y: &EffectSignature) -> bool {
        x.writes
            .iter()
            .all(|w| !y.reads.contains(w) && !y.writes.contains(w))
    }
    exact(a) && exact(b) && independent(a, b) && independent(b, a)
}

/// Renders a full signature table as a deterministic value tree: the
/// zero-argument `getEffects` reflective surface.
#[must_use]
pub fn effects_value(table: &BTreeMap<String, EffectSignature>) -> Value {
    Value::Map(
        table
            .iter()
            .map(|(name, sig)| (name.clone(), sig.to_value()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::DataItem;
    use crate::method::Method;
    use crate::object::ObjectBuilder;
    use mrom_value::{IdGenerator, NodeId};

    fn ids() -> IdGenerator {
        IdGenerator::new(NodeId(7))
    }

    fn scripted(src: &str) -> Method {
        Method::public(MethodBody::script(src).unwrap())
    }

    #[test]
    fn script_methods_get_closed_signatures() {
        let mut gen = ids();
        let obj = ObjectBuilder::new(gen.next_id())
            .class("Acct")
            .ext_method("peek", scripted("return self.get(\"bal\");"))
            .ext_method("reset", scripted("self.set(\"bal\", 0); return null;"))
            .ext_data("bal", DataItem::public(Value::Int(10)))
            .build();
        let sigs = object_effects(&obj);
        assert!(sigs["peek"].pure);
        assert!(sigs["reset"].idempotent && !sigs["reset"].pure);
        assert!(sigs["peek"].reads.contains("bal"));
    }

    #[test]
    fn native_bodies_poison_callers_meta_getters_do_not() {
        let mut gen = ids();
        let obj = ObjectBuilder::new(gen.next_id())
            .class("Mixed")
            .ext_method(
                "native",
                Method::public(MethodBody::native(|_, _| Ok(Value::Null))),
            )
            .ext_method(
                "calls_native",
                scripted("return self.invoke(\"native\", []);"),
            )
            .ext_method("stats", scripted("return self.invoke(\"getStats\", []);"))
            .build();
        let sigs = object_effects(&obj);
        assert!(sigs["native"].opaque);
        assert!(sigs["calls_native"].opaque && !sigs["calls_native"].migration_safe);
        assert!(
            sigs["stats"].migration_safe,
            "getStats is a known pure read: {:?}",
            sigs["stats"]
        );
        assert!(sigs["getStats"].pure && sigs["getEffects"].pure);
    }

    #[test]
    fn invoke_meta_op_is_the_dynamic_join() {
        let mut gen = ids();
        let obj = ObjectBuilder::new(gen.next_id())
            .class("Inv")
            .ext_method("beeper", scripted("self.beep(1); return null;"))
            .build();
        let sigs = object_effects(&obj);
        let invoke = &sigs["invoke"];
        assert!(invoke.dynamic && !invoke.migration_safe);
        assert!(invoke.world_calls.contains("beep"), "{invoke:?}");
    }

    #[test]
    fn structural_meta_ops_are_structural() {
        let mut gen = ids();
        let obj = ObjectBuilder::new(gen.next_id()).class("S").build();
        let sigs = object_effects(&obj);
        for name in ["addMethod", "deleteMethod", "setMethod", "addDataItem"] {
            assert!(sigs[name].structural, "{name} must be structural");
            assert!(!sigs[name].idempotent, "{name} must not be idempotent");
        }
        assert!(!sigs["getDataItem"].pure, "dynamic read is a lower bound");
        assert!(sigs["getDataItem"].migration_safe);
        assert!(!sigs["setDataItem"].idempotent, "caller-supplied value");
    }

    #[test]
    fn disjointness_needs_exact_nonoverlapping_signatures() {
        let mut gen = ids();
        let obj = ObjectBuilder::new(gen.next_id())
            .class("D")
            .ext_method("read_a", scripted("return self.get(\"a\");"))
            .ext_method("write_b", scripted("self.set(\"b\", 1); return null;"))
            .ext_method("write_a", scripted("self.set(\"a\", 1); return null;"))
            .ext_method(
                "grow",
                scripted("self.add_method(\"x\", \"return 1;\"); return null;"),
            )
            .build();
        let sigs = object_effects(&obj);
        assert!(signatures_disjoint(&sigs["read_a"], &sigs["write_b"]));
        assert!(!signatures_disjoint(&sigs["read_a"], &sigs["write_a"]));
        assert!(!signatures_disjoint(&sigs["write_a"], &sigs["write_a"]));
        assert!(
            !signatures_disjoint(&sigs["read_a"], &sigs["grow"]),
            "structural mutation conflicts with everything"
        );
    }

    #[test]
    fn effects_value_is_a_map_keyed_by_method() {
        let mut gen = ids();
        let obj = ObjectBuilder::new(gen.next_id())
            .class("V")
            .ext_method("m", scripted("return 1;"))
            .build();
        let v = effects_value(&object_effects(&obj));
        let Value::Map(m) = v else { panic!("map") };
        assert!(m.contains_key("m") && m.contains_key("invoke"));
    }
}
