//! # mrom-core
//!
//! A Rust reproduction of **MROM** — the Mutable Reflective Object Model of
//! Holder & Ben-Shaul, *A Reflective Model for Mobile Software Objects*
//! (ICDCS 1997).
//!
//! ## The model in one paragraph
//!
//! An [`MromObject`] is an autonomous computational entity built from four
//! item containers: **fixed** data and methods (sealed at construction; the
//! stable basis for specialization) and **extensible** data and methods
//! (mutable at runtime; the adaptation surface for foreign environments).
//! Nine reflective **meta-methods** — `get/set/add/deleteDataItem`,
//! `get/set/add/deleteMethod`, and `invoke` — are bundled *inside* every
//! object, so a mobile object carries its own reflection. Invocation runs a
//! three-phase base mechanism (**Lookup → Match → Apply**) where Match is a
//! per-item [`Acl`] check — security and encapsulation are the same
//! mechanism — and Apply wraps the body in optional pre-/post-procedures.
//! `invoke` itself can be wrapped by installed *meta-invoke* levels (the
//! invocation tower of the paper's Figure 1), enabling semantics such as
//! charging, approval, and maintenance cut-offs to be attached at runtime.
//!
//! ## Substitutions relative to the paper
//!
//! The paper's implementation substrate is Java (bytecode mobility, runtime
//! reflection). Rust offers neither, so method bodies are either *native*
//! Rust closures (fast, not mobile) or *script* programs in the
//! [`mrom_script`] language (data: serializable, shippable, executable on
//! any node). Migration images ([`MromObject::migration_image`]) are fully
//! self-contained byte strings in the hand-rolled wire format of
//! [`mrom_value`].
//!
//! ## Quick start
//!
//! ```
//! use mrom_core::{invoke, Acl, DataItem, Method, MethodBody, NoWorld, ObjectBuilder};
//! use mrom_value::{IdGenerator, NodeId, Value};
//!
//! # fn main() -> Result<(), mrom_core::MromError> {
//! let mut ids = IdGenerator::new(NodeId(1));
//! let mut obj = ObjectBuilder::new(ids.next_id())
//!     .class("greeter")
//!     .fixed_data("greeting", DataItem::public(Value::from("hello")))
//!     .fixed_method(
//!         "greet",
//!         Method::public(MethodBody::script(
//!             "param who; return self.get(\"greeting\") + \", \" + who;",
//!         )?),
//!     )
//!     .build();
//!
//! let caller = ids.next_id();
//! let mut world = NoWorld;
//! let out = invoke(&mut obj, &mut world, caller, "greet", &[Value::from("world")])?;
//! assert_eq!(out, Value::from("hello, world"));
//!
//! // Runtime mutability: the object grows a method after construction.
//! let me = obj.id();
//! obj.add_method(me, "shout", Method::public(MethodBody::script(
//!     "return upper(self.get(\"greeting\"));",
//! )?))?;
//! assert_eq!(invoke(&mut obj, &mut world, caller, "shout", &[])?, Value::from("HELLO"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod class;
mod container;
mod effects;
mod error;
mod invoke;
mod item;
mod method;
mod migrate;
mod object;
mod runtime;
mod security;
mod shared;
mod stats;

pub use admission::{default_admission_policy, set_default_admission_policy, AdmissionPolicy};
pub use class::{ClassRegistry, ClassSpec};
pub use container::{ExtensibleContainer, FixedContainer, Section};
pub use effects::{effects_value, object_effects, signatures_disjoint};
pub use error::MromError;
pub use invoke::{
    invoke, invoke_with_limits, script_engine, set_script_engine, CallEnv, InvokeLimits, NoWorld,
    ScriptEngine, WorldHook,
};
pub use item::DataItem;
pub use method::{MetaOp, Method, MethodBody, NativeFn};
pub use migrate::IMAGE_FORMAT;
pub use mrom_script::analyze::{
    analyze_program, AnalysisReport, Diagnostic, DiagnosticKind, HostManifest, ResourceBudget,
    Severity,
};
pub use mrom_script::{EffectSignature, LocalEffects};
pub use object::{MromObject, ObjectBuilder};
pub use runtime::Runtime;
pub use security::{Acl, TypeConstraint};
pub use shared::{ClassesGuard, ObjectGuard, PoisonCause, SharedRuntime, SHARD_COUNT};
pub use stats::{stats_object, stats_value};

/// Crate-local result alias over [`MromError`].
pub type Result<T> = std::result::Result<T, MromError>;
