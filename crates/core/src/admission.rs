//! The admission pipeline: static verification of mobile code at every
//! trust boundary.
//!
//! `mrom-script`'s analyzer checks a [`Program`] in isolation (scope,
//! host-call surface, resource shape). This module supplies the
//! object-level **cross-check** — pass 4 of the pipeline — which validates
//! every method body's [`HostManifest`] against the owning object's
//! *actual* data items, methods, and ACLs:
//!
//! * a `self.get("x")` where the object has no item `"x"` (and no body
//!   creates it) is a [`DiagnosticKind::DanglingDataItem`];
//! * a `self.invoke("m", ...)` naming a method the object lacks is a
//!   [`DiagnosticKind::DanglingMethodCall`] — or, when `"m"` is one of the
//!   nine reflective meta-method names, a
//!   [`DiagnosticKind::UnknownMetaMethod`] (the object was built without
//!   its bundled meta-methods);
//! * a call gated by [`Acl::Nobody`] can never succeed for *any*
//!   principal, the executing object included —
//!   [`DiagnosticKind::AclUnsatisfiable`].
//!
//! Admission is also where script bodies are **compiled**: the
//! script-level pass (pass 1) lowers every error-free body to register
//! bytecode as a side effect, caching the result on the [`Program`]
//! itself — "analyze" means *verify + compile*, so the invocation path
//! never pays compilation. The cache never serializes; a migrated body
//! is recompiled here, on the admitting host, where it is re-verified.
//!
//! An [`AdmissionPolicy`] decides what happens at each boundary:
//! `Off` skips analysis entirely (byte-for-byte today's behaviour),
//! `Warn` pays the analysis cost but always admits, and `Strict` rejects
//! error-severity findings with [`MromError::AdmissionRejected`]. The
//! process-wide default policy (used by [`MromObject::from_image`],
//! `add_method`, and `set_method`) starts `Off` and is changed with
//! [`set_default_admission_policy`]; migration boundaries also have
//! explicit `*_with_policy` entry points.

use std::sync::atomic::{AtomicU8, Ordering};

use mrom_script::analyze::{
    analyze_with_budget, Diagnostic, DiagnosticKind, HostManifest, ResourceBudget,
};
use mrom_script::Program;

use crate::error::MromError;
use crate::method::{MetaOp, Method, MethodBody};
use crate::object::MromObject;
use crate::security::Acl;

/// How much checking a trust boundary performs before accepting mobile
/// code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AdmissionPolicy {
    /// No analysis at all — the pre-admission behaviour, byte for byte.
    #[default]
    Off,
    /// Analyze (the cost is paid, diagnostics are computable via
    /// [`MromObject::analyze`]) but always admit.
    Warn,
    /// Reject error-severity findings with
    /// [`MromError::AdmissionRejected`]. Warnings never block.
    Strict,
}

impl AdmissionPolicy {
    fn from_u8(v: u8) -> AdmissionPolicy {
        match v {
            1 => AdmissionPolicy::Warn,
            2 => AdmissionPolicy::Strict,
            _ => AdmissionPolicy::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            AdmissionPolicy::Off => 0,
            AdmissionPolicy::Warn => 1,
            AdmissionPolicy::Strict => 2,
        }
    }
}

/// Process-wide default policy; `Off` until configured.
static DEFAULT_POLICY: AtomicU8 = AtomicU8::new(0);

/// The process-wide default [`AdmissionPolicy`], consulted by
/// [`MromObject::from_image`], [`MromObject::from_image_value`],
/// `add_method`, and `set_method`.
pub fn default_admission_policy() -> AdmissionPolicy {
    AdmissionPolicy::from_u8(DEFAULT_POLICY.load(Ordering::Relaxed))
}

/// Sets the process-wide default [`AdmissionPolicy`], returning the
/// previous one.
pub fn set_default_admission_policy(policy: AdmissionPolicy) -> AdmissionPolicy {
    AdmissionPolicy::from_u8(DEFAULT_POLICY.swap(policy.as_u8(), Ordering::Relaxed))
}

/// Host-surface names whose implementation goes through the *object* meta
/// ACL (`check_meta` / tower manipulation): statically unsatisfiable when
/// that ACL is [`Acl::Nobody`].
const OBJECT_META_GATED: &[&str] = &[
    "add_data_item",
    "delete_data_item",
    "add_method",
    "delete_method",
];

impl MromObject {
    /// Runs the full admission analysis over every script body this object
    /// carries (method bodies, pre-, and post-procedures in both
    /// sections), cross-checking each body's `self.*` manifest against the
    /// object's actual items and ACLs. Diagnostic paths are prefixed
    /// `"<method>.<part>"`.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        self.analyze_with_budget(&ResourceBudget::default())
    }

    /// [`MromObject::analyze`] under an explicit resource budget.
    pub fn analyze_with_budget(&self, budget: &ResourceBudget) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (name, method) in self.methods_iter() {
            analyze_method_parts(self, None, name, method, budget, &mut out);
        }
        out
    }

    /// Analyzes a *candidate* method (not yet installed) against this
    /// object, as `add_method`/`set_method` admission does. The candidate's
    /// own `name` counts as present, so self-recursion is admissible.
    pub fn analyze_method(&self, name: &str, method: &Method) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        analyze_method_parts(
            self,
            Some(name),
            name,
            method,
            &ResourceBudget::default(),
            &mut out,
        );
        out
    }
}

/// Analyzes every script part of one method, appending contextualized
/// diagnostics. `candidate` names a method considered present even though
/// it is not installed yet.
fn analyze_method_parts(
    obj: &MromObject,
    candidate: Option<&str>,
    name: &str,
    method: &Method,
    budget: &ResourceBudget,
    out: &mut Vec<Diagnostic>,
) {
    let parts = [
        ("body", Some(method.body())),
        ("pre", method.pre()),
        ("post", method.post()),
    ];
    for (part, body) in parts {
        if let Some(MethodBody::Script(program)) = body {
            check_program(
                obj,
                candidate,
                program,
                &format!("{name}.{part}"),
                budget,
                out,
            );
        }
    }
}

/// Passes 1–3 (delegated to `mrom-script`) plus pass 4: the object
/// cross-check.
fn check_program(
    obj: &MromObject,
    candidate: Option<&str>,
    program: &Program,
    context: &str,
    budget: &ResourceBudget,
    out: &mut Vec<Diagnostic>,
) {
    let report = analyze_with_budget(program, budget);
    out.extend(
        report
            .diagnostics
            .into_iter()
            .map(|d| d.in_context(context)),
    );
    cross_check_manifest(obj, candidate, &report.manifest, context, out);
}

fn cross_check_manifest(
    obj: &MromObject,
    candidate: Option<&str>,
    manifest: &HostManifest,
    context: &str,
    out: &mut Vec<Diagnostic>,
) {
    let diag = |kind: DiagnosticKind, message: String| Diagnostic::new(kind, context, message);

    // Data items: reads, writes, and deletes must name items the object
    // carries or the same body creates; Nobody-gated access can never be
    // permitted (a script runs with its own object as principal, and even
    // `self` fails an `Acl::Nobody` check).
    let data_checks = [
        (&manifest.data_read, "read", true),
        (&manifest.data_written, "write", false),
        (&manifest.data_deleted, "delete", false),
    ];
    for (names, op, is_read) in data_checks {
        for n in names {
            if manifest.data_created.contains(n) {
                continue;
            }
            match obj.find_data(n) {
                None => out.push(diag(
                    DiagnosticKind::DanglingDataItem,
                    format!("self.{op} of data item {n:?}, which this object does not carry"),
                )),
                Some((item, _)) => {
                    let acl = if is_read {
                        item.read_acl()
                    } else {
                        item.write_acl()
                    };
                    // Deletion is gated by the object meta ACL, not the
                    // item's write ACL.
                    if op != "delete" && matches!(acl, Acl::Nobody) {
                        out.push(diag(
                            DiagnosticKind::AclUnsatisfiable,
                            format!(
                                "data item {n:?} has an Acl::Nobody {op} ACL: no principal \
                                 can ever {op} it"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Methods: invocations and structural references must resolve.
    let method_present = |n: &str| {
        obj.find_method(n).is_some() || manifest.methods_created.contains(n) || candidate == Some(n)
    };
    for n in &manifest.methods_invoked {
        if !method_present(n) {
            out.push(missing_method(n, "self.invoke", context));
            continue;
        }
        if let Some((m, _)) = obj.find_method(n) {
            if matches!(m.invoke_acl(), Acl::Nobody) {
                out.push(diag(
                    DiagnosticKind::AclUnsatisfiable,
                    format!(
                        "method {n:?} has an Acl::Nobody invoke ACL: no principal can \
                         ever invoke it"
                    ),
                ));
            }
        }
    }
    for n in &manifest.methods_referenced {
        if !method_present(n) {
            out.push(missing_method(n, "a reference to", context));
        }
    }

    // Structural mutation through the object meta ACL: statically dead
    // when that ACL is Nobody.
    if matches!(obj.meta_acl(), Acl::Nobody) {
        for op in &manifest.meta_used {
            if OBJECT_META_GATED.contains(&op.as_str()) {
                out.push(diag(
                    DiagnosticKind::AclUnsatisfiable,
                    format!(
                        "self.{op} needs the object meta ACL, which is Acl::Nobody: no \
                         principal can ever satisfy it"
                    ),
                ));
            }
        }
    }
}

/// Classifies a missing method name: the nine reflective meta-methods get
/// their own kind (the object travels without its bundled reflection),
/// anything else is a plain dangling reference.
fn missing_method(name: &str, via: &str, context: &str) -> Diagnostic {
    if MetaOp::from_method_name(name).is_some() {
        Diagnostic::new(
            DiagnosticKind::UnknownMetaMethod,
            context,
            format!(
                "{via} meta-method {name:?}, but this object does not carry its \
                 bundled meta-methods"
            ),
        )
    } else {
        Diagnostic::new(
            DiagnosticKind::DanglingMethodCall,
            context,
            format!("{via} method {name:?}, which this object does not carry"),
        )
    }
}

/// Enforces a policy over a fully-built object (migration / persistence
/// admission).
pub(crate) fn admit_object(
    policy: AdmissionPolicy,
    obj: &MromObject,
    boundary: &str,
) -> Result<(), MromError> {
    enforce(policy, obj, boundary, MromObject::analyze)
}

/// Enforces a policy over a candidate method (`add_method`/`set_method`
/// admission).
pub(crate) fn admit_method(
    policy: AdmissionPolicy,
    obj: &MromObject,
    name: &str,
    method: &Method,
    boundary: &str,
) -> Result<(), MromError> {
    enforce(policy, obj, boundary, |o| o.analyze_method(name, method))
}

fn enforce(
    policy: AdmissionPolicy,
    obj: &MromObject,
    boundary: &str,
    analyze: impl FnOnce(&MromObject) -> Vec<Diagnostic>,
) -> Result<(), MromError> {
    match policy {
        AdmissionPolicy::Off => Ok(()),
        AdmissionPolicy::Warn => {
            let diagnostics = analyze(obj);
            mrom_obs::admission_verdict(boundary, true, diagnostics.len());
            Ok(())
        }
        AdmissionPolicy::Strict => {
            let diagnostics = analyze(obj);
            let rejected = diagnostics
                .iter()
                .any(|d| d.severity == mrom_script::analyze::Severity::Error);
            mrom_obs::admission_verdict(boundary, !rejected, diagnostics.len());
            if rejected {
                Err(MromError::AdmissionRejected {
                    object: obj.id(),
                    context: boundary.to_owned(),
                    diagnostics,
                })
            } else {
                Ok(())
            }
        }
    }
}
