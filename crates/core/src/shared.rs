//! Concurrent site runtime: many invocations in parallel on one node.
//!
//! [`SharedRuntime`] generalizes the single-threaded [`crate::Runtime`]
//! busy-set into a real concurrency protocol. The object table is split
//! into [`SHARD_COUNT`] hash-sharded maps, each behind its own `RwLock`;
//! an invocation **checks its target out** under the shard's write lock
//! (flipping the slot from `Present` to `Busy`), executes the level-0
//! Lookup→Match→Apply **without holding any lock** — the PR-1 `Arc<str>`
//! tower and `Arc`-backed method handles make all hot dispatch state
//! shareable — and checks the object back in when done. Concurrent calls
//! to the *same* object observe the `Busy` slot and report
//! [`MromError::ObjectBusy`]; calls to *different* objects proceed truly
//! in parallel.
//!
//! Why object granularity? In MROM, each object carries its own dispatch
//! state, generation stamp, and ACLs — security and encapsulation are the
//! same per-item mechanism — so the object is the natural unit of mutual
//! exclusion: no lock ordering between objects is ever needed, because no
//! invocation holds two objects at once (nested `send`s check the callee
//! out *after* the caller, and a cycle surfaces as `ObjectBusy`, exactly
//! like the single-threaded busy set).
//!
//! ## Slot state machine
//!
//! ```text
//!            checkout               checkin
//!  Present ───────────▶ Busy ───────────────▶ Present
//!                        │
//!                        │ body panicked (caught via catch_unwind)
//!                        ▼
//!                     Poisoned(cause)   — surfaces as ObjectBusy;
//!                                         inspect via poison_cause(),
//!                                         reclaim via clear_poisoned()
//! ```
//!
//! A panicking method body must **never leak** the checked-out object:
//! the slot is poisoned (not removed), so later callers get a truthful
//! `ObjectBusy` with a structured, retrievable cause instead of a
//! mysterious `NoSuchObject`.
//!
//! ## Lock order
//!
//! `classes → ids → one shard`, and **nothing** is held while a method
//! body runs. At most one shard lock is ever held at a time; no code path
//! takes two shards. The `ids` generator and virtual clock are atomic and
//! never block.
//!
//! ## Migration interlock
//!
//! [`SharedRuntime::evict`] (the local half of migration) refuses `Busy`
//! and `Poisoned` slots with [`MromError::ObjectBusy`], so a `MoveObject`
//! can never capture an object mid-execution: the image is taken either
//! before checkout or after checkin, never in between.

use std::collections::{BTreeMap, HashMap};
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

use mrom_script::EffectSignature;

use mrom_value::{AtomicIdGenerator, NodeId, ObjectId, Value};

use crate::class::ClassRegistry;
use crate::error::MromError;
use crate::invoke::{InvokeLimits, WorldHook};
use crate::object::MromObject;

/// Number of hash shards in the object table. A small power of two: large
/// enough that 8 workers rarely collide on a shard lock, small enough
/// that whole-table scans (`object_ids`) stay cheap.
pub const SHARD_COUNT: usize = 16;

/// Structured cause attached to a [`Slot::Poisoned`] entry when a method
/// body panics inside a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonCause {
    /// The method whose body panicked.
    pub method: String,
    /// The panic payload, downcast to a string where possible.
    pub message: String,
}

impl std::fmt::Display for PoisonCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "body of {:?} panicked: {}", self.method, self.message)
    }
}

/// One entry of the sharded object table.
///
/// Almost every slot is `Present` — `Busy`/`Poisoned` are transient —
/// so boxing the object to shrink the rare variants would put a pointer
/// chase on every read and checkout for no space win in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Slot {
    /// Hosted and at rest — available for checkout, reads, and eviction.
    Present(MromObject),
    /// Checked out by an in-flight invocation. When observability is
    /// enabled the slot remembers what is running ([`BusyInfo`]) so a
    /// colliding checkout can classify the collision by effect-signature
    /// disjointness; otherwise it carries nothing.
    Busy(Option<BusyInfo>),
    /// A body panicked while the object was checked out; the (possibly
    /// torn) object was discarded, the identity and cause retained.
    Poisoned(PoisonCause),
}

/// What a `Busy` slot knows about its in-flight invocation (recorded
/// only while observability is enabled — the disabled hot path never
/// clones a method name or touches the effect table).
#[derive(Debug)]
struct BusyInfo {
    /// Selector of the invocation that holds the object.
    method: String,
    /// The object's memoized effect-signature table at checkout time.
    effects: Arc<BTreeMap<String, EffectSignature>>,
}

type Shard = HashMap<ObjectId, Slot>;

/// Read access to one hosted object, held open by a shard read guard.
///
/// Dereferences to [`MromObject`]. The guard pins the shard against
/// writers, so keep it short-lived — in particular, do not call back into
/// the runtime while holding one.
pub struct ObjectGuard<'a> {
    shard: RwLockReadGuard<'a, Shard>,
    id: ObjectId,
}

impl Deref for ObjectGuard<'_> {
    type Target = MromObject;

    fn deref(&self) -> &MromObject {
        match self.shard.get(&self.id) {
            Some(Slot::Present(obj)) => obj,
            // The guard is only constructed over a Present slot and holds
            // the shard read-locked for its whole lifetime.
            _ => unreachable!("ObjectGuard over a non-present slot"),
        }
    }
}

impl std::fmt::Debug for ObjectGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Read access to the class registry (see [`SharedRuntime::classes`]).
pub struct ClassesGuard<'a> {
    inner: RwLockReadGuard<'a, ClassRegistry>,
}

impl Deref for ClassesGuard<'_> {
    type Target = ClassRegistry;

    fn deref(&self) -> &ClassRegistry {
        &self.inner
    }
}

impl std::fmt::Debug for ClassesGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// The concurrent per-node object host.
///
/// Every operation takes `&self`, so a `SharedRuntime` can be driven from
/// any number of worker threads (it is `Sync`); see the module docs for
/// the checkout protocol and lock order. The single-threaded
/// [`crate::Runtime`] is a thin `&mut self` wrapper over this type.
///
/// # Example
///
/// ```
/// use mrom_core::{ClassSpec, Method, MethodBody, SharedRuntime};
/// use mrom_value::{NodeId, Value};
///
/// # fn main() -> Result<(), mrom_core::MromError> {
/// let rt = SharedRuntime::new(NodeId(1));
/// rt.with_classes_mut(|reg| {
///     reg.register(ClassSpec::new("echo").fixed_method(
///         "say",
///         Method::public(MethodBody::script("param x; return x;")?),
///     ))
/// })?;
/// let id = rt.create("echo")?;
/// std::thread::scope(|s| {
///     s.spawn(|| rt.invoke_as_system(id, "say", &[Value::from("hi")]));
/// });
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SharedRuntime {
    node: NodeId,
    ids: AtomicIdGenerator,
    shards: Box<[RwLock<Shard>]>,
    classes: RwLock<ClassRegistry>,
    limits: Mutex<InvokeLimits>,
    /// Virtual time surfaced to scripts via `self.time()`.
    now: AtomicU64,
}

impl SharedRuntime {
    /// Creates an empty shared runtime for `node`.
    #[must_use]
    pub fn new(node: NodeId) -> SharedRuntime {
        let shards = (0..SHARD_COUNT)
            .map(|_| RwLock::new(Shard::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SharedRuntime {
            node,
            ids: AtomicIdGenerator::new(node),
            shards,
            classes: RwLock::new(ClassRegistry::new()),
            limits: Mutex::new(InvokeLimits::default()),
            now: AtomicU64::new(0),
        }
    }

    /// The node this runtime represents.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's identity generator (mints through `&self`).
    #[must_use]
    pub fn ids(&self) -> &AtomicIdGenerator {
        &self.ids
    }

    /// Read access to the class registry.
    ///
    /// The returned guard read-locks the registry; drop it before calling
    /// [`SharedRuntime::with_classes_mut`] on the same thread.
    #[must_use]
    pub fn classes(&self) -> ClassesGuard<'_> {
        ClassesGuard {
            inner: read_guard(&self.classes),
        }
    }

    /// Runs `f` with exclusive access to the class registry (registration,
    /// class evolution). Writers block invocations only for the duration
    /// of the closure — keep it short.
    pub fn with_classes_mut<R>(&self, f: impl FnOnce(&mut ClassRegistry) -> R) -> R {
        f(&mut write(&self.classes))
    }

    /// Exclusive class-registry access through `&mut` (lock-free; used by
    /// the single-threaded wrapper).
    pub fn classes_mut(&mut self) -> &mut ClassRegistry {
        self.classes.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Replaces the invocation limits applied to every call on this node.
    pub fn set_limits(&self, limits: InvokeLimits) {
        *self
            .limits
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = limits;
    }

    /// The current invocation limits.
    #[must_use]
    pub fn limits(&self) -> InvokeLimits {
        *self
            .limits
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Current virtual time (milliseconds by convention).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// Advances virtual time (driven by the simulation substrate).
    pub fn set_now(&self, now: u64) {
        self.now.store(now, Ordering::Relaxed);
        // Keep the observability window on the same clock. Monotonic-max
        // semantics mean the simulator's finer microsecond stamp (set at
        // delivery) is never rewound by this millisecond-resolution one.
        mrom_obs::set_virtual_now_us(now.saturating_mul(1000));
    }

    /// Instantiates a registered class, adopting the object into the node.
    ///
    /// # Errors
    ///
    /// [`MromError::Class`] for unknown class names.
    pub fn create(&self, class: &str) -> Result<ObjectId, MromError> {
        // Lock order: classes → ids (atomic, non-blocking) → shard.
        let obj = {
            let classes = read_guard(&self.classes);
            classes
                .get(class)
                .ok_or_else(|| MromError::Class(format!("unknown class {class:?}")))?;
            classes.instantiate_with_id(class, self.ids.next_id())?
        };
        let id = obj.id();
        write(self.shard_of(id)).insert(id, Slot::Present(obj));
        Ok(id)
    }

    /// Adopts an externally constructed object (builder output, or an
    /// unpacked migration image).
    ///
    /// # Errors
    ///
    /// [`MromError::DuplicateItem`] if this identity is already hosted
    /// here — including checked-out and poisoned identities.
    pub fn adopt(&self, obj: MromObject) -> Result<ObjectId, MromError> {
        let id = obj.id();
        let mut shard = write(self.shard_of(id));
        if shard.contains_key(&id) {
            return Err(MromError::DuplicateItem {
                object: id,
                item: "object identity".to_owned(),
            });
        }
        shard.insert(id, Slot::Present(obj));
        Ok(id)
    }

    /// Removes an object from the node (the local half of migration),
    /// returning it.
    ///
    /// This is the **migration interlock**: an object that is checked out
    /// by an in-flight invocation (or poisoned by a panicked one) refuses
    /// eviction with [`MromError::ObjectBusy`], so a migration can never
    /// capture an object mid-execution.
    ///
    /// # Errors
    ///
    /// [`MromError::NoSuchObject`], [`MromError::ObjectBusy`].
    pub fn evict(&self, id: ObjectId) -> Result<MromObject, MromError> {
        let mut shard = write(self.shard_of(id));
        match shard.get(&id) {
            Some(Slot::Present(_)) => match shard.remove(&id) {
                Some(Slot::Present(obj)) => Ok(obj),
                _ => unreachable!("slot changed under the shard write lock"),
            },
            Some(Slot::Busy(_) | Slot::Poisoned(_)) => Err(MromError::ObjectBusy(id)),
            None => Err(MromError::NoSuchObject(id)),
        }
    }

    /// Read access to a hosted object at rest. `None` for unknown,
    /// checked-out, and poisoned identities.
    #[must_use]
    pub fn object(&self, id: ObjectId) -> Option<ObjectGuard<'_>> {
        let shard = read_guard(self.shard_of(id));
        match shard.get(&id) {
            Some(Slot::Present(_)) => Some(ObjectGuard { shard, id }),
            _ => None,
        }
    }

    /// Exclusive access to a hosted object through `&mut` (lock-free;
    /// host-side administration from the single-threaded wrapper).
    pub fn object_mut(&mut self, id: ObjectId) -> Option<&mut MromObject> {
        let idx = shard_index(id);
        let shard = self.shards[idx]
            .get_mut()
            .unwrap_or_else(|e| e.into_inner());
        match shard.get_mut(&id) {
            Some(Slot::Present(obj)) => Some(obj),
            _ => None,
        }
    }

    /// Identities of all hosted objects (unordered), including checked-out
    /// and poisoned identities.
    #[must_use]
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(read_guard(shard).keys().copied());
        }
        out
    }

    /// Number of hosted identities, including checked-out and poisoned
    /// slots (an executing object is still hosted here).
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| read_guard(s).len()).sum()
    }

    /// The structured cause recorded when `id`'s slot was poisoned by a
    /// panicking method body, if it was.
    #[must_use]
    pub fn poison_cause(&self, id: ObjectId) -> Option<PoisonCause> {
        match read_guard(self.shard_of(id)).get(&id) {
            Some(Slot::Poisoned(cause)) => Some(cause.clone()),
            _ => None,
        }
    }

    /// Reclaims a poisoned identity: removes the slot and returns the
    /// cause. The object's state was discarded when the body panicked; the
    /// host may re-adopt a replacement under the same identity afterwards.
    #[must_use]
    pub fn clear_poisoned(&self, id: ObjectId) -> Option<PoisonCause> {
        let mut shard = write(self.shard_of(id));
        match shard.get(&id) {
            Some(Slot::Poisoned(_)) => match shard.remove(&id) {
                Some(Slot::Poisoned(cause)) => Some(cause),
                _ => unreachable!("slot changed under the shard write lock"),
            },
            _ => None,
        }
    }

    /// Invokes a method on a hosted object as `caller`.
    ///
    /// The target is checked out of its shard for the duration of the
    /// call — no lock is held while the body runs — so the body can invoke
    /// *other* objects on this node through the world hook. A concurrent
    /// or cyclic call into the executing object reports
    /// [`MromError::ObjectBusy`]. A panicking body is caught, the slot
    /// poisoned (see [`SharedRuntime::poison_cause`]), and `ObjectBusy`
    /// returned.
    ///
    /// # Errors
    ///
    /// [`MromError::NoSuchObject`], [`MromError::ObjectBusy`], plus all
    /// invocation errors.
    pub fn invoke(
        &self,
        caller: ObjectId,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, MromError> {
        mrom_obs::runtime_invoke(self.node, target, method);
        let mut obj = self.checkout_as(target, Some(method))?;
        let limits = self.limits();
        let mut world = SharedWorld { shared: self };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::invoke::invoke_with_limits(&mut obj, &mut world, caller, method, args, &limits)
        }));
        match outcome {
            Ok(result) => {
                self.checkin(obj);
                result
            }
            Err(payload) => {
                // The object may be torn mid-mutation: discard it and
                // poison the slot so the identity does not vanish.
                drop(obj);
                self.poison(
                    target,
                    PoisonCause {
                        method: method.to_owned(),
                        message: panic_message(payload.as_ref()),
                    },
                );
                Err(MromError::ObjectBusy(target))
            }
        }
    }

    /// [`SharedRuntime::invoke`] with the system principal.
    ///
    /// # Errors
    ///
    /// As [`SharedRuntime::invoke`].
    pub fn invoke_as_system(
        &self,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, MromError> {
        self.invoke(ObjectId::SYSTEM, target, method, args)
    }

    /// Checks `target` out: flips its slot from `Present` to `Busy` under
    /// the shard write lock and returns the object. When
    /// observability is enabled and `incoming` names the method about to
    /// run, the `Busy` slot remembers it together with the object's
    /// memoized effect-signature table, and a *colliding* checkout
    /// classifies the collision — provably-disjoint signatures mean the
    /// serialization was a conservative loss, overlapping ones mean it
    /// was required — feeding the shared-runtime disjointness counters.
    fn checkout_as(
        &self,
        target: ObjectId,
        incoming: Option<&str>,
    ) -> Result<MromObject, MromError> {
        let obs = mrom_obs::enabled();
        let mut shard = write(self.shard_of(target));
        match shard.get_mut(&target) {
            Some(slot @ Slot::Present(_)) => match std::mem::replace(slot, Slot::Busy(None)) {
                Slot::Present(mut obj) => {
                    if obs {
                        if let Some(method) = incoming {
                            *slot = Slot::Busy(Some(BusyInfo {
                                method: method.to_owned(),
                                effects: obj.effects(),
                            }));
                        }
                    }
                    Ok(obj)
                }
                _ => unreachable!("matched Present above"),
            },
            Some(Slot::Busy(info)) => {
                if obs {
                    let (in_flight, disjoint) = match (info.as_ref(), incoming) {
                        (Some(i), Some(m)) => {
                            let verdict = match (i.effects.get(i.method.as_str()), i.effects.get(m))
                            {
                                (Some(a), Some(b)) => {
                                    Some(crate::effects::signatures_disjoint(a, b))
                                }
                                _ => None,
                            };
                            (i.method.as_str(), verdict)
                        }
                        (Some(i), None) => (i.method.as_str(), None),
                        (None, _) => ("", None),
                    };
                    mrom_obs::shared_collision(
                        self.node,
                        target,
                        in_flight,
                        incoming.unwrap_or(""),
                        disjoint,
                    );
                }
                Err(MromError::ObjectBusy(target))
            }
            Some(Slot::Poisoned(_)) => Err(MromError::ObjectBusy(target)),
            None => Err(MromError::NoSuchObject(target)),
        }
    }

    /// Checks an object back in after its invocation completed.
    fn checkin(&self, obj: MromObject) {
        let id = obj.id();
        write(self.shard_of(id)).insert(id, Slot::Present(obj));
    }

    /// Marks a checked-out identity as poisoned.
    fn poison(&self, id: ObjectId, cause: PoisonCause) {
        write(self.shard_of(id)).insert(id, Slot::Poisoned(cause));
    }

    fn shard_of(&self, id: ObjectId) -> &RwLock<Shard> {
        &self.shards[shard_index(id)]
    }
}

/// Maps an identity onto a shard: multiply-mix the 128-bit triple down to
/// the top bits of a u64 (Fibonacci hashing), then mask.
fn shard_index(id: ObjectId) -> usize {
    let folded = id.node().0 ^ (u64::from(id.seq()) << 32) ^ u64::from(id.entropy());
    let mixed = folded.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mixed >> 59) as usize & (SHARD_COUNT - 1)
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Takes a read lock, shrugging off poisoning: no lock in this module is
/// ever held while user code runs (panics inside bodies are caught before
/// any lock is re-taken), so a poisoned lock only means a panic in
/// infallible map plumbing — the data is still coherent.
fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Takes a write lock; see [`read_guard`] on poisoning.
fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// World hook giving method bodies mediated access to node services, over
/// the shared runtime. Nested `send`s re-enter [`SharedRuntime::invoke`],
/// which checks the callee out under its own shard lock — the hook itself
/// holds nothing.
///
/// Supported operations (unchanged from the single-threaded runtime):
///
/// * `send(target_ref, method, args_list)` — invoke a method on another
///   object hosted on this node (caller principal = the sending object).
/// * `spawn(class_name)` — instantiate a registered class, adopting the
///   new object into this node; returns its reference.
/// * `log(message)` — append to the node log.
/// * `time()` — current virtual time.
/// * `node()` — the node id as an integer.
struct SharedWorld<'r> {
    shared: &'r SharedRuntime,
}

impl WorldHook for SharedWorld<'_> {
    fn world_call(
        &mut self,
        caller: ObjectId,
        op: &str,
        args: &[Value],
    ) -> Result<Value, MromError> {
        match op {
            "send" => match args {
                [Value::ObjectRef(target), Value::Str(method), Value::List(inner)] => {
                    // An object currently executing sits in a Busy slot, so
                    // a cyclic call — and any concurrent call — reports
                    // ObjectBusy; genuinely unknown targets NoSuchObject.
                    self.shared.invoke(caller, *target, method, inner)
                }
                _ => Err(MromError::World(
                    "send expects (object_ref, method_name, args_list)".into(),
                )),
            },
            "spawn" => match args {
                [Value::Str(class)] => self.shared.create(class).map(Value::ObjectRef),
                _ => Err(MromError::World("spawn expects (class_name)".into())),
            },
            "log" => {
                let msg = args
                    .first()
                    .map(|v| match v {
                        Value::Str(s) => s.clone(),
                        other => other.to_string(),
                    })
                    .unwrap_or_default();
                mrom_obs::log_line(self.shared.node, caller, &msg);
                Ok(Value::Null)
            }
            "time" => Ok(Value::Int(self.shared.now() as i64)),
            "node" => Ok(Value::Int(self.shared.node.0 as i64)),
            other => Err(MromError::World(format!(
                "unknown world operation {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassSpec;
    use crate::item::DataItem;
    use crate::method::{Method, MethodBody};

    fn counter_class() -> ClassSpec {
        ClassSpec::new("counter")
            .fixed_data("acc", DataItem::public(Value::Int(0)))
            .fixed_method(
                "add",
                Method::public(
                    MethodBody::script(
                        "param x; self.set(\"acc\", self.get(\"acc\") + x); return self.get(\"acc\");",
                    )
                    .unwrap(),
                ),
            )
    }

    fn shared_with_counter() -> SharedRuntime {
        let rt = SharedRuntime::new(NodeId(40));
        rt.with_classes_mut(|reg| reg.register(counter_class()))
            .unwrap();
        rt
    }

    #[test]
    fn create_invoke_and_read_through_guard() {
        let rt = shared_with_counter();
        let id = rt.create("counter").unwrap();
        assert_eq!(
            rt.invoke_as_system(id, "add", &[Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        let guard = rt.object(id).expect("present");
        assert_eq!(
            guard.read_data(ObjectId::SYSTEM, "acc").unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn parallel_invocations_on_disjoint_objects() {
        let rt = shared_with_counter();
        let ids: Vec<_> = (0..8).map(|_| rt.create("counter").unwrap()).collect();
        std::thread::scope(|s| {
            for &id in &ids {
                let rt = &rt;
                s.spawn(move || {
                    for _ in 0..100 {
                        rt.invoke_as_system(id, "add", &[Value::Int(1)]).unwrap();
                    }
                });
            }
        });
        for id in ids {
            let obj = rt.object(id).unwrap();
            assert_eq!(
                obj.read_data(ObjectId::SYSTEM, "acc").unwrap(),
                Value::Int(100)
            );
        }
    }

    #[test]
    fn same_object_contention_is_ok_or_busy() {
        let rt = shared_with_counter();
        let id = rt.create("counter").unwrap();
        let oks = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (rt, oks) = (&rt, &oks);
                s.spawn(move || {
                    for _ in 0..200 {
                        match rt.invoke_as_system(id, "add", &[Value::Int(1)]) {
                            Ok(_) => {
                                oks.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(MromError::ObjectBusy(busy)) => assert_eq!(busy, id),
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                });
            }
        });
        let obj = rt.object(id).unwrap();
        assert_eq!(
            obj.read_data(ObjectId::SYSTEM, "acc").unwrap(),
            Value::Int(oks.load(Ordering::Relaxed) as i64)
        );
    }

    #[test]
    fn evict_refuses_checked_out_object() {
        let rt = SharedRuntime::new(NodeId(41));
        rt.with_classes_mut(|reg| reg.register(counter_class()))
            .unwrap();
        // A native method that tries to evict... is not expressible from
        // scripts; simulate by poking the slot machinery directly.
        let id = rt.create("counter").unwrap();
        let obj = rt.checkout_as(id, None).unwrap();
        assert!(matches!(rt.evict(id), Err(MromError::ObjectBusy(_))));
        assert!(rt.object(id).is_none(), "busy slot is not readable");
        assert_eq!(rt.object_count(), 1, "busy slot still counts as hosted");
        rt.checkin(obj);
        assert!(rt.evict(id).is_ok());
    }

    #[test]
    fn panicking_body_poisons_slot_not_vanishes() {
        let rt = SharedRuntime::new(NodeId(42));
        rt.with_classes_mut(|reg| {
            reg.register(ClassSpec::new("bomb").fixed_method(
                "boom",
                Method::public(MethodBody::native(|_env, _args| {
                    panic!("kaboom: deliberate test panic")
                })),
            ))
        })
        .unwrap();
        let id = rt.create("bomb").unwrap();
        let err = rt.invoke_as_system(id, "boom", &[]).unwrap_err();
        assert!(matches!(err, MromError::ObjectBusy(b) if b == id));
        // The identity did not vanish: later calls get ObjectBusy (not
        // NoSuchObject) and the cause is retrievable.
        let err = rt.invoke_as_system(id, "boom", &[]).unwrap_err();
        assert!(matches!(err, MromError::ObjectBusy(_)));
        let cause = rt.poison_cause(id).expect("structured cause");
        assert_eq!(cause.method, "boom");
        assert!(cause.message.contains("kaboom"), "{cause}");
        // Migration cannot capture it either.
        assert!(matches!(rt.evict(id), Err(MromError::ObjectBusy(_))));
        // Reclaim: the slot is removed and the cause handed back.
        let cause = rt.clear_poisoned(id).expect("reclaimed");
        assert!(cause.message.contains("kaboom"));
        assert!(matches!(
            rt.invoke_as_system(id, "boom", &[]),
            Err(MromError::NoSuchObject(_))
        ));
    }

    #[test]
    fn nested_send_and_spawn_work_through_shared_world() {
        let rt = shared_with_counter();
        rt.with_classes_mut(|reg| {
            reg.register(
                ClassSpec::new("factory").fixed_method(
                    "make",
                    Method::public(
                        MethodBody::script(
                            r#"
                            let child = self.spawn("counter");
                            self.send(child, "add", [41]);
                            self.send(child, "add", [1]);
                            return child;
                            "#,
                        )
                        .unwrap(),
                    ),
                ),
            )
        })
        .unwrap();
        let factory = rt.create("factory").unwrap();
        let child_ref = rt.invoke_as_system(factory, "make", &[]).unwrap();
        let child = child_ref.as_object_ref().expect("object ref");
        assert_eq!(
            rt.object(child)
                .unwrap()
                .read_data(ObjectId::SYSTEM, "acc")
                .unwrap(),
            Value::Int(42)
        );
        assert_eq!(rt.object_count(), 2);
    }

    #[test]
    fn shard_index_spreads_and_is_stable() {
        let gen = AtomicIdGenerator::new(NodeId(7));
        let mut used = std::collections::HashSet::new();
        for _ in 0..1000 {
            let idx = shard_index(gen.next_id());
            assert!(idx < SHARD_COUNT);
            used.insert(idx);
        }
        assert!(used.len() > SHARD_COUNT / 2, "hash spreads over shards");
        let id = ObjectId::from_parts(NodeId(3), 9, 11);
        assert_eq!(shard_index(id), shard_index(id));
    }
}
