//! Data items: named, ACL-guarded, optionally type-constrained value slots.

use mrom_value::{Value, ValueError};

use crate::security::{Acl, TypeConstraint};

/// A single data element of an MROM object.
///
/// The meta-methods `getDataItem`/`setDataItem` examine and manipulate the
/// *item* (its properties — ACLs, type constraint), while ordinary `get`
/// and `set` access its *value*. The distinction follows the paper: "These
/// operations are used to examine and manipulate the data elements of an
/// object, but not their values (which are accessed using ordinary get and
/// set)."
#[derive(Debug, Clone, PartialEq)]
pub struct DataItem {
    value: Value,
    read_acl: Acl,
    write_acl: Acl,
    constraint: TypeConstraint,
}

impl DataItem {
    /// Creates an item with default (origin-private) ACLs and no type
    /// constraint.
    pub fn new(value: Value) -> DataItem {
        DataItem {
            value,
            read_acl: Acl::default(),
            write_acl: Acl::default(),
            constraint: TypeConstraint::default(),
        }
    }

    /// Creates a publicly readable item (write stays origin-private) —
    /// the common shape for exported state.
    pub fn public(value: Value) -> DataItem {
        DataItem::new(value).with_read_acl(Acl::Public)
    }

    /// Sets the read ACL (builder style).
    pub fn with_read_acl(mut self, acl: Acl) -> DataItem {
        self.read_acl = acl;
        self
    }

    /// Sets the write ACL (builder style).
    pub fn with_write_acl(mut self, acl: Acl) -> DataItem {
        self.write_acl = acl;
        self
    }

    /// Sets the dynamic type constraint (builder style).
    ///
    /// # Errors
    ///
    /// [`ValueError`] if the current value itself violates the constraint.
    pub fn with_constraint(mut self, constraint: TypeConstraint) -> Result<DataItem, ValueError> {
        let v = std::mem::take(&mut self.value);
        self.value = constraint.apply(v)?;
        self.constraint = constraint;
        Ok(self)
    }

    /// The current value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The read ACL.
    pub fn read_acl(&self) -> &Acl {
        &self.read_acl
    }

    /// The write ACL.
    pub fn write_acl(&self) -> &Acl {
        &self.write_acl
    }

    /// The dynamic type constraint.
    pub fn constraint(&self) -> TypeConstraint {
        self.constraint
    }

    /// Replaces the value, enforcing the type constraint.
    ///
    /// # Errors
    ///
    /// [`ValueError`] when the constraint rejects the value. ACL checks
    /// happen in the object layer before this is reached.
    pub fn write(&mut self, v: Value) -> Result<(), ValueError> {
        self.value = self.constraint.apply(v)?;
        Ok(())
    }

    /// Directly replaces the ACLs/constraint from a descriptor produced by
    /// [`DataItem::descriptor`] (the `setDataItem` meta-operation). Only
    /// the keys present are updated.
    ///
    /// # Errors
    ///
    /// [`ValueError`] on malformed descriptor fields or when a new
    /// constraint rejects the current value.
    pub fn apply_descriptor(&mut self, desc: &Value) -> Result<(), ValueError> {
        let m = desc.as_map().ok_or_else(|| {
            ValueError::Malformed(format!("descriptor must be a map, got {}", desc.kind()))
        })?;
        for key in m.keys() {
            // `section` is informational (produced by getDataItem);
            // accepted and ignored on write.
            if !matches!(
                key.as_str(),
                "read_acl" | "write_acl" | "constraint" | "value" | "section"
            ) {
                return Err(ValueError::Malformed(format!(
                    "unknown descriptor key {key:?}"
                )));
            }
        }
        if let Some(v) = m.get("read_acl") {
            self.read_acl = Acl::from_value(v)?;
        }
        if let Some(v) = m.get("write_acl") {
            self.write_acl = Acl::from_value(v)?;
        }
        if let Some(v) = m.get("constraint") {
            let constraint = TypeConstraint::from_value(v)?;
            let current = std::mem::take(&mut self.value);
            self.value = constraint.apply(current)?;
            self.constraint = constraint;
        }
        if let Some(v) = m.get("value") {
            self.value = self.constraint.apply(v.clone())?;
        }
        Ok(())
    }

    /// Produces the self-representation descriptor returned by the
    /// `getDataItem` meta-method.
    pub fn descriptor(&self) -> Value {
        Value::map([
            ("value", self.value.clone()),
            ("read_acl", self.read_acl.to_value()),
            ("write_acl", self.write_acl.to_value()),
            ("constraint", self.constraint.to_value()),
        ])
    }

    /// Rebuilds an item from a full descriptor (used by `addDataItem` with
    /// properties, and by migration images).
    ///
    /// # Errors
    ///
    /// [`ValueError`] on malformed fields.
    pub fn from_descriptor(desc: &Value) -> Result<DataItem, ValueError> {
        let mut item = DataItem::new(Value::Null);
        item.apply_descriptor(desc)?;
        Ok(item)
    }
}

impl Default for DataItem {
    fn default() -> Self {
        DataItem::new(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_value::ValueKind;

    #[test]
    fn write_respects_constraint() {
        let mut item = DataItem::new(Value::Int(1))
            .with_constraint(TypeConstraint::Coerce(ValueKind::Int))
            .unwrap();
        item.write(Value::from("<td>42</td>")).unwrap();
        assert_eq!(item.value(), &Value::Int(42));
        assert!(item.write(Value::from("nope")).is_err());
    }

    #[test]
    fn with_constraint_validates_current_value() {
        let item = DataItem::new(Value::from("abc"));
        assert!(item
            .with_constraint(TypeConstraint::Exact(ValueKind::Int))
            .is_err());
    }

    #[test]
    fn descriptor_round_trip() {
        let item = DataItem::public(Value::from("v"))
            .with_write_acl(Acl::Nobody)
            .with_constraint(TypeConstraint::Coerce(ValueKind::Str))
            .unwrap();
        let desc = item.descriptor();
        let back = DataItem::from_descriptor(&desc).unwrap();
        assert_eq!(back, item);
    }

    #[test]
    fn apply_descriptor_is_partial() {
        let mut item = DataItem::new(Value::Int(5));
        item.apply_descriptor(&Value::map([("read_acl", Value::from("public"))]))
            .unwrap();
        assert_eq!(item.read_acl(), &Acl::Public);
        assert_eq!(item.value(), &Value::Int(5));
        assert_eq!(item.write_acl(), &Acl::Origin);
    }

    #[test]
    fn apply_descriptor_rejects_unknown_keys_and_bad_values() {
        let mut item = DataItem::new(Value::Int(5));
        assert!(item
            .apply_descriptor(&Value::map([("surprise", Value::Int(1))]))
            .is_err());
        assert!(item.apply_descriptor(&Value::Int(1)).is_err());
        assert!(item
            .apply_descriptor(&Value::map([("read_acl", Value::from("weird"))]))
            .is_err());
    }

    #[test]
    fn descriptor_constraint_checks_existing_value() {
        let mut item = DataItem::new(Value::from("abc"));
        // Constraining to int must fail because "abc" cannot coerce.
        assert!(item
            .apply_descriptor(&Value::map([("constraint", Value::from("coerce:int"))]))
            .is_err());
        // But "42" can.
        let mut item = DataItem::new(Value::from("42"));
        item.apply_descriptor(&Value::map([("constraint", Value::from("coerce:int"))]))
            .unwrap();
        assert_eq!(item.value(), &Value::Int(42));
    }

    #[test]
    fn value_in_descriptor_respects_new_constraint() {
        let mut item = DataItem::new(Value::Null);
        item.apply_descriptor(&Value::map([
            ("constraint", Value::from("exact:int")),
            ("value", Value::Int(3)),
        ]))
        .unwrap_err();
        // Null violates exact:int — order of application means the
        // constraint is installed first and then rejects... actually the
        // constraint application to the current Null fails first.
        let mut item = DataItem::new(Value::Int(0));
        item.apply_descriptor(&Value::map([
            ("constraint", Value::from("exact:int")),
            ("value", Value::Int(3)),
        ]))
        .unwrap();
        assert_eq!(item.value(), &Value::Int(3));
        assert!(item
            .apply_descriptor(&Value::map([("value", Value::from("x"))]))
            .is_err());
    }
}
