//! Shared fixtures and measurement helpers for the experiment suite
//! (E1-E10 in `DESIGN.md` §5).
//!
//! Both the criterion benches (`benches/`) and the `tables` binary build
//! their workloads from this crate so the numbers they report describe the
//! same objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mrom_core::{
    Acl, ClassSpec, DataItem, InvokeLimits, Method, MethodBody, MromObject, ObjectBuilder,
};
use mrom_value::{IdGenerator, NodeId, ObjectId, Value};

/// A fresh deterministic id generator for bench fixtures.
pub fn bench_ids() -> IdGenerator {
    IdGenerator::new(NodeId(0xbe7c))
}

/// The canonical counter object used across experiments, with **script**
/// bodies (`bump`, `add`) — mirrors [`mrom_baselines::StaticCounter`].
pub fn script_counter(ids: &mut IdGenerator) -> MromObject {
    ObjectBuilder::new(ids.next_id())
        .class("counter")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "bump",
            Method::public(
                MethodBody::script(
                    "self.set(\"count\", self.get(\"count\") + 1); return self.get(\"count\");",
                )
                .expect("bump parses"),
            ),
        )
        .fixed_method(
            "add",
            Method::public(
                MethodBody::script("param a; param b; return a + b;").expect("add parses"),
            ),
        )
        .build()
}

/// The counter with **native** bodies — isolates the invocation machinery
/// (lookup, match, apply) from script evaluation.
pub fn native_counter(ids: &mut IdGenerator) -> MromObject {
    ObjectBuilder::new(ids.next_id())
        .class("counter")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "bump",
            Method::public(MethodBody::native(|env, _| {
                let me = env.object_ref().id();
                let c = env.object().read_data(me, "count")?.as_int().unwrap_or(0);
                env.object().write_data(me, "count", Value::Int(c + 1))?;
                Ok(Value::Int(c + 1))
            })),
        )
        .fixed_method(
            "add",
            Method::public(MethodBody::native(|_, args| {
                match (
                    args.first().and_then(Value::as_int),
                    args.get(1).and_then(Value::as_int),
                ) {
                    (Some(a), Some(b)) => Ok(Value::Int(a.wrapping_add(b))),
                    _ => Ok(Value::Null),
                }
            })),
        )
        .build()
}

/// An object whose `m_add` method sits among `n - 1` sibling methods in
/// the chosen section, for lookup-cost sweeps (E2).
pub fn counter_among(ids: &mut IdGenerator, n: usize, extensible: bool) -> MromObject {
    let filler =
        |i: usize| Method::public(MethodBody::native(move |_, _| Ok(Value::Int(i as i64))));
    let target = Method::public(MethodBody::native(|_, args| {
        match (
            args.first().and_then(Value::as_int),
            args.get(1).and_then(Value::as_int),
        ) {
            (Some(a), Some(b)) => Ok(Value::Int(a.wrapping_add(b))),
            _ => Ok(Value::Null),
        }
    }));
    let mut b = ObjectBuilder::new(ids.next_id()).class("crowded");
    if extensible {
        for i in 0..n.saturating_sub(1) {
            b = b.ext_method(&format!("filler_{i:05}"), filler(i));
        }
        b = b.ext_method("m_add", target);
    } else {
        for i in 0..n.saturating_sub(1) {
            b = b.fixed_method(&format!("filler_{i:05}"), filler(i));
        }
        b = b.fixed_method("m_add", target);
    }
    b.build()
}

/// An object whose `gated` method carries an [`Acl::Only`] list of
/// `list_size` principals (E4). Returns `(object, admitted, rejected)`.
pub fn acl_gated(ids: &mut IdGenerator, list_size: usize) -> (MromObject, ObjectId, ObjectId) {
    let mut members: Vec<ObjectId> = (0..list_size.max(1)).map(|_| ids.next_id()).collect();
    let admitted = members[list_size / 2];
    let rejected = ids.next_id();
    let method = Method::new(MethodBody::native(|_, _| Ok(Value::Int(1))))
        .with_invoke_acl(Acl::only(members.drain(..)));
    let obj = ObjectBuilder::new(ids.next_id())
        .class("gated")
        .fixed_method("gated", method)
        .build();
    (obj, admitted, rejected)
}

/// A mobile object carrying `items` extensible data items of ~`item_bytes`
/// each — the payload knob for migration/persistence size sweeps (E6/E10).
pub fn cargo_object(ids: &mut IdGenerator, items: usize, item_bytes: usize) -> MromObject {
    cargo_object_as(ids.next_id(), items, item_bytes)
}

/// [`cargo_object`] with a pre-minted identity (for ids drawn from a
/// runtime's shared generator).
pub fn cargo_object_as(id: mrom_value::ObjectId, items: usize, item_bytes: usize) -> MromObject {
    let mut obj = ObjectBuilder::new(id)
        .class("cargo")
        .fixed_method(
            "ping",
            Method::public(MethodBody::script("return \"pong\";").expect("ping parses")),
        )
        .build();
    let me = obj.id();
    let blob = "x".repeat(item_bytes);
    for i in 0..items {
        obj.add_data(me, &format!("cargo_{i:05}"), Value::Str(blob.clone()))
            .expect("fresh names never collide");
    }
    obj
}

/// Names of the data items produced by [`cargo_object`], for building
/// ambassador specs that carry the cargo.
pub fn cargo_names(items: usize) -> Vec<String> {
    (0..items).map(|i| format!("cargo_{i:05}")).collect()
}

/// The employee-db class used by the HADAS experiments, re-exported for
/// the benches.
pub fn employee_db() -> ClassSpec {
    hadas::scenarios::employee_db_class()
}

/// Default invocation limits used by the experiment suite.
pub fn limits() -> InvokeLimits {
    InvokeLimits::default()
}

/// Measures `f` over `iters` iterations, returning mean nanoseconds per
/// iteration (used by the `tables` binary; criterion provides the rigorous
/// numbers).
pub fn time_ns<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Formats a nanosecond figure compactly (`830ns`, `1.24us`, `3.10ms`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else {
        format!("{:.2}ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_core::{invoke, NoWorld};

    #[test]
    fn fixtures_behave_identically() {
        let mut ids = bench_ids();
        let mut world = NoWorld;
        let caller = ids.next_id();
        let mut script = script_counter(&mut ids);
        let mut native = native_counter(&mut ids);
        let args = [Value::Int(20), Value::Int(22)];
        assert_eq!(
            invoke(&mut script, &mut world, caller, "add", &args).unwrap(),
            invoke(&mut native, &mut world, caller, "add", &args).unwrap(),
        );
        assert_eq!(
            invoke(&mut script, &mut world, caller, "bump", &[]).unwrap(),
            invoke(&mut native, &mut world, caller, "bump", &[]).unwrap(),
        );
    }

    #[test]
    fn crowded_objects_have_the_right_shape() {
        let mut ids = bench_ids();
        for n in [1, 16, 256] {
            for ext in [false, true] {
                let mut obj = counter_among(&mut ids, n, ext);
                let mut world = NoWorld;
                let caller = ids.next_id();
                assert_eq!(
                    invoke(
                        &mut obj,
                        &mut world,
                        caller,
                        "m_add",
                        &[Value::Int(1), Value::Int(2)]
                    )
                    .unwrap(),
                    Value::Int(3)
                );
            }
        }
    }

    #[test]
    fn acl_fixture_admits_and_rejects() {
        let mut ids = bench_ids();
        let (mut obj, admitted, rejected) = acl_gated(&mut ids, 64);
        let mut world = NoWorld;
        assert!(invoke(&mut obj, &mut world, admitted, "gated", &[]).is_ok());
        assert!(invoke(&mut obj, &mut world, rejected, "gated", &[]).is_err());
    }

    #[test]
    fn cargo_scales_image_size() {
        let mut ids = bench_ids();
        let small = cargo_object(&mut ids, 1, 16);
        let big = cargo_object(&mut ids, 64, 256);
        let s = small.migration_image(small.id()).unwrap().len();
        let b = big.migration_image(big.id()).unwrap().len();
        assert!(b > s * 10, "{b} vs {s}");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(830.0), "830ns");
        assert_eq!(fmt_ns(1_240.0), "1.24us");
        assert_eq!(fmt_ns(3_100_000.0), "3.10ms");
    }
}
