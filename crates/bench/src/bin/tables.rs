//! Prints the full experiment report (E1-E10, E15-E17): one table per
//! experiment,
//! mixing measured wall-clock costs (quick non-criterion timing) with the
//! simulator's deterministic virtual-time results. `EXPERIMENTS.md`
//! records a run of this binary next to the paper's qualitative claims.
//!
//! Run with: `cargo run -p mrom-bench --bin tables --release`

use hadas::scenarios::{deploy_employee_db, push_maintenance_notice, star_federation};
use hadas::{AmbassadorSpec, Federation, UpdateOp};
use mrom_baselines::{capability_matrix, StaticCounter};
use mrom_bench::*;
use mrom_core::{
    invoke, set_script_engine, DataItem, Method, MethodBody, NoWorld, ObjectBuilder, ScriptEngine,
};
use mrom_net::{LinkConfig, NetworkConfig, SimTime};
use mrom_persist::{Depot, FileStore, MemStore};
use mrom_script::{Evaluator, NullHost, Program, Vm};
use mrom_value::{NodeId, Value};

const QUICK: u64 = 20_000;
const SLOW: u64 = 200;

fn header(id: &str, title: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("paper: {claim}");
    println!("----------------------------------------------------------------");
}

fn row(label: &str, value: String) {
    println!("  {label:<44} {value:>14}");
}

fn e1_tower() {
    header(
        "E1",
        "two-level invocation (Figure 1)",
        "meta_invoke receives the target method as data; levels stack; level 0 is the floor",
    );
    let args = [Value::Int(20), Value::Int(22)];
    for levels in [0usize, 1, 2, 4] {
        let mut ids = bench_ids();
        let mut obj = script_counter(&mut ids);
        let me = obj.id();
        for i in 0..levels {
            let name = format!("meta_invoke_{i}");
            obj.add_method(
                me,
                &name,
                Method::public(
                    MethodBody::script("param m; param a; return self.invoke(m, a);").unwrap(),
                ),
            )
            .unwrap();
            obj.install_meta_invoke(me, &name).unwrap();
        }
        let caller = ids.next_id();
        let mut world = NoWorld;
        let ns = time_ns(QUICK, || {
            invoke(&mut obj, &mut world, caller, "add", &args).unwrap();
        });
        row(
            &format!("invoke add() through {levels} meta level(s)"),
            fmt_ns(ns),
        );
    }
    let mut ids = bench_ids();
    let mut obj = script_counter(&mut ids);
    let caller = ids.next_id();
    let mut world = NoWorld;
    let meta_args = [Value::from("add"), Value::list(args.to_vec())];
    let ns = time_ns(QUICK, || {
        invoke(&mut obj, &mut world, caller, "invoke", &meta_args).unwrap();
    });
    row("invoke via the `invoke` meta-method", fmt_ns(ns));
}

fn e2_lookup() {
    header(
        "E2",
        "the price of structural mutability",
        "mutable structures pay a lookup that static layouts resolve at compile time",
    );
    let statik = StaticCounter::new();
    let ns = time_ns(QUICK * 10, || {
        std::hint::black_box(statik.add(20, 22));
    });
    row("static Rust call (fixed offset)", fmt_ns(ns));
    let args = [Value::Int(20), Value::Int(22)];
    for n in [4usize, 64, 512, 4096] {
        for (label, ext) in [("fixed", false), ("ext", true)] {
            let mut ids = bench_ids();
            let mut obj = counter_among(&mut ids, n, ext);
            let caller = ids.next_id();
            let mut world = NoWorld;
            let ns = time_ns(QUICK, || {
                invoke(&mut obj, &mut world, caller, "m_add", &args).unwrap();
            });
            row(
                &format!("MROM native body, {label} section, {n} items"),
                fmt_ns(ns),
            );
        }
    }
    let mut ids = bench_ids();
    let mut obj = script_counter(&mut ids);
    let caller = ids.next_id();
    let mut world = NoWorld;
    let ns = time_ns(QUICK, || {
        invoke(&mut obj, &mut world, caller, "add", &args).unwrap();
    });
    row("MROM script body (mobile code)", fmt_ns(ns));
}

fn e3_wrapping() {
    header(
        "E3",
        "pre-/post-procedure wrapping (§3.1)",
        "wrapping attaches dynamically; false pre skips the body, false post raises",
    );
    let body = || {
        MethodBody::native(|_, args| {
            Ok(Value::Int(
                args.first().and_then(Value::as_int).unwrap_or(0) * 2,
            ))
        })
    };
    let yes = || MethodBody::native(|_, _| Ok(Value::Bool(true)));
    let cases: Vec<(&str, Method)> = vec![
        ("bare body", Method::public(body())),
        ("with native pre", Method::public(body()).with_pre(yes())),
        (
            "with native pre + post",
            Method::public(body()).with_pre(yes()).with_post(yes()),
        ),
        (
            "with script pre + post",
            Method::public(body())
                .with_pre(MethodBody::script("param x; return x > 0;").unwrap())
                .with_post(MethodBody::script("param r; param x; return r == x * 2;").unwrap()),
        ),
    ];
    let args = [Value::Int(21)];
    for (label, method) in cases {
        let mut ids = bench_ids();
        let mut obj = mrom_core::ObjectBuilder::new(ids.next_id())
            .fixed_method("m", method)
            .build();
        let caller = ids.next_id();
        let mut world = NoWorld;
        let ns = time_ns(QUICK, || {
            invoke(&mut obj, &mut world, caller, "m", &args).unwrap();
        });
        row(label, fmt_ns(ns));
    }
}

fn e4_acl() {
    header(
        "E4",
        "the Match phase: per-item ACL checks",
        "security == encapsulation, checked once per invocation at object granularity",
    );
    for size in [1usize, 16, 128, 1024] {
        let mut ids = bench_ids();
        let (mut obj, admitted, rejected) = acl_gated(&mut ids, size);
        let mut world = NoWorld;
        let ns = time_ns(QUICK, || {
            invoke(&mut obj, &mut world, admitted, "gated", &[]).unwrap();
        });
        row(&format!("granted, list of {size}"), fmt_ns(ns));
        let ns = time_ns(QUICK, || {
            invoke(&mut obj, &mut world, rejected, "gated", &[]).unwrap_err();
        });
        row(&format!("denied,  list of {size}"), fmt_ns(ns));
    }
}

fn e5_mutation() {
    header(
        "E5",
        "mutation throughput",
        "add/remove/replace of extensible items at runtime; fixed section immutable",
    );
    for population in [0usize, 64, 1024] {
        let mut ids = bench_ids();
        let mut obj = cargo_object(&mut ids, population, 8);
        let me = obj.id();
        let ns = time_ns(QUICK, || {
            obj.add_data(me, "probe", Value::Int(1)).unwrap();
            obj.delete_data(me, "probe").unwrap();
        });
        row(
            &format!("addDataItem+delete, {population} siblings"),
            fmt_ns(ns),
        );
    }
    let mut ids = bench_ids();
    let mut obj = script_counter(&mut ids);
    let me = obj.id();
    obj.add_method(
        me,
        "volatile",
        Method::public(MethodBody::script("return 1;").unwrap()),
    )
    .unwrap();
    let desc = Value::map([("body", Value::from("return 2;"))]);
    let ns = time_ns(QUICK / 4, || {
        obj.set_method(me, "volatile", &desc).unwrap();
    });
    row("setMethod (body replacement, incl. parse)", fmt_ns(ns));
    let ns = time_ns(QUICK, || {
        obj.write_data(me, "count", Value::Int(5)).unwrap();
    });
    row("ordinary set on a fixed data item", fmt_ns(ns));
    let ns = time_ns(QUICK, || {
        obj.delete_data(me, "count").unwrap_err();
    });
    row("fixed-section violation (error path)", fmt_ns(ns));
}

fn e6_federation() {
    header(
        "E6",
        "Figure 2 on the wire: Link and Import/Export",
        "Link installs an IOO Ambassador; Export verifies, instantiates, ships as data",
    );
    println!(
        "  {:<24} {:>12} {:>14} {:>12}",
        "operation", "image bytes", "virtual time", "wall"
    );
    // Link.
    let wall = time_ns(SLOW, || {
        let cfg = NetworkConfig::new(1).with_default_link(LinkConfig::lan());
        let mut fed = Federation::new(cfg);
        fed.add_site(NodeId(1)).unwrap();
        fed.add_site(NodeId(2)).unwrap();
        fed.link(NodeId(1), NodeId(2)).unwrap();
    });
    let cfg = NetworkConfig::new(1).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    fed.add_site(NodeId(1)).unwrap();
    fed.add_site(NodeId(2)).unwrap();
    fed.link(NodeId(1), NodeId(2)).unwrap();
    println!(
        "  {:<24} {:>12} {:>14} {:>12}",
        "link handshake",
        fed.net_stats().bytes_sent,
        fed.now().to_string(),
        fmt_ns(wall)
    );
    // Import at three cargo sizes over LAN and WAN.
    for profile in ["lan", "wan"] {
        for items in [0usize, 32, 256] {
            let link = if profile == "lan" {
                LinkConfig::lan()
            } else {
                LinkConfig::wan()
            };
            let cfg = NetworkConfig::new(2).with_default_link(link);
            let mut fed = Federation::new(cfg);
            fed.add_site(NodeId(1)).unwrap();
            fed.add_site(NodeId(2)).unwrap();
            let apo = cargo_object_as(
                fed.runtime_mut(NodeId(2)).unwrap().ids_mut().next_id(),
                items,
                64,
            );
            fed.integrate_apo(
                NodeId(2),
                "svc",
                apo,
                AmbassadorSpec::relay_only()
                    .with_methods(["ping"])
                    .with_data(cargo_names(items)),
            )
            .unwrap();
            fed.link(NodeId(1), NodeId(2)).unwrap();
            let t0 = fed.now();
            let bytes0 = fed.net_stats().bytes_sent;
            fed.import_apo(NodeId(1), NodeId(2), "svc").unwrap();
            println!(
                "  {:<24} {:>12} {:>14} {:>12}",
                format!("import {items} items/{profile}"),
                fed.net_stats().bytes_sent - bytes0,
                fed.now().saturating_sub(t0).to_string(),
                "-"
            );
        }
    }
}

fn e7_crossover() {
    header(
        "E7",
        "relay-per-call vs migrate-then-local (the mobile-code crossover)",
        "splitting functionality on the fly: moving code wins once calls amortize the move",
    );
    let winner_col = "winner";
    println!(
        "  {:<10} {:>6} {:>16} {:>16}  {winner_col}",
        "latency", "calls", "relay (virtual)", "migrate (virt.)"
    );
    for (label, latency_us) in [("2ms", 2_000u64), ("20ms", 20_000), ("200ms", 200_000)] {
        let mut crossover_seen = false;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let time_for = |migrate: bool| -> SimTime {
                let link = LinkConfig::new()
                    .latency_us(latency_us)
                    .bandwidth_bytes_per_sec(1_000_000);
                let cfg = NetworkConfig::new(3).with_default_link(link);
                let mut fed = Federation::new(cfg);
                fed.add_site(NodeId(1)).unwrap();
                fed.add_site(NodeId(2)).unwrap();
                fed.link(NodeId(1), NodeId(2)).unwrap();
                let apo = employee_db().instantiate_as(
                    fed.runtime_mut(NodeId(2)).unwrap().ids_mut().next_id(),
                    None,
                );
                fed.integrate_apo(NodeId(2), "db", apo, AmbassadorSpec::relay_only())
                    .unwrap();
                let amb = fed.import_apo(NodeId(1), NodeId(2), "db").unwrap();
                let client = fed.runtime_mut(NodeId(1)).unwrap().ids_mut().next_id();
                let t0 = fed.now();
                if migrate {
                    let apo_id = fed.apo_id(NodeId(2), "db").unwrap();
                    let employees = fed
                        .runtime(NodeId(2))
                        .unwrap()
                        .object(apo_id)
                        .unwrap()
                        .read_data(apo_id, "employees")
                        .unwrap();
                    fed.migrate_method(NodeId(2), "db", "salary_of").unwrap();
                    fed.push_update(
                        NodeId(2),
                        "db",
                        &[UpdateOp::AddData("employees".into(), employees)],
                    )
                    .unwrap();
                }
                for _ in 0..k {
                    fed.call_through_ambassador(
                        NodeId(1),
                        client,
                        amb,
                        "salary_of",
                        &[Value::from("alice")],
                    )
                    .unwrap();
                }
                fed.now().saturating_sub(t0)
            };
            let relay = time_for(false);
            let migrate = time_for(true);
            let winner = if migrate < relay { "migrate" } else { "relay" };
            if !crossover_seen && migrate < relay {
                crossover_seen = true;
            }
            println!(
                "  {:<10} {:>6} {:>16} {:>16}  {}",
                label,
                k,
                relay.to_string(),
                migrate.to_string(),
                winner
            );
        }
        let _ = crossover_seen;
        println!();
    }
}

/// E7 appendix: where the crossover falls as the link gets thinner. The
/// migrate strategy pays the ambassador-update bytes up front, so lower
/// bandwidth pushes the break-even call count up — the "low-bandwidth"
/// motivation of the introduction, quantified.
fn e7_bandwidth() {
    println!();
    println!(
        "  {:<14} {:>14} {:>22}",
        "bandwidth", "latency", "crossover (calls)"
    );
    for (label, bw) in [
        ("8 kB/s", 8_000u64),
        ("64 kB/s", 64_000),
        ("1 MB/s", 1_000_000),
    ] {
        let time_for = |migrate: bool, k: usize| -> SimTime {
            let link = LinkConfig::new()
                .latency_us(20_000)
                .bandwidth_bytes_per_sec(bw);
            let cfg = NetworkConfig::new(5).with_default_link(link);
            let mut fed = Federation::new(cfg);
            fed.add_site(NodeId(1)).unwrap();
            fed.add_site(NodeId(2)).unwrap();
            fed.link(NodeId(1), NodeId(2)).unwrap();
            let apo = employee_db().instantiate_as(
                fed.runtime_mut(NodeId(2)).unwrap().ids_mut().next_id(),
                None,
            );
            fed.integrate_apo(NodeId(2), "db", apo, AmbassadorSpec::relay_only())
                .unwrap();
            let amb = fed.import_apo(NodeId(1), NodeId(2), "db").unwrap();
            let client = fed.runtime_mut(NodeId(1)).unwrap().ids_mut().next_id();
            let t0 = fed.now();
            if migrate {
                let apo_id = fed.apo_id(NodeId(2), "db").unwrap();
                let employees = fed
                    .runtime(NodeId(2))
                    .unwrap()
                    .object(apo_id)
                    .unwrap()
                    .read_data(apo_id, "employees")
                    .unwrap();
                fed.migrate_method(NodeId(2), "db", "salary_of").unwrap();
                fed.push_update(
                    NodeId(2),
                    "db",
                    &[UpdateOp::AddData("employees".into(), employees)],
                )
                .unwrap();
            }
            for _ in 0..k {
                fed.call_through_ambassador(
                    NodeId(1),
                    client,
                    amb,
                    "salary_of",
                    &[Value::from("alice")],
                )
                .unwrap();
            }
            fed.now().saturating_sub(t0)
        };
        let crossover = (1..=64)
            .find(|&k| time_for(true, k) < time_for(false, k))
            .map_or_else(|| ">64".to_owned(), |k| k.to_string());
        println!("  {:<14} {:>14} {:>22}", label, "20ms", crossover);
    }
}

fn e8_models() {
    header(
        "E8",
        "object models compared (§2)",
        "DII/COM/introspection offer lookup without mutable semantics; MROM offers both",
    );
    println!("  capability matrix (✓ = supported):");
    println!(
        "  {:<30} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "model", "introsp", "struct", "behav", "invoke", "sec", "mobile"
    );
    for (name, caps) in capability_matrix() {
        let tick = |b: bool| if b { "✓" } else { "-" };
        println!(
            "  {:<30} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            name,
            tick(caps.introspect_structure),
            tick(caps.mutate_structure),
            tick(caps.mutate_behaviour),
            tick(caps.mutate_invocation),
            tick(caps.security_in_model),
            tick(caps.mobile),
        );
    }
    println!("\n  dynamic call cost, add(20, 22):");
    let args = [Value::Int(20), Value::Int(22)];
    let statik = StaticCounter::new();
    row(
        "static Rust",
        fmt_ns(time_ns(QUICK * 10, || {
            std::hint::black_box(statik.add(20, 22));
        })),
    );
    let class = mrom_baselines::introspect::counter_class();
    let mut obj = class.instantiate();
    row(
        "introspection (Java-like)",
        fmt_ns(time_ns(QUICK, || {
            obj.invoke("add", &args).unwrap();
        })),
    );
    let (repo, servant) = mrom_baselines::dii::counter_setup();
    row(
        "DII: build request + invoke",
        fmt_ns(time_ns(QUICK, || {
            let req = mrom_baselines::dii::Request::build(&repo, "Counter", "add", &args).unwrap();
            servant.invoke(&req).unwrap();
        })),
    );
    let req = mrom_baselines::dii::Request::build(&repo, "Counter", "add", &args).unwrap();
    row(
        "DII: prebuilt request",
        fmt_ns(time_ns(QUICK, || {
            servant.invoke(&req).unwrap();
        })),
    );
    let mut com = mrom_baselines::com::counter_object();
    row(
        "COM: QueryInterface + call",
        fmt_ns(time_ns(QUICK, || {
            let iface = com.query_interface("ICounter").unwrap();
            let slot = iface.slot_index("add").unwrap();
            com.call(&iface, slot, &args).unwrap();
        })),
    );
    let iface = com.query_interface("ICounter").unwrap();
    let slot = iface.slot_index("add").unwrap();
    row(
        "COM: cached interface",
        fmt_ns(time_ns(QUICK, || {
            com.call(&iface, slot, &args).unwrap();
        })),
    );
    let mut ids = bench_ids();
    let mut world = NoWorld;
    let caller = ids.next_id();
    let mut native = native_counter(&mut ids);
    row(
        "MROM: native body",
        fmt_ns(time_ns(QUICK, || {
            invoke(&mut native, &mut world, caller, "add", &args).unwrap();
        })),
    );
    let mut script = script_counter(&mut ids);
    row(
        "MROM: script body (mobile)",
        fmt_ns(time_ns(QUICK, || {
            invoke(&mut script, &mut world, caller, "add", &args).unwrap();
        })),
    );
}

fn e9_dbshutdown() {
    header(
        "E9",
        "database maintenance (§5 example)",
        "the origin rewrites its Ambassadors' invocation semantics; clients never fail",
    );
    println!(
        "  {:<10} {:>16} {:>14} {:>18}",
        "spokes", "push (virtual)", "push bytes", "failed client calls"
    );
    for spokes in [1u64, 2, 4, 8] {
        let (mut fed, nodes) = star_federation(4, spokes + 1, LinkConfig::wan()).unwrap();
        let hub = nodes[0];
        let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
        let t0 = fed.now();
        let b0 = fed.net_stats().bytes_sent;
        push_maintenance_notice(&mut fed, hub).unwrap();
        let push_time = fed.now().saturating_sub(t0);
        let push_bytes = fed.net_stats().bytes_sent - b0;
        // Partition the hub away and hammer the ambassadors.
        for &s in &nodes[1..] {
            fed.net_config_mut().partition(hub, s);
        }
        let mut failed = 0usize;
        for &(spoke, amb) in &ambs {
            let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
            for method in ["count", "salary_of"] {
                let args = if method == "count" {
                    vec![]
                } else {
                    vec![Value::from("bob")]
                };
                if fed
                    .call_through_ambassador(spoke, client, amb, method, &args)
                    .is_err()
                {
                    failed += 1;
                }
            }
        }
        println!(
            "  {:<10} {:>16} {:>14} {:>18}",
            spokes,
            push_time.to_string(),
            push_bytes,
            failed
        );
    }
}

fn e10_persist() {
    header(
        "E10",
        "self-contained persistence",
        "the object writes itself to host-allocated space and bootstraps back",
    );
    println!(
        "  {:<18} {:>12} {:>12} {:>12}",
        "cargo items", "image bytes", "save", "restore"
    );
    for items in [8usize, 64, 512] {
        let mut ids = bench_ids();
        let obj = cargo_object(&mut ids, items, 64);
        let id = obj.id();
        let image_len = obj.migration_image(id).unwrap().len();
        let mut depot = Depot::new(MemStore::new());
        let save = time_ns(SLOW * 10, || {
            depot.save(&obj).unwrap();
        });
        let restore = time_ns(SLOW * 10, || {
            std::hint::black_box(depot.restore(id).unwrap());
        });
        println!(
            "  {:<18} {:>12} {:>12} {:>12}",
            items,
            image_len,
            fmt_ns(save),
            fmt_ns(restore)
        );
    }
    // File store: recovery of 100 objects.
    let dir = std::env::temp_dir().join(format!("mrom-tables-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    {
        let mut depot = Depot::new(FileStore::open(dir.join("fleet.log")).unwrap());
        let mut ids = bench_ids();
        for _ in 0..100 {
            depot.save(&cargo_object(&mut ids, 8, 32)).unwrap();
        }
    }
    let ns = time_ns(SLOW, || {
        let depot = Depot::new(FileStore::open(dir.join("fleet.log")).unwrap());
        let (objs, failed) = depot.restore_all();
        assert_eq!(objs.len(), 100);
        assert!(failed.is_empty());
    });
    row("file store: recover 100 objects", fmt_ns(ns));
    let _ = std::fs::remove_dir_all(&dir);
}

fn e15_script_vm() {
    header(
        "E15",
        "register bytecode VM for script bodies (PR 6)",
        "admitted bodies compile once to register bytecode; the tree-walker stays selectable and equivalent",
    );
    println!(
        "  {:<36} {:>10} {:>10} {:>8}",
        "body", "interp", "VM", "speedup"
    );
    const LOOP_SRC: &str = "param n; let acc = 0; let i = 0; \
                            while (i < n) { \
                                acc = acc + i * 2 - acc / 3; \
                                if (acc > 1000) { acc = acc - 997; } \
                                i = i + 1; \
                            } \
                            return acc;";
    const STRAIGHT_SRC: &str = "param a; param b; return (a + b) * (a - b) + a % 7;";
    let fuel = 10_000_000u64;
    let speedup_row = |label: &str, interp: f64, vm: f64| {
        println!(
            "  {:<36} {:>10} {:>10} {:>7.2}x",
            label,
            fmt_ns(interp),
            fmt_ns(vm),
            interp / vm
        );
    };
    let cases: [(&str, &str, Vec<Value>, u64); 2] = [
        (
            "loop-heavy, 200 iterations",
            LOOP_SRC,
            vec![Value::Int(200)],
            SLOW * 10,
        ),
        (
            "straight-line (per-call floor)",
            STRAIGHT_SRC,
            vec![Value::Int(17), Value::Int(5)],
            QUICK,
        ),
    ];
    for (label, src, args, reps) in cases {
        let p = Program::parse(src).unwrap();
        let interp = time_ns(reps, || {
            let mut host = NullHost;
            let mut ev = Evaluator::with_fuel(&mut host, fuel);
            std::hint::black_box(ev.run(&p, &args).unwrap());
        });
        let compiled = p.compiled();
        let vm = time_ns(reps, || {
            let mut host = NullHost;
            let mut vm = Vm::with_fuel(&mut host, fuel);
            std::hint::black_box(vm.run(&compiled, &args).unwrap());
        });
        speedup_row(label, interp, vm);
    }
    // Full invoke round-trip whose hot loop is `self` data traffic — the
    // inline-cache target shape. Fresh object per iteration so `count`
    // growth never changes the arithmetic between engines.
    const IC_SRC: &str = "param n; let i = 0; \
                          while (i < n) { \
                              self.set(\"count\", self.get(\"count\") + 1); \
                              i = i + 1; \
                          } \
                          return self.get(\"count\");";
    let mut by_engine = [0.0f64; 2];
    for (slot, engine) in [ScriptEngine::Interp, ScriptEngine::Vm]
        .into_iter()
        .enumerate()
    {
        set_script_engine(engine);
        let mut ids = bench_ids();
        let caller = ids.next_id();
        by_engine[slot] = time_ns(SLOW * 10, || {
            let mut ids = bench_ids();
            let mut obj = ObjectBuilder::new(ids.next_id())
                .class("e15-counter")
                .fixed_data("count", DataItem::public(Value::Int(0)))
                .fixed_method("tally", Method::public(MethodBody::script(IC_SRC).unwrap()))
                .build();
            invoke(&mut obj, &mut NoWorld, caller, "tally", &[Value::Int(100)]).unwrap();
        });
    }
    set_script_engine(ScriptEngine::Vm);
    speedup_row(
        "invoke: 100x self.get/self.set loop",
        by_engine[0],
        by_engine[1],
    );
    // What admission pays once per admitted body.
    row(
        "admission: parse only (loop body)",
        fmt_ns(time_ns(QUICK, || {
            std::hint::black_box(Program::parse(LOOP_SRC).unwrap());
        })),
    );
    row(
        "admission: parse + compile",
        fmt_ns(time_ns(QUICK, || {
            let p = Program::parse(LOOP_SRC).unwrap();
            std::hint::black_box(p.compiled());
        })),
    );
}

fn e16_effects() {
    header(
        "E16",
        "effect signatures + bytecode verification (PR 7)",
        "admission proves behavioural contracts; retry/migration/concurrency policies consume them",
    );
    let chained = |n: usize| {
        let mut ids = bench_ids();
        let mut builder = ObjectBuilder::new(ids.next_id()).class("migrant");
        for s in 0..8 {
            builder = builder.fixed_data(&format!("slot{s}"), DataItem::public(Value::Int(0)));
        }
        builder = builder.fixed_data("count", DataItem::public(Value::Int(0)));
        for m in 0..n {
            let src = if m == 0 {
                "param a; param b; let t = self.get(\"count\"); \
                 self.set(\"count\", t + a + b); return t;"
                    .to_owned()
            } else {
                format!(
                    "param a; self.set(\"slot{}\", a); return self.invoke(\"m{}\", [a, 1]);",
                    m % 8,
                    m - 1
                )
            };
            builder = builder.fixed_method(
                &format!("m{m}"),
                Method::public(MethodBody::script(&src).unwrap()),
            );
        }
        builder.build()
    };
    for n in [1usize, 8, 32] {
        let obj = chained(n);
        let reps = if n == 32 { SLOW } else { SLOW * 10 };
        let ns = time_ns(reps, || {
            std::hint::black_box(mrom_core::object_effects(&obj));
        });
        row(
            &format!("solve: {n} chained methods (uncached)"),
            fmt_ns(ns),
        );
    }
    let mut cached = chained(8);
    cached.effects();
    row(
        "cached signature-table hit",
        fmt_ns(time_ns(QUICK, || {
            std::hint::black_box(cached.effects());
        })),
    );
    let small = Program::parse("param a; return self.get(\"x\") + a;").unwrap();
    row(
        "verify: small compiled body",
        fmt_ns(time_ns(QUICK, || {
            mrom_script::verify(&small.compiled()).unwrap();
        })),
    );
}

fn e17_telemetry() {
    header(
        "E17",
        "windowed telemetry (PR 8)",
        "the system observes itself: sliding-window profiles, one reflective snapshot, trace export",
    );
    let args = [Value::Int(20), Value::Int(22)];
    let modes: [(&str, mrom_obs::ObsMode, bool); 4] = [
        (
            "invoke: disabled, window configured",
            mrom_obs::ObsMode::Disabled,
            true,
        ),
        (
            "invoke: ring (flight recorder only)",
            mrom_obs::ObsMode::Ring,
            false,
        ),
        ("invoke: ring + window", mrom_obs::ObsMode::Ring, true),
        ("invoke: full + window", mrom_obs::ObsMode::Full, true),
    ];
    for (label, mode, windowed) in modes {
        let mut ids = bench_ids();
        let mut obj = counter_among(&mut ids, 64, false);
        let caller = ids.next_id();
        let mut world = NoWorld;
        mrom_obs::reset();
        mrom_obs::set_window(windowed.then_some(mrom_obs::WindowConfig::DEFAULT));
        mrom_obs::set_mode(mode);
        let ns = time_ns(QUICK, || {
            std::hint::black_box(invoke(&mut obj, &mut world, caller, "m_add", &args).unwrap());
        });
        mrom_obs::set_mode(mrom_obs::ObsMode::Disabled);
        mrom_obs::set_window(None);
        mrom_obs::reset();
        row(label, fmt_ns(ns));
    }
    // Read side over a populated window + full ring.
    {
        let mut ids = bench_ids();
        let mut obj = counter_among(&mut ids, 64, false);
        let caller = ids.next_id();
        let mut world = NoWorld;
        mrom_obs::reset();
        mrom_obs::set_window(Some(mrom_obs::WindowConfig::DEFAULT));
        mrom_obs::set_mode(mrom_obs::ObsMode::Ring);
        for _ in 0..1024 {
            invoke(&mut obj, &mut world, caller, "m_add", &args).unwrap();
        }
        row(
            "snapshot: fold window into TelemetrySnapshot",
            fmt_ns(time_ns(QUICK, || {
                std::hint::black_box(mrom_obs::telemetry_snapshot());
            })),
        );
        let events = mrom_obs::ring_snapshot();
        let per_event = time_ns(SLOW, || {
            std::hint::black_box(mrom_obs::chrome_trace(&events));
        }) / events.len() as f64;
        row("chrome export: per ring event", fmt_ns(per_event));
        mrom_obs::set_mode(mrom_obs::ObsMode::Disabled);
        mrom_obs::set_window(None);
        mrom_obs::reset();
    }
}

fn main() {
    println!("MROM reproduction — experiment report (E1-E10, E15, E16, E17)");
    println!(
        "paper: Holder & Ben-Shaul, 'A Reflective Model for Mobile Software Objects', ICDCS 1997"
    );
    e1_tower();
    e2_lookup();
    e3_wrapping();
    e4_acl();
    e5_mutation();
    e6_federation();
    e7_crossover();
    e7_bandwidth();
    e8_models();
    e9_dbshutdown();
    e10_persist();
    e15_script_vm();
    e16_effects();
    e17_telemetry();
    println!("\ndone.");
}
