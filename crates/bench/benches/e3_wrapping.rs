//! E3 — wrapping overhead (§3.1).
//!
//! Pre- and post-procedures "are called before and after the invocation of
//! the body of the method" and can be attached dynamically. Rows: a
//! native-bodied method with no wrapping, a native pre, native pre+post,
//! script pre+post, and the cost of a *vetoing* pre (body skipped).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mrom_bench::bench_ids;
use mrom_core::{invoke, Method, MethodBody, NoWorld, ObjectBuilder};
use mrom_value::Value;

fn body() -> MethodBody {
    MethodBody::native(|_, args| {
        Ok(Value::Int(
            args.first().and_then(Value::as_int).unwrap_or(0) * 2,
        ))
    })
}

fn native_true() -> MethodBody {
    MethodBody::native(|_, _| Ok(Value::Bool(true)))
}

fn bench_wrapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_wrapping");
    let mut ids = bench_ids();
    let args = [Value::Int(21)];

    let variants: Vec<(&str, Method)> = vec![
        ("bare", Method::public(body())),
        ("native_pre", Method::public(body()).with_pre(native_true())),
        (
            "native_pre_post",
            Method::public(body())
                .with_pre(native_true())
                .with_post(native_true()),
        ),
        (
            "script_pre_post",
            Method::public(body())
                .with_pre(MethodBody::script("param x; return x > 0;").unwrap())
                .with_post(MethodBody::script("param r; param x; return r == x * 2;").unwrap()),
        ),
    ];

    for (label, method) in variants {
        let mut obj = ObjectBuilder::new(ids.next_id())
            .fixed_method("m", method)
            .build();
        let caller = ids.next_id();
        let mut world = NoWorld;
        group.bench_function(label, |b| {
            b.iter(|| black_box(invoke(&mut obj, &mut world, caller, "m", &args).unwrap()));
        });
    }

    // A vetoing pre: the body never runs; the error path is the product.
    let mut obj = ObjectBuilder::new(ids.next_id())
        .fixed_method(
            "m",
            Method::public(body()).with_pre(MethodBody::native(|_, _| Ok(Value::Bool(false)))),
        )
        .build();
    let caller = ids.next_id();
    let mut world = NoWorld;
    group.bench_function("vetoing_pre", |b| {
        b.iter(|| black_box(invoke(&mut obj, &mut world, caller, "m", &args).unwrap_err()));
    });
    group.finish();
}

criterion_group!(benches, bench_wrapping);
criterion_main!(benches);
