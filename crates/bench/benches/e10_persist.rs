//! E10 — self-contained persistence (§1's self-containment requirement).
//!
//! Rows: an object writing itself into a memory depot and bootstrapping
//! back, at several cargo sizes; the same against the log-structured file
//! store; recovery scans; and compaction of a churned log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_bench::{bench_ids, cargo_object};
use mrom_persist::{BlobStore, Depot, FileStore, MemStore};

fn bench_persist(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_persist");
    group.sample_size(30);

    for items in [8usize, 64, 512] {
        let mut ids = bench_ids();
        let obj = cargo_object(&mut ids, items, 64);
        let id = obj.id();

        group.bench_with_input(BenchmarkId::new("mem_save", items), &items, |b, _| {
            let mut depot = Depot::new(MemStore::new());
            b.iter(|| depot.save(black_box(&obj)).unwrap());
        });
        let mut depot = Depot::new(MemStore::new());
        depot.save(&obj).unwrap();
        group.bench_with_input(BenchmarkId::new("mem_restore", items), &items, |b, _| {
            b.iter(|| black_box(depot.restore(id).unwrap()));
        });
    }

    // File-backed save/restore at one representative size.
    let dir = std::env::temp_dir().join(format!("mrom-bench-e10-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut ids = bench_ids();
    let obj = cargo_object(&mut ids, 64, 64);
    let id = obj.id();

    group.bench_function("file_save", |b| {
        let mut depot = Depot::new(FileStore::open(dir.join("save.log")).unwrap());
        b.iter(|| depot.save(black_box(&obj)).unwrap());
    });
    let mut depot = Depot::new(FileStore::open(dir.join("restore.log")).unwrap());
    depot.save(&obj).unwrap();
    group.bench_function("file_restore", |b| {
        b.iter(|| black_box(depot.restore(id).unwrap()));
    });

    // Recovery: reopen a log holding 100 live objects.
    {
        let mut depot = Depot::new(FileStore::open(dir.join("recover.log")).unwrap());
        let mut ids = bench_ids();
        for _ in 0..100 {
            let o = cargo_object(&mut ids, 8, 32);
            depot.save(&o).unwrap();
        }
    }
    group.bench_function("recover_100_objects", |b| {
        b.iter(|| {
            let depot = Depot::new(FileStore::open(dir.join("recover.log")).unwrap());
            let (objs, failed) = depot.restore_all();
            assert_eq!(objs.len(), 100);
            assert!(failed.is_empty());
            black_box(objs)
        });
    });

    // Compaction of a churned log (90% garbage).
    group.bench_function("compact_churned_log", |b| {
        b.iter_with_setup(
            || {
                let path = dir.join(format!("churn-{}.log", rand::random::<u32>()));
                let mut store = FileStore::open(&path).unwrap();
                let blob = vec![0u8; 256];
                for round in 0..10 {
                    for key in 0..20 {
                        store
                            .put(&format!("obj-{key}"), &blob[..(round + 1) * 20])
                            .unwrap();
                    }
                }
                store
            },
            |mut store| {
                store.compact().unwrap();
                black_box(store.log_bytes())
            },
        );
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
