//! E6 — Figure 2 brought up on the wire: Link and Import/Export costs.
//!
//! Rows: the Link handshake, the Import/Export of Ambassadors whose
//! migration image grows with cargo, and raw image encode/decode. Wall
//! time here measures the *machinery* (serialization, protocol handling,
//! simulator) — the virtual-time/latency story appears in the `tables`
//! binary, which reports the simulator's own deterministic clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hadas::{AmbassadorSpec, Federation};
use mrom_bench::{bench_ids, cargo_names, cargo_object, cargo_object_as};
use mrom_core::MromObject;
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_value::NodeId;

fn fresh_pair(seed: u64) -> Federation {
    let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    fed.add_site(NodeId(1)).unwrap();
    fed.add_site(NodeId(2)).unwrap();
    fed
}

fn bench_federation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_federation");
    group.sample_size(30);

    group.bench_function("link_handshake", |b| {
        b.iter_with_setup(
            || fresh_pair(1),
            |mut fed| {
                fed.link(NodeId(1), NodeId(2)).unwrap();
                black_box(fed)
            },
        );
    });

    for cargo_items in [0usize, 32, 256] {
        group.bench_with_input(
            BenchmarkId::new("import_export", cargo_items),
            &cargo_items,
            |b, &items| {
                b.iter_with_setup(
                    || {
                        let mut fed = fresh_pair(2);
                        let apo = cargo_object_as(
                            fed.runtime_mut(NodeId(2)).unwrap().ids_mut().next_id(),
                            items,
                            64,
                        );
                        fed.integrate_apo(
                            NodeId(2),
                            "svc",
                            apo,
                            AmbassadorSpec::relay_only()
                                .with_methods(["ping"])
                                .with_data(cargo_names(items)),
                        )
                        .unwrap();
                        fed.link(NodeId(1), NodeId(2)).unwrap();
                        fed
                    },
                    |mut fed| {
                        let amb = fed.import_apo(NodeId(1), NodeId(2), "svc").unwrap();
                        black_box(amb)
                    },
                );
            },
        );
    }

    // Raw migration image encode/decode at two sizes.
    for items in [8usize, 256] {
        let mut ids = bench_ids();
        let obj = cargo_object(&mut ids, items, 64);
        let me = obj.id();
        group.bench_with_input(BenchmarkId::new("image_encode", items), &items, |b, _| {
            b.iter(|| black_box(obj.migration_image(me).unwrap()));
        });
        let image = obj.migration_image(me).unwrap();
        group.bench_with_input(BenchmarkId::new("image_decode", items), &items, |b, _| {
            b.iter(|| black_box(MromObject::from_image(&image).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_federation);
criterion_main!(benches);
