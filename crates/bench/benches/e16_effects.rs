//! E16 — the price of effect signatures and bytecode verification (PR 7).
//!
//! Admission now independently verifies every compiled body, and the
//! interprocedural effect solver closes per-body facts over the
//! object's call graph on first consumer use (memoized). E16 prices
//! each piece: the solver alone as the method count grows, the
//! generation-stamped cache hit a retry/dispatch policy actually pays,
//! standalone verification of small and large bodies, the end-to-end
//! `from_image` admission path (comparable row-for-row with E12; the
//! added cost over pre-PR is the verifier), the reflective `getEffects`
//! surface, and the script invoke hot path — which must not notice any
//! of this.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_bench::bench_ids;
use mrom_core::{
    invoke, object_effects, AdmissionPolicy, DataItem, Method, MethodBody, MromObject, NoWorld,
    ObjectBuilder,
};
use mrom_script::{verify, Program};
use mrom_value::Value;

const SMALL_SRC: &str = "param a; param b; let t = self.get(\"count\"); \
                         self.set(\"count\", t + a + b); return t;";

/// A loop-free body with many statements and host calls (same shape as
/// E12's large program, so verifier cost tracks analyzer cost).
fn large_src() -> String {
    let mut src = String::from("param seed; let acc = seed;\n");
    for i in 0..120 {
        src.push_str(&format!(
            "let v{i} = acc + {i}; acc = v{i} * 2 - acc; \
             self.set(\"slot{}\", acc);\n",
            i % 8
        ));
    }
    src.push_str("return acc;");
    src
}

/// An object with `n` script methods over shared data, chained so the
/// interprocedural solver has real call edges to close
/// (`m{k}` invokes `m{k-1}`).
fn chained_object(n: usize) -> MromObject {
    let mut ids = bench_ids();
    let mut builder = ObjectBuilder::new(ids.next_id()).class("migrant");
    for s in 0..8 {
        builder = builder.fixed_data(&format!("slot{s}"), DataItem::public(Value::Int(0)));
    }
    builder = builder.fixed_data("count", DataItem::public(Value::Int(0)));
    for m in 0..n {
        let src = if m == 0 {
            SMALL_SRC.to_owned()
        } else {
            format!(
                "param a; self.set(\"slot{}\", a); return self.invoke(\"m{}\", [a, 1]);",
                m % 8,
                m - 1
            )
        };
        builder = builder.fixed_method(
            &format!("m{m}"),
            Method::public(MethodBody::script(&src).expect("parse")),
        );
    }
    builder.build()
}

fn bench_effects(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_effects");

    // Interprocedural solve, uncached, as the call graph grows.
    for n in [1usize, 8, 32] {
        let obj = chained_object(n);
        group.bench_with_input(BenchmarkId::new("solve_object", n), &n, |b, _| {
            b.iter(|| black_box(object_effects(black_box(&obj))));
        });
    }

    // The memoized path consumers actually hit (generation-stamped).
    let mut cached = chained_object(8);
    cached.effects();
    group.bench_function("effects_cached_hit", |b| {
        b.iter(|| black_box(cached.effects()));
    });

    // Independent bytecode verification, per compiled body.
    let small = Program::parse(SMALL_SRC).expect("parse");
    let large = Program::parse(&large_src()).expect("parse");
    group.bench_function("verify_small_program", |b| {
        b.iter(|| verify(black_box(&small.compiled())).expect("verifies"));
    });
    group.bench_function("verify_large_program", |b| {
        b.iter(|| verify(black_box(&large.compiled())).expect("verifies"));
    });

    // End-to-end admission at the migration boundary — same rows as E12,
    // now including bytecode verification (signatures stay lazy).
    let obj = chained_object(8);
    let image = obj.migration_image(obj.id()).expect("image");
    for (label, policy) in [
        ("off", AdmissionPolicy::Off),
        ("warn", AdmissionPolicy::Warn),
        ("strict", AdmissionPolicy::Strict),
    ] {
        group.bench_with_input(
            BenchmarkId::new("from_image", label),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(
                        MromObject::from_image_with_policy(black_box(&image), policy).unwrap(),
                    )
                });
            },
        );
    }

    // The reflective surface: a full getEffects invocation (cache-hit
    // table render included).
    let mut ids = bench_ids();
    let caller = ids.next_id();
    let mut fx = chained_object(4);
    let mut world = NoWorld;
    group.bench_function("get_effects_meta", |b| {
        b.iter(|| black_box(invoke(&mut fx, &mut world, caller, "getEffects", &[]).unwrap()));
    });

    // Script invoke hot path: signatures are admission-time artifacts,
    // so steady-state invocation must be unchanged (compare with E12-era
    // numbers; the gate is "within noise").
    let mut counter = chained_object(1);
    group.bench_function("invoke_script_hot", |b| {
        b.iter(|| {
            black_box(
                invoke(
                    &mut counter,
                    &mut world,
                    caller,
                    "m0",
                    &[Value::Int(1), Value::Int(2)],
                )
                .unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_effects);
criterion_main!(benches);
