//! E17 — windowed telemetry cost on the level-0 fast path.
//!
//! The same repeated dispatch as E2/E11's cache-hit regime, crossed over
//! observability mode × windowed profiling:
//!
//! * **disabled / window off** — the zero-cost claim unchanged: one
//!   thread-local byte read per instrumentation point.
//! * **disabled / window on** — a configured window must stay invisible
//!   while recording is off (the window feed sits *inside* the
//!   already-gated paths).
//! * **ring / window off** — PR 3's flight-recorder cost, the pre-PR
//!   baseline for the windowed rows.
//! * **ring / window on** — the tentpole's price: per-invocation
//!   epoch-bucket update (fuel histogram, counters) on top of ring.
//! * **full / window on** — adds `Instant` latency sampling into the
//!   window's latency histogram.
//!
//! Two service rows measure the read side: folding the live window into
//! a `TelemetrySnapshot` and rendering the flight recorder as a Chrome
//! trace.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mrom_bench::{bench_ids, counter_among};
use mrom_core::{invoke, NoWorld};
use mrom_obs::{ObsMode, WindowConfig};
use mrom_value::Value;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_telemetry");
    let args = [Value::Int(20), Value::Int(22)];

    for (label, mode, windowed) in [
        ("disabled_nowin", ObsMode::Disabled, false),
        ("disabled_win", ObsMode::Disabled, true),
        ("ring_nowin", ObsMode::Ring, false),
        ("ring_win", ObsMode::Ring, true),
        ("full_win", ObsMode::Full, true),
    ] {
        let mut ids = bench_ids();
        let mut obj = counter_among(&mut ids, 64, false);
        let caller = ids.next_id();
        let mut world = NoWorld;
        mrom_obs::reset();
        mrom_obs::set_window(windowed.then_some(WindowConfig::DEFAULT));
        mrom_obs::set_mode(mode);
        group.bench_function(format!("invoke_{label}"), |b| {
            b.iter(|| {
                black_box(invoke(&mut obj, &mut world, caller, black_box("m_add"), &args).unwrap())
            });
        });
        mrom_obs::set_mode(ObsMode::Disabled);
        mrom_obs::set_window(None);
        mrom_obs::reset();
    }

    // Read side: snapshot folding over a populated window, and the
    // Chrome exporter over a full flight-recorder ring.
    {
        let mut ids = bench_ids();
        let mut obj = counter_among(&mut ids, 64, false);
        let caller = ids.next_id();
        let mut world = NoWorld;
        mrom_obs::reset();
        mrom_obs::set_window(Some(WindowConfig::DEFAULT));
        mrom_obs::set_mode(ObsMode::Ring);
        for _ in 0..1024 {
            invoke(&mut obj, &mut world, caller, "m_add", &args).unwrap();
        }
        group.bench_function("snapshot_collect", |b| {
            b.iter(|| black_box(mrom_obs::telemetry_snapshot()));
        });
        let events = mrom_obs::ring_snapshot();
        group.bench_function("chrome_export", |b| {
            b.iter(|| black_box(mrom_obs::chrome_trace(black_box(&events))));
        });
        mrom_obs::set_mode(ObsMode::Disabled);
        mrom_obs::set_window(None);
        mrom_obs::reset();
    }

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
