//! E19 — the self-tuning Advisor: what reflection-driven placement
//! costs, and the convergence scenario that justifies it.
//!
//! The headline numbers (p95 before/after, speedup, migration counts)
//! ship in `BENCH_PR10.json` via `mrom-fleet converge --json`; this
//! harness keeps the advisory path itself on the perf radar:
//!
//! * **decide_cold** — one advisory pass over a 64-object, 8-site
//!   snapshot with no prior evidence ledger: the pure decision function
//!   the epoch driver calls (candidate scan, dominance test, budget and
//!   dwell gates);
//! * **decide_warm** — the same pass against an advisor whose ledgers
//!   already carry evidence baselines, the steady-state shape;
//! * **converge_run / baseline_run** — the E19 scenario end to end with
//!   the advisor on vs off: the difference is the total cost of
//!   telemetry snapshots, candidate tables, advisory epochs, and the
//!   migrations they trigger (which the latency win has to pay for);
//! * **pingpong_run** — the adversarial flip workload, dominated by
//!   hysteresis bookkeeping rather than migration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use hadas::{Advisor, AdvisorConfig, AdvisorInput, Candidate};
use mrom_fleet::{run_fleet, FleetConfig};
use mrom_net::NetStats;
use mrom_obs::{ObjectProfile, TelemetrySnapshot};
use mrom_value::{NodeId, ObjectId};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn synthetic_input(seed: u64) -> (TelemetrySnapshot, NetStats, BTreeMap<ObjectId, Candidate>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut snap = TelemetrySnapshot::default();
    let mut candidates = BTreeMap::new();
    for n in 0..64u32 {
        let id = ObjectId::from_parts(NodeId(1), n, 0);
        let mut p = ObjectProfile::default();
        for _ in 0..rng.random_range(1..4usize) {
            let site = NodeId(rng.random_range(0..8u64));
            let weight = rng.random_range(1..50u64);
            *p.remote_callers.entry(site).or_insert(0) += weight;
            p.invocations += weight;
        }
        snap.objects.insert(id, p);
        candidates.insert(
            id,
            Candidate {
                host: NodeId(u64::from(n % 8)),
                migration_safe: n % 3 != 0,
                idempotent_permille: 1000,
                busy: false,
            },
        );
    }
    let mut stats = NetStats::default();
    stats.per_link.insert((NodeId(0), NodeId(1)), (40, 320));
    stats.per_link_dropped.insert((NodeId(0), NodeId(1)), 12);
    (snap, stats, candidates)
}

fn bench_advisor(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_advisor");
    group.sample_size(10);

    let (snap, stats, candidates) = synthetic_input(42);
    let input = AdvisorInput {
        epoch: 4,
        telemetry: &snap,
        stats: &stats,
        candidates: candidates.clone(),
    };

    let cold = Advisor::new(AdvisorConfig::standard());
    group.bench_function("decide_cold", |b| {
        b.iter(|| black_box(cold.decide(black_box(&input))));
    });

    let mut warm = Advisor::new(AdvisorConfig::standard());
    let warm_pass = warm.decide(&input);
    warm.commit(&input, &warm_pass);
    group.bench_function("decide_warm", |b| {
        b.iter(|| black_box(warm.decide(black_box(&input))));
    });

    group.bench_function("converge_run", |b| {
        b.iter(|| black_box(run_fleet(&FleetConfig::converge_on(), 42).unwrap()));
    });
    group.bench_function("baseline_run", |b| {
        b.iter(|| black_box(run_fleet(&FleetConfig::converge(), 42).unwrap()));
    });
    group.bench_function("pingpong_run", |b| {
        b.iter(|| black_box(run_fleet(&FleetConfig::pingpong(), 42).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_advisor);
criterion_main!(benches);
