//! E18 — fleet capacity: what one wall-clock second of the federation
//! buys at population scale.
//!
//! Unlike E1–E17 (per-mechanism microbenchmarks), these rows time whole
//! fleet scenarios through `mrom_fleet::run_fleet`: bring-up, seeded
//! Zipf traffic, migration slots, drain, invariant scan, and telemetry
//! fold, end to end. The absolute capacity figures (invocations/sec per
//! site, migration throughput, bytes per object) ship separately in
//! `BENCH_FLEET.json` via `mrom-fleet bench`; this harness keeps the
//! scenario path on the perf radar next to the other experiments:
//!
//! * **star_small / hier_small** — the same small fleet on the two
//!   headline topologies (topology cost is mostly bring-up: the star
//!   links once per spoke, the hierarchy per cluster + backbone);
//! * **migration_heavy** — every fourth op dispatches a Zipf-drawn
//!   object, so the row is dominated by image encode/ship/adopt;
//! * **marketplace_round** — capability cards, negotiated method
//!   imports, and Strict refusals over four sites;
//! * **zipf_sample** — the per-op sampling cost (one uniform draw plus
//!   a binary search over the cumulative table).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mrom_fleet::{run_fleet, run_marketplace, FleetConfig, Zipf};
use mrom_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small enough for a criterion iteration, big enough to exercise every
/// mechanism: 4 sites × 16 objects, 80 ops, no churn (churn rows would
/// time the retry backoff schedule, not the engine).
fn small(topology: Topology, migration_every: usize) -> FleetConfig {
    FleetConfig {
        topology,
        sites: 4,
        objects_per_site: 16,
        invocations: 80,
        churn_events: 0,
        migration_every,
        zipf_permille: 1100,
        workers: 1,
        ..FleetConfig::smoke()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_fleet");
    group.sample_size(10);

    group.bench_function("star_small", |b| {
        b.iter(|| black_box(run_fleet(&small(Topology::Star, 16), 42).unwrap()));
    });
    group.bench_function("hier_small", |b| {
        b.iter(|| {
            black_box(
                run_fleet(&small(Topology::Hierarchical { cluster_size: 2 }, 16), 42).unwrap(),
            )
        });
    });
    group.bench_function("migration_heavy", |b| {
        b.iter(|| black_box(run_fleet(&small(Topology::Star, 4), 42).unwrap()));
    });
    group.bench_function("marketplace_round", |b| {
        b.iter(|| black_box(run_marketplace(42).unwrap()));
    });

    let zipf = Zipf::new(100_000, 1100);
    let mut rng = StdRng::seed_from_u64(7);
    group.bench_function("zipf_sample", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
