//! E12 — the price of admission (PR 2).
//!
//! Static admission analysis runs on every migration image a strict host
//! accepts, so its cost is part of the migration latency budget. Rows:
//! the analyzer alone on small and large method programs, whole-object
//! analysis as the method count grows, and the end-to-end `from_image`
//! path under each [`AdmissionPolicy`] — `Off` is the PR-1 baseline,
//! `Strict` is what a wary host actually pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_bench::bench_ids;
use mrom_core::{AdmissionPolicy, DataItem, Method, MethodBody, MromObject, ObjectBuilder};
use mrom_script::analyze::analyze_program;
use mrom_script::Program;
use mrom_value::Value;

const SMALL_SRC: &str = "param a; param b; let t = self.get(\"count\"); \
                         self.set(\"count\", t + a + b); return t;";

/// A loop-free body with many statements and host calls, shaped like a
/// real installation script rather than a synthetic worst case.
fn large_src() -> String {
    let mut src = String::from("param seed; let acc = seed;\n");
    for i in 0..120 {
        src.push_str(&format!(
            "let v{i} = acc + {i}; acc = v{i} * 2 - acc; \
             self.set(\"slot{}\", acc);\n",
            i % 8
        ));
    }
    src.push_str("return acc;");
    src
}

/// An object with `n` script methods over shared data, as a migration
/// candidate would carry.
fn scripted_object(n: usize) -> MromObject {
    let mut ids = bench_ids();
    let mut builder = ObjectBuilder::new(ids.next_id()).class("migrant");
    for s in 0..8 {
        builder = builder.fixed_data(&format!("slot{s}"), DataItem::public(Value::Int(0)));
    }
    builder = builder.fixed_data("count", DataItem::public(Value::Int(0)));
    for m in 0..n {
        builder = builder.fixed_method(
            &format!("m{m}"),
            Method::public(MethodBody::script(SMALL_SRC).expect("parse")),
        );
    }
    builder.build()
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_admission");

    // Analyzer alone, per program.
    let small = Program::parse(SMALL_SRC).expect("parse");
    group.bench_function("analyze_small_program", |b| {
        b.iter(|| black_box(analyze_program(black_box(&small))));
    });
    let large = Program::parse(&large_src()).expect("parse");
    group.bench_function("analyze_large_program", |b| {
        b.iter(|| black_box(analyze_program(black_box(&large))));
    });

    // Whole-object analysis (scope + manifest + cross-check + budgets).
    for n in [1usize, 8, 32] {
        let obj = scripted_object(n);
        group.bench_with_input(BenchmarkId::new("object_analyze", n), &n, |b, _| {
            b.iter(|| black_box(obj.analyze()));
        });
    }

    // End-to-end admission at the migration boundary.
    let obj = scripted_object(8);
    let image = obj.migration_image(obj.id()).expect("image");
    for (label, policy) in [
        ("off", AdmissionPolicy::Off),
        ("warn", AdmissionPolicy::Warn),
        ("strict", AdmissionPolicy::Strict),
    ] {
        group.bench_with_input(
            BenchmarkId::new("from_image", label),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(
                        MromObject::from_image_with_policy(black_box(&image), policy).unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
