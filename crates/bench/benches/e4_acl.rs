//! E4 — the Match phase (§3.1): security coupled with encapsulation.
//!
//! Every invocation pays one ACL check. Rows: public policy, origin
//! policy, explicit lists of 1..1024 principals (hit in the middle), and
//! the denial path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_bench::{acl_gated, bench_ids};
use mrom_core::{invoke, Acl, Method, MethodBody, NoWorld, ObjectBuilder};

fn bench_acl(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_acl");
    let mut ids = bench_ids();

    // Public and origin policies.
    for (label, acl) in [("public", Acl::Public), ("origin", Acl::Origin)] {
        let method = Method::new(MethodBody::native(|_, _| Ok(mrom_value::Value::Int(1))))
            .with_invoke_acl(acl);
        let mut obj = ObjectBuilder::new(ids.next_id())
            .fixed_method("m", method)
            .build();
        let caller = if label == "origin" {
            obj.id()
        } else {
            ids.next_id()
        };
        let mut world = NoWorld;
        group.bench_function(format!("granted_{label}"), |b| {
            b.iter(|| black_box(invoke(&mut obj, &mut world, caller, "m", &[]).unwrap()));
        });
    }

    // Explicit list sizes.
    for size in [1usize, 16, 128, 1024] {
        let mut ids = bench_ids();
        let (mut obj, admitted, rejected) = acl_gated(&mut ids, size);
        let mut world = NoWorld;
        group.bench_with_input(BenchmarkId::new("granted_list", size), &size, |b, _| {
            b.iter(|| black_box(invoke(&mut obj, &mut world, admitted, "gated", &[]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("denied_list", size), &size, |b, _| {
            b.iter(|| black_box(invoke(&mut obj, &mut world, rejected, "gated", &[]).unwrap_err()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_acl);
criterion_main!(benches);
