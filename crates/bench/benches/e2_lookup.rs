//! E2 — the price of structural mutability (§3).
//!
//! "Structural mutability bears some price on performance, because it
//! implies that technically there must be an internal mechanism to lookup
//! the location of an item before accessing it ... whereas in static
//! structures the location is determined at compile time as a fixed
//! offset."
//!
//! Rows: a statically dispatched Rust call, MROM invocation of a
//! native-bodied method in the fixed vs. extensible section, with the
//! container crowded by 4..4096 siblings, plus the same body as script.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_baselines::StaticCounter;
use mrom_bench::{bench_ids, counter_among, script_counter};
use mrom_core::{invoke, NoWorld};
use mrom_value::Value;

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_lookup");
    let args = [Value::Int(20), Value::Int(22)];

    // Baseline: the compiler resolved everything.
    let mut statik = StaticCounter::new();
    group.bench_function("static_direct_call", |b| {
        b.iter(|| black_box(statik.add(black_box(20), black_box(22))));
    });
    group.bench_function("static_uniform_entry", |b| {
        b.iter(|| black_box(statik.call(black_box("add"), &args).unwrap()));
    });

    // MROM native-bodied invocation across container sizes and sections.
    for n in [4usize, 64, 512, 4096] {
        for (label, extensible) in [("fixed", false), ("extensible", true)] {
            let mut ids = bench_ids();
            let mut obj = counter_among(&mut ids, n, extensible);
            let caller = ids.next_id();
            let mut world = NoWorld;
            group.bench_with_input(BenchmarkId::new(format!("mrom_{label}"), n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        invoke(&mut obj, &mut world, caller, black_box("m_add"), &args).unwrap(),
                    )
                });
            });
        }
    }

    // The same add as interpreted mobile code (full reflective stack).
    let mut ids = bench_ids();
    let mut obj = script_counter(&mut ids);
    let caller = ids.next_id();
    let mut world = NoWorld;
    group.bench_function("mrom_script_body", |b| {
        b.iter(|| black_box(invoke(&mut obj, &mut world, caller, "add", &args).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
