//! E14 — parallel invocation throughput on the sharded shared runtime.
//!
//! Each sample executes a fixed batch of `TOTAL_OPS` script invocations,
//! split across 1/2/4/8 worker threads over one
//! [`mrom_core::SharedRuntime`]:
//!
//! * **disjoint** — every worker hammers its own object (the scaling
//!   case the sharded checkout protocol is built for), with the `bump`
//!   method living in the fixed or the extensible section;
//! * **contended** — every worker hammers the *same* object, retrying
//!   through [`mrom_core::MromError::ObjectBusy`] until its share of the
//!   batch lands (the pathological column: object-granularity locking
//!   serialises it by design, so this prices the retry loop, not magic).
//!
//! Because the batch size is constant, ns/iter across worker counts
//! converts directly into the speedup figure the experiment reports:
//! `speedup(k) = median(1 worker) / median(k workers)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::thread;

use mrom_core::{
    DataItem, Method, MethodBody, MromError, MromObject, ObjectBuilder, SharedRuntime,
};
use mrom_value::{NodeId, ObjectId, Value};

/// Invocations per sample, constant across worker counts.
const TOTAL_OPS: usize = 2048;
/// The worker-count sweep.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// The script counter, with `bump` in the fixed or extensible section.
fn counter(id: ObjectId, extensible: bool) -> MromObject {
    let bump = Method::public(
        MethodBody::script(
            "self.set(\"count\", self.get(\"count\") + 1); return self.get(\"count\");",
        )
        .expect("bump parses"),
    );
    let b = ObjectBuilder::new(id)
        .class("e14-counter")
        .fixed_data("count", DataItem::public(Value::Int(0)));
    if extensible {
        b.ext_method("bump", bump).build()
    } else {
        b.fixed_method("bump", bump).build()
    }
}

/// A shared runtime hosting `n` counters.
fn fixture(n: usize, extensible: bool) -> (SharedRuntime, Vec<ObjectId>) {
    let shared = SharedRuntime::new(NodeId(0xe14));
    let ids = (0..n)
        .map(|_| {
            shared
                .adopt(counter(shared.ids().next_id(), extensible))
                .expect("adopts")
        })
        .collect();
    (shared, ids)
}

/// One batch: `workers` threads, each bumping its own object.
fn run_disjoint(shared: &SharedRuntime, ids: &[ObjectId], workers: usize) {
    let per_worker = TOTAL_OPS / workers;
    thread::scope(|s| {
        for id in ids.iter().take(workers) {
            s.spawn(move || {
                for _ in 0..per_worker {
                    black_box(
                        shared
                            .invoke(ObjectId::SYSTEM, *id, "bump", &[])
                            .expect("disjoint objects never contend"),
                    );
                }
            });
        }
    });
}

/// One batch: `workers` threads all bumping one object, retrying through
/// `ObjectBusy` until each lands its share.
fn run_contended(shared: &SharedRuntime, id: ObjectId, workers: usize) {
    let per_worker = TOTAL_OPS / workers;
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || {
                let mut landed = 0;
                while landed < per_worker {
                    match shared.invoke(ObjectId::SYSTEM, id, "bump", &[]) {
                        Ok(v) => {
                            black_box(v);
                            landed += 1;
                        }
                        Err(MromError::ObjectBusy(_)) => thread::yield_now(),
                        Err(e) => panic!("contended bump failed: {e:?}"),
                    }
                }
            });
        }
    });
}

fn bench_parallel_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_parallel_throughput");
    group.sample_size(20);

    for extensible in [false, true] {
        let label = if extensible {
            "disjoint_extensible"
        } else {
            "disjoint_fixed"
        };
        for workers in WORKERS {
            let (shared, ids) = fixture(workers, extensible);
            group.bench_with_input(BenchmarkId::new(label, workers), &workers, |b, &workers| {
                b.iter(|| run_disjoint(&shared, &ids, workers));
            });
        }
    }

    for workers in WORKERS {
        let (shared, ids) = fixture(1, false);
        group.bench_with_input(
            BenchmarkId::new("contended_fixed", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_contended(&shared, ids[0], workers));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_parallel_throughput);
criterion_main!(benches);
