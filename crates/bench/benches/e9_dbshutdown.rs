//! E9 — the §5 database-maintenance scenario as a measured operation.
//!
//! Rows: pushing the maintenance meta-invoke to fleets of 1..8 deployed
//! Ambassadors (engine cost; the virtual-time propagation appears in
//! `tables`), the per-query cost while the notice is installed vs. normal
//! operation, and lifting the notice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hadas::scenarios::{
    deploy_employee_db, lift_maintenance_notice, push_maintenance_notice, star_federation,
};
use mrom_net::LinkConfig;
use mrom_value::Value;

fn bench_shutdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_dbshutdown");
    group.sample_size(20);

    for spokes in [1u64, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("push_notice", spokes),
            &spokes,
            |b, &spokes| {
                b.iter_with_setup(
                    || {
                        let (mut fed, nodes) =
                            star_federation(1, spokes + 1, LinkConfig::lan()).unwrap();
                        deploy_employee_db(&mut fed, nodes[0], &nodes[1..]).unwrap();
                        (fed, nodes)
                    },
                    |(mut fed, nodes)| {
                        let n = push_maintenance_notice(&mut fed, nodes[0]).unwrap();
                        assert_eq!(n as u64, spokes);
                        black_box(fed)
                    },
                );
            },
        );
    }

    // Query cost with and without the notice installed.
    let (mut fed, nodes) = star_federation(2, 2, LinkConfig::lan()).unwrap();
    let hub = nodes[0];
    let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
    let (spoke, amb) = ambs[0];
    let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();

    group.bench_function("query_normal", |b| {
        b.iter(|| {
            black_box(
                fed.call_through_ambassador(spoke, client, amb, "count", &[])
                    .unwrap(),
            )
        });
    });
    push_maintenance_notice(&mut fed, hub).unwrap();
    group.bench_function("query_during_maintenance", |b| {
        b.iter(|| {
            let out = fed
                .call_through_ambassador(spoke, client, amb, "count", &[])
                .unwrap();
            assert_eq!(out, Value::from("database is down for maintenance"));
            black_box(out)
        });
    });
    lift_maintenance_notice(&mut fed, hub).unwrap();
    group.finish();
}

criterion_group!(benches, bench_shutdown);
criterion_main!(benches);
