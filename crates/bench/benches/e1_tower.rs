//! E1 — Figure 1: the invocation tower.
//!
//! Measures level-0 invocation against 1-, 2-, and 4-level meta-invoke
//! towers (each level a script pass-through), plus the meta-method path
//! `invoke("invoke", ...)`. The paper's claim: meta-levels buy semantic
//! flexibility at a bounded per-level cost; level 0 stays the fast,
//! non-reflective floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_bench::{bench_ids, script_counter};
use mrom_core::{invoke, Method, MethodBody, NoWorld};
use mrom_value::Value;

fn towered_counter(levels: usize) -> (mrom_core::MromObject, mrom_value::ObjectId) {
    let mut ids = bench_ids();
    let mut obj = script_counter(&mut ids);
    let me = obj.id();
    for i in 0..levels {
        let name = format!("meta_invoke_{i}");
        obj.add_method(
            me,
            &name,
            Method::public(
                MethodBody::script("param m; param a; return self.invoke(m, a);")
                    .expect("meta parses"),
            ),
        )
        .expect("fresh name");
        obj.install_meta_invoke(me, &name).expect("extensible");
    }
    let caller = ids.next_id();
    (obj, caller)
}

fn bench_tower(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_tower");
    let args = [Value::Int(20), Value::Int(22)];
    for levels in [0usize, 1, 2, 4] {
        let (mut obj, caller) = towered_counter(levels);
        let mut world = NoWorld;
        group.bench_with_input(BenchmarkId::new("invoke_add", levels), &levels, |b, _| {
            b.iter(|| {
                let out = invoke(&mut obj, &mut world, caller, black_box("add"), &args).unwrap();
                black_box(out)
            });
        });
    }
    // The reflexive path: invoke through the invoke meta-method.
    let (mut obj, caller) = towered_counter(0);
    let mut world = NoWorld;
    let meta_args = [
        Value::from("add"),
        Value::list([Value::Int(20), Value::Int(22)]),
    ];
    group.bench_function("invoke_via_meta_invoke", |b| {
        b.iter(|| {
            let out = invoke(&mut obj, &mut world, caller, "invoke", &meta_args).unwrap();
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_tower);
criterion_main!(benches);
