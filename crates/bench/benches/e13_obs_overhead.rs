//! E13 — observability overhead on the level-0 fast path.
//!
//! The same repeated dispatch as E2/E11's cache-hit regime, A/B/C'd over
//! the three observability modes:
//!
//! * **disabled** — the zero-cost claim: one thread-local byte read per
//!   instrumentation point, no events, no counters, no clocks.
//! * **ring** — events into the bounded flight recorder plus counter
//!   updates, but no wall-clock reads.
//! * **full** — everything in ring, plus `Instant`-based latency
//!   histograms per invocation.
//!
//! The disabled numbers are the ones the <3% regression gate (vs the
//! pre-observability E2/E11 baselines) is checked against.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mrom_bench::{bench_ids, counter_among};
use mrom_core::{invoke, NoWorld};
use mrom_obs::ObsMode;
use mrom_value::Value;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_obs_overhead");
    let args = [Value::Int(20), Value::Int(22)];

    for (label, mode) in [
        ("disabled", ObsMode::Disabled),
        ("ring", ObsMode::Ring),
        ("full", ObsMode::Full),
    ] {
        for (section, extensible) in [("fixed", false), ("extensible", true)] {
            let mut ids = bench_ids();
            let mut obj = counter_among(&mut ids, 64, extensible);
            let caller = ids.next_id();
            let mut world = NoWorld;
            mrom_obs::reset();
            mrom_obs::set_mode(mode);
            group.bench_function(format!("{label}_{section}"), |b| {
                b.iter(|| {
                    black_box(
                        invoke(&mut obj, &mut world, caller, black_box("m_add"), &args).unwrap(),
                    )
                });
            });
            mrom_obs::set_mode(ObsMode::Disabled);
        }
    }

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
