//! Ablations — isolating the cost of each design choice called out in
//! `DESIGN.md`, so the composite numbers in E1-E10 can be attributed:
//!
//! * **lookup_only** — phase 1 of level-0 invocation alone (`find_method`)
//!   on fixed (sorted array) vs extensible (B-tree) containers;
//! * **acl_check_only** — phase 2 alone (`acl_allows`) across policies;
//! * **method_snapshot** — the clone-at-lookup design that lets running
//!   bodies mutate their own object (Arc-based, so O(1));
//! * **wire_codec** — the self-contained TLV encode/decode throughput;
//! * **script_interpreter** — the raw evaluator on a tight loop, the cost
//!   floor under every mobile body (fuel metering included);
//! * **value_clone** — the copy cost of the dynamic value representation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mrom_bench::{acl_gated, bench_ids, cargo_object, counter_among};
use mrom_core::Acl;
use mrom_script::{Evaluator, NullHost, Program};
use mrom_value::{wire, Value};

fn bench_ablations(c: &mut Criterion) {
    // Phase 1 alone: lookup.
    {
        let mut group = c.benchmark_group("ablation_lookup_only");
        for n in [4usize, 64, 512, 4096] {
            for (label, ext) in [("fixed", false), ("extensible", true)] {
                let mut ids = bench_ids();
                let obj = counter_among(&mut ids, n, ext);
                group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                    b.iter(|| black_box(obj.find_method(black_box("m_add")).is_some()));
                });
            }
        }
        group.finish();
    }

    // Phase 2 alone: the ACL predicate.
    {
        let mut group = c.benchmark_group("ablation_acl_check_only");
        let mut ids = bench_ids();
        let (obj, admitted, _) = acl_gated(&mut ids, 128);
        let (method, _) = obj.find_method("gated").unwrap();
        let acl = method.invoke_acl().clone();
        group.bench_function("list_128_hit", |b| {
            b.iter(|| black_box(obj.acl_allows(&acl, black_box(admitted))));
        });
        let public = Acl::Public;
        group.bench_function("public", |b| {
            b.iter(|| black_box(obj.acl_allows(&public, black_box(admitted))));
        });
        let origin = Acl::Origin;
        group.bench_function("origin_miss", |b| {
            b.iter(|| black_box(obj.acl_allows(&origin, black_box(admitted))));
        });
        group.finish();
    }

    // The snapshot clone made at every lookup (design choice: running
    // bodies may replace themselves without invalidating the application).
    {
        let mut group = c.benchmark_group("ablation_method_snapshot");
        let mut ids = bench_ids();
        let obj = mrom_bench::script_counter(&mut ids);
        let (method, _) = obj.find_method("bump").unwrap();
        group.bench_function("clone_script_method", |b| {
            b.iter(|| black_box(method.clone()));
        });
        group.finish();
    }

    // Wire codec throughput on a realistic migration image.
    {
        let mut group = c.benchmark_group("ablation_wire_codec");
        let mut ids = bench_ids();
        let obj = cargo_object(&mut ids, 64, 64);
        let image_value = obj.image_value().unwrap();
        let encoded = wire::encode(&image_value);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_function("encode", |b| {
            b.iter(|| black_box(wire::encode(black_box(&image_value))));
        });
        group.bench_function("decode", |b| {
            b.iter(|| black_box(wire::decode(black_box(&encoded)).unwrap()));
        });
        group.finish();
    }

    // The interpreter floor: a 1000-iteration arithmetic loop.
    {
        let mut group = c.benchmark_group("ablation_script_interpreter");
        let program =
            Program::parse("let s = 0; for (i in range(1000)) { s = s + i * 2; } return s;")
                .unwrap();
        group.bench_function("loop_1000_iters", |b| {
            b.iter(|| {
                let mut host = NullHost;
                let out = Evaluator::new(&mut host).run(&program, &[]).unwrap();
                black_box(out)
            });
        });
        let parse_src = "param a; param b; if (a > b) { return a - b; } return b - a;";
        group.bench_function("parse_small_method", |b| {
            b.iter(|| black_box(Program::parse(black_box(parse_src)).unwrap()));
        });
        group.finish();
    }

    // Dynamic value copies (the weak-typing tax on every call boundary).
    {
        let mut group = c.benchmark_group("ablation_value_clone");
        let small = Value::Int(42);
        let medium = Value::map([
            ("name", Value::from("alice")),
            (
                "tags",
                Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]),
            ),
        ]);
        group.bench_function("scalar", |b| b.iter(|| black_box(small.clone())));
        group.bench_function("small_map", |b| b.iter(|| black_box(medium.clone())));
        group.finish();
    }
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
