//! E15 — register bytecode VM vs tree-walking interpreter (PR 6).
//!
//! Script bodies are the mobile representation of MROM behaviour, so their
//! execution speed bounds every script-bodied invocation. PR 6 compiles
//! admitted bodies to register bytecode at admission time; E15 measures
//! the same programs under both engines: loop-heavy numeric work (where
//! tree-walking overhead dominates), a straight-line body (dispatch cost
//! floor), and full `invoke` round-trips whose `self.get`/`self.set`
//! traffic exercises the inline data caches. Compilation itself is also
//! priced, since admission pays it once per admitted body.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_bench::bench_ids;
use mrom_core::{
    invoke, set_script_engine, DataItem, Method, MethodBody, MromObject, NoWorld, ObjectBuilder,
    ScriptEngine,
};
use mrom_script::{Evaluator, NullHost, Program, Vm};
use mrom_value::Value;

/// Loop-heavy numeric body: `n` iterations of arithmetic on locals —
/// the shape the register VM targets (≥100 iterations per the E15 gate).
const LOOP_SRC: &str = "param n; let acc = 0; let i = 0; \
                        while (i < n) { \
                            acc = acc + i * 2 - acc / 3; \
                            if (acc > 1000) { acc = acc - 997; } \
                            i = i + 1; \
                        } \
                        return acc;";

/// Straight-line body: binds the per-call floor (frame setup + a few ops).
const STRAIGHT_SRC: &str = "param a; param b; return (a + b) * (a - b) + a % 7;";

/// Invocation body whose hot loop is `self` data traffic — the inline-
/// cache target shape.
const IC_SRC: &str = "param n; let i = 0; \
                      while (i < n) { \
                          self.set(\"count\", self.get(\"count\") + 1); \
                          i = i + 1; \
                      } \
                      return self.get(\"count\");";

const FUEL: u64 = 10_000_000;

fn counter_object() -> MromObject {
    let mut ids = bench_ids();
    ObjectBuilder::new(ids.next_id())
        .class("e15-counter")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "tally",
            Method::public(MethodBody::script(IC_SRC).expect("parse")),
        )
        .build()
}

fn bench_script_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_script_vm");

    let loop_p = Program::parse(LOOP_SRC).expect("parse");
    let straight_p = Program::parse(STRAIGHT_SRC).expect("parse");
    let loop_args = [Value::Int(200)];
    let straight_args = [Value::Int(17), Value::Int(5)];

    // Engine-level A/B on the identical Program values.
    for (label, p, args) in [
        ("loop200", &loop_p, &loop_args[..]),
        ("straight", &straight_p, &straight_args[..]),
    ] {
        group.bench_function(BenchmarkId::new("interp", label), |b| {
            b.iter(|| {
                let mut host = NullHost;
                let mut ev = Evaluator::with_fuel(&mut host, FUEL);
                black_box(ev.run(black_box(p), black_box(args)).expect("runs"))
            });
        });
        let compiled = p.compiled();
        group.bench_function(BenchmarkId::new("vm", label), |b| {
            b.iter(|| {
                let mut host = NullHost;
                let mut vm = Vm::with_fuel(&mut host, FUEL);
                black_box(vm.run(black_box(&compiled), black_box(args)).expect("runs"))
            });
        });
    }

    // What admission pays: parse is shared, compile is the PR-6 delta.
    group.bench_function("admission/parse_only", |b| {
        b.iter(|| black_box(Program::parse(black_box(LOOP_SRC)).expect("parse")));
    });
    group.bench_function("admission/parse_and_compile", |b| {
        b.iter(|| {
            let p = Program::parse(black_box(LOOP_SRC)).expect("parse");
            black_box(p.compiled())
        });
    });

    // Full invoke round-trip: Lookup → Match → Apply with the body's
    // `self.get`/`self.set` loop hitting (VM) or bypassing (interp) the
    // inline data caches. Fresh object per iteration so `count` growth
    // never changes the arithmetic between engines.
    for (label, engine) in [("interp", ScriptEngine::Interp), ("vm", ScriptEngine::Vm)] {
        group.bench_function(BenchmarkId::new("invoke_ic_loop100", label), |b| {
            set_script_engine(engine);
            let mut ids = bench_ids();
            let caller = ids.next_id();
            b.iter(|| {
                let mut obj = counter_object();
                let out = invoke(
                    &mut obj,
                    &mut NoWorld,
                    caller,
                    "tally",
                    black_box(&[Value::Int(100)]),
                )
                .expect("runs");
                black_box(out)
            });
        });
        set_script_engine(ScriptEngine::Vm);
    }

    group.finish();
}

criterion_group!(benches, bench_script_vm);
criterion_main!(benches);
