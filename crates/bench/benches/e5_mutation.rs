//! E5 — mutation throughput: the cost of *being* mutable.
//!
//! Rows: addDataItem+deleteDataItem and addMethod+deleteMethod cycles at
//! several extensible-container populations, a setMethod body replacement,
//! plain value writes (fixed vs extensible), and the cost of the
//! fixed-section violation error path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mrom_bench::{bench_ids, cargo_object, script_counter};
use mrom_core::{Method, MethodBody};
use mrom_value::Value;

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_mutation");

    for population in [0usize, 64, 1024] {
        let mut ids = bench_ids();
        let mut obj = cargo_object(&mut ids, population, 8);
        let me = obj.id();
        group.bench_with_input(
            BenchmarkId::new("add_delete_data", population),
            &population,
            |b, _| {
                b.iter(|| {
                    obj.add_data(me, "probe", Value::Int(1)).unwrap();
                    obj.delete_data(me, "probe").unwrap();
                });
            },
        );
        let method = Method::public(MethodBody::script("return 1;").unwrap());
        group.bench_with_input(
            BenchmarkId::new("add_delete_method", population),
            &population,
            |b, _| {
                b.iter(|| {
                    obj.add_method(me, "probe_m", method.clone()).unwrap();
                    obj.delete_method(me, "probe_m").unwrap();
                });
            },
        );
    }

    // setMethod: replace a body through the descriptor path (includes
    // re-parsing the script source).
    let mut ids = bench_ids();
    let mut obj = script_counter(&mut ids);
    let me = obj.id();
    obj.add_method(
        me,
        "volatile",
        Method::public(MethodBody::script("return 1;").unwrap()),
    )
    .unwrap();
    let desc = Value::map([("body", Value::from("return 2;"))]);
    group.bench_function("set_method_body", |b| {
        b.iter(|| obj.set_method(me, "volatile", black_box(&desc)).unwrap());
    });

    // Value writes: fixed vs extensible slots.
    let mut obj = script_counter(&mut ids);
    let me = obj.id();
    obj.add_data(me, "ext_slot", Value::Int(0)).unwrap();
    group.bench_function("write_fixed_value", |b| {
        b.iter(|| {
            obj.write_data(me, "count", black_box(Value::Int(5)))
                .unwrap();
        });
    });
    group.bench_function("write_ext_value", |b| {
        b.iter(|| {
            obj.write_data(me, "ext_slot", black_box(Value::Int(5)))
                .unwrap();
        });
    });

    // The guarded error path: attempting to delete fixed structure.
    group.bench_function("fixed_violation_error", |b| {
        b.iter(|| black_box(obj.delete_data(me, "count").unwrap_err()));
    });
    group.finish();
}

criterion_group!(benches, bench_mutation);
criterion_main!(benches);
