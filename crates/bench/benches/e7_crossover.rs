//! E7 — the mobile-code crossover (the introduction's motivation).
//!
//! Two strategies for a client that will call a remote service `k` times:
//! relay every call over the link, or migrate the method once and call
//! locally. This bench measures the *engine* cost of both paths at small
//! `k`; the deterministic virtual-time crossover sweep (who wins at which
//! `k` and latency) is printed by the `tables` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hadas::{AmbassadorSpec, Federation};
use mrom_bench::employee_db;
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_value::{NodeId, Value};

fn deployed_pair(seed: u64) -> (Federation, mrom_value::ObjectId, mrom_value::ObjectId) {
    let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::wan());
    let mut fed = Federation::new(cfg);
    let (client_site, server) = (NodeId(1), NodeId(2));
    fed.add_site(client_site).unwrap();
    fed.add_site(server).unwrap();
    fed.link(client_site, server).unwrap();
    let apo =
        employee_db().instantiate_as(fed.runtime_mut(server).unwrap().ids_mut().next_id(), None);
    fed.integrate_apo(server, "db", apo, AmbassadorSpec::relay_only())
        .unwrap();
    let amb = fed.import_apo(client_site, server, "db").unwrap();
    let client = fed.runtime_mut(client_site).unwrap().ids_mut().next_id();
    (fed, amb, client)
}

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_crossover");
    group.sample_size(30);
    let args = [Value::from("alice")];

    for k in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("relay_per_call", k), &k, |b, &k| {
            b.iter_with_setup(
                || deployed_pair(1),
                |(mut fed, amb, client)| {
                    for _ in 0..k {
                        black_box(
                            fed.call_through_ambassador(NodeId(1), client, amb, "salary_of", &args)
                                .unwrap(),
                        );
                    }
                    black_box(fed)
                },
            );
        });
        group.bench_with_input(BenchmarkId::new("migrate_then_local", k), &k, |b, &k| {
            b.iter_with_setup(
                || deployed_pair(2),
                |(mut fed, amb, client)| {
                    fed.migrate_method(NodeId(2), "db", "salary_of").unwrap();
                    // The ambassador needs the data its method reads.
                    let apo_id = fed.apo_id(NodeId(2), "db").unwrap();
                    let employees = fed
                        .runtime(NodeId(2))
                        .unwrap()
                        .object(apo_id)
                        .unwrap()
                        .read_data(apo_id, "employees")
                        .unwrap();
                    fed.push_update(
                        NodeId(2),
                        "db",
                        &[hadas::UpdateOp::AddData("employees".into(), employees)],
                    )
                    .unwrap();
                    for _ in 0..k {
                        black_box(
                            fed.call_through_ambassador(NodeId(1), client, amb, "salary_of", &args)
                                .unwrap(),
                        );
                    }
                    black_box(fed)
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
