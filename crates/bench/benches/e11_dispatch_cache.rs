//! E11 — the generation-stamped dispatch cache on the level-0 fast path.
//!
//! Three regimes:
//!
//! * **cache-hit** — repeated dispatch of one method; after the first
//!   iteration every lookup is served from the cache (a sealed fixed-slot
//!   index or a stamped `Arc` handle).
//! * **cache-miss** — a structural mutation precedes every dispatch, so
//!   the stamped entry for the extensible target is stale each time and
//!   the lookup falls back to full resolution before re-stamping.
//! * **invalidation-storm** — add/dispatch/delete of a transient method
//!   every iteration: the worst case where the cache can never help and
//!   only its bookkeeping overhead shows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mrom_bench::{bench_ids, counter_among};
use mrom_core::{invoke, Method, MethodBody, NoWorld};
use mrom_value::Value;

fn bench_dispatch_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_dispatch_cache");
    let args = [Value::Int(20), Value::Int(22)];

    // Cache-hit: the same method dispatched over and over, among 64
    // siblings, for both sections.
    for (label, extensible) in [("hit_fixed", false), ("hit_extensible", true)] {
        let mut ids = bench_ids();
        let mut obj = counter_among(&mut ids, 64, extensible);
        let caller = ids.next_id();
        let mut world = NoWorld;
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(invoke(&mut obj, &mut world, caller, black_box("m_add"), &args).unwrap())
            });
        });
    }

    // Cache-miss: an unrelated setMethod bumps the generation before each
    // dispatch, so the extensible target's stamp never matches.
    {
        let mut ids = bench_ids();
        let mut obj = counter_among(&mut ids, 64, true);
        let me = obj.id();
        obj.add_method(
            me,
            "sacrifice",
            Method::public(MethodBody::native(|_, _| Ok(Value::Null))),
        )
        .unwrap();
        let caller = ids.next_id();
        let mut world = NoWorld;
        let poke = Value::map([("invoke_acl", Value::from("public"))]);
        group.bench_function("miss_after_mutation", |b| {
            b.iter(|| {
                obj.set_method(me, "sacrifice", &poke).unwrap();
                black_box(invoke(&mut obj, &mut world, caller, black_box("m_add"), &args).unwrap())
            });
        });
    }

    // Invalidation-storm: a transient method is added, dispatched once,
    // and deleted, every single iteration.
    {
        let mut ids = bench_ids();
        let mut obj = counter_among(&mut ids, 64, true);
        let me = obj.id();
        let mut world = NoWorld;
        let transient = Method::public(MethodBody::native(|_, _| Ok(Value::Int(1))));
        group.bench_function("invalidation_storm", |b| {
            b.iter(|| {
                obj.add_method(me, "transient", transient.clone()).unwrap();
                let out = black_box(invoke(&mut obj, &mut world, me, "transient", &[]).unwrap());
                obj.delete_method(me, "transient").unwrap();
                out
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_dispatch_cache);
criterion_main!(benches);
