//! E8 — §2 made quantitative: dynamic invocation across object models.
//!
//! The same conceptual call (`add(20, 22)` on a counter) through each
//! model's own idiom: static Rust, Java-style introspection, CORBA-style
//! DII (request built per call vs. prebuilt), DCOM-style QueryInterface
//! (query per call vs. cached handle), and MROM (native body, script body,
//! and the full `invoke` meta-method path). The capability matrix behind
//! the cost differences is printed by the `tables` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mrom_baselines::com::counter_object;
use mrom_baselines::dii::{counter_setup, Request};
use mrom_baselines::introspect::counter_class;
use mrom_baselines::StaticCounter;
use mrom_bench::{bench_ids, native_counter, script_counter};
use mrom_core::{invoke, NoWorld};
use mrom_value::Value;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_models");
    let args = [Value::Int(20), Value::Int(22)];

    // Static Rust.
    let statik = StaticCounter::new();
    group.bench_function("static", |b| {
        b.iter(|| black_box(statik.add(black_box(20), black_box(22))));
    });

    // Java-style introspection: invoke by name.
    let class = counter_class();
    let mut obj = class.instantiate();
    group.bench_function("introspect_invoke", |b| {
        b.iter(|| black_box(obj.invoke(black_box("add"), &args).unwrap()));
    });

    // CORBA DII: repository lookup + request build + invoke, every call.
    let (repo, servant) = counter_setup();
    group.bench_function("dii_build_and_invoke", |b| {
        b.iter(|| {
            let req = Request::build(&repo, "Counter", black_box("add"), &args).unwrap();
            black_box(servant.invoke(&req).unwrap())
        });
    });
    // DII with the request built once (the repeated-call pattern).
    let req = Request::build(&repo, "Counter", "add", &args).unwrap();
    group.bench_function("dii_prebuilt_invoke", |b| {
        b.iter(|| black_box(servant.invoke(black_box(&req)).unwrap()));
    });

    // DCOM QueryInterface: query + vtable call per call, and cached.
    let mut com = counter_object();
    group.bench_function("com_query_and_call", |b| {
        b.iter(|| {
            let iface = com.query_interface(black_box("ICounter")).unwrap();
            let slot = iface.slot_index("add").unwrap();
            black_box(com.call(&iface, slot, &args).unwrap())
        });
    });
    let iface = com.query_interface("ICounter").unwrap();
    let slot = iface.slot_index("add").unwrap();
    group.bench_function("com_cached_call", |b| {
        b.iter(|| black_box(com.call(&iface, black_box(slot), &args).unwrap()));
    });

    // MROM: native body, script body, and the reflexive invoke path.
    let mut ids = bench_ids();
    let mut world = NoWorld;
    let caller = ids.next_id();
    let mut native = native_counter(&mut ids);
    group.bench_function("mrom_native", |b| {
        b.iter(|| black_box(invoke(&mut native, &mut world, caller, "add", &args).unwrap()));
    });
    let mut script = script_counter(&mut ids);
    group.bench_function("mrom_script", |b| {
        b.iter(|| black_box(invoke(&mut script, &mut world, caller, "add", &args).unwrap()));
    });
    let meta_args = [Value::from("add"), Value::List(args.to_vec())];
    group.bench_function("mrom_meta_invoke", |b| {
        b.iter(|| {
            black_box(invoke(&mut native, &mut world, caller, "invoke", &meta_args).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
