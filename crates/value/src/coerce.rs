//! Generic coercion — the *weak typing* requirement.
//!
//! The paper: "the object model should support generic coercion to
//! facilitate the high level of abstraction (e.g., to transform a value that
//! is represented as HTML text into an integer, when arithmetic operation
//! should be performed on that value)".
//!
//! The coercion matrix below is intentionally permissive in the directions
//! the paper motivates (presentation formats → machine types) and
//! conservative elsewhere (no lossy silent truncation: `Float` → `Int`
//! requires an integral value).

use std::collections::BTreeMap;

use crate::error::ValueError;
use crate::value::{Value, ValueKind};

impl Value {
    /// Coerces `self` into the requested kind, consuming it.
    ///
    /// Identity coercions are free. The supported conversions:
    ///
    /// | from \ to | Bool | Int | Float | Str | Bytes | List | Map |
    /// |-----------|------|-----|-------|-----|-------|------|-----|
    /// | Null      | ✓(false) | ✗ | ✗ | ✓("null") | ✗ | wrap | ✗ |
    /// | Bool      | ✓ | ✓(0/1) | ✓ | ✓ | ✗ | wrap | ✗ |
    /// | Int       | ✓(≠0) | ✓ | ✓ | ✓ | ✗ | wrap | ✗ |
    /// | Float     | ✓(≠0) | ✓ if integral | ✓ | ✓ | ✗ | wrap | ✗ |
    /// | Str       | ✓ parse | ✓ parse (HTML-aware) | ✓ parse (HTML-aware) | ✓ | ✓ utf-8 | wrap | ✗ |
    /// | Bytes     | ✗ | ✗ | ✗ | ✓ if utf-8 | ✓ | wrap | ✗ |
    /// | List      | ✗ | ✗ | ✗ | ✓ display | ✗ | ✓ | ✗ |
    /// | Map       | ✗ | ✗ | ✗ | ✓ display | ✗ | ✓ entries | ✓ |
    /// | ObjectRef | ✗ | ✗ | ✗ | ✓ display | ✓ 16 B id | wrap | ✗ |
    ///
    /// "wrap" means a single-element list. String → number strips markup
    /// first (tags removed, entities decoded, whitespace normalized) so `"<td><b>42</b></td>"` coerces to
    /// `Int(42)` — the paper's example.
    ///
    /// # Errors
    ///
    /// [`ValueError::CoercionUndefined`] when the kind pair has no rule, and
    /// [`ValueError::CoercionFailed`] when the rule exists but this value
    /// does not satisfy it.
    pub fn coerce(self, to: ValueKind) -> Result<Value, ValueError> {
        let from = self.kind();
        if from == to {
            return Ok(self);
        }
        match (self, to) {
            // --- to Bool: truthiness of convertible scalars + parsed strings.
            (Value::Null, ValueKind::Bool) => Ok(Value::Bool(false)),
            (Value::Int(i), ValueKind::Bool) => Ok(Value::Bool(i != 0)),
            (Value::Float(x), ValueKind::Bool) => Ok(Value::Bool(x != 0.0)),
            (Value::Str(s), ValueKind::Bool) => {
                parse_bool(&s)
                    .map(Value::Bool)
                    .ok_or_else(|| ValueError::CoercionFailed {
                        from,
                        to,
                        detail: format!("{s:?} is not a boolean literal"),
                    })
            }

            // --- to Int.
            (Value::Bool(b), ValueKind::Int) => Ok(Value::Int(i64::from(b))),
            (Value::Float(x), ValueKind::Int) => {
                if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 {
                    Ok(Value::Int(x as i64))
                } else {
                    Err(ValueError::CoercionFailed {
                        from,
                        to,
                        detail: format!("{x} is not an integral value in i64 range"),
                    })
                }
            }
            (Value::Str(s), ValueKind::Int) => {
                let cleaned = strip_markup(&s);
                cleaned.trim().parse::<i64>().map(Value::Int).map_err(|e| {
                    ValueError::CoercionFailed {
                        from,
                        to,
                        detail: format!("{s:?} does not contain an integer: {e}"),
                    }
                })
            }

            // --- to Float.
            (Value::Bool(b), ValueKind::Float) => Ok(Value::Float(if b { 1.0 } else { 0.0 })),
            (Value::Int(i), ValueKind::Float) => Ok(Value::Float(i as f64)),
            (Value::Str(s), ValueKind::Float) => {
                let cleaned = strip_markup(&s);
                cleaned
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| ValueError::CoercionFailed {
                        from,
                        to,
                        detail: format!("{s:?} does not contain a number: {e}"),
                    })
            }

            // --- to Str: display of everything.
            (Value::Null, ValueKind::Str) => Ok(Value::Str("null".to_owned())),
            (Value::Bool(b), ValueKind::Str) => Ok(Value::Str(b.to_string())),
            (Value::Int(i), ValueKind::Str) => Ok(Value::Str(i.to_string())),
            (Value::Float(x), ValueKind::Str) => Ok(Value::Str(x.to_string())),
            (Value::Bytes(b), ValueKind::Str) => String::from_utf8(b)
                .map(Value::Str)
                .map_err(|_| ValueError::InvalidUtf8),
            (v @ Value::List(_), ValueKind::Str) => Ok(Value::Str(v.to_string())),
            (v @ Value::Map(_), ValueKind::Str) => Ok(Value::Str(v.to_string())),
            (Value::ObjectRef(id), ValueKind::Str) => Ok(Value::Str(id.to_string())),

            // --- to Bytes.
            (Value::Str(s), ValueKind::Bytes) => Ok(Value::Bytes(s.into_bytes())),
            (Value::ObjectRef(id), ValueKind::Bytes) => Ok(Value::Bytes(id.to_bytes().to_vec())),

            // --- to List: wrap scalars, expand map entries.
            (Value::Map(m), ValueKind::List) => Ok(Value::List(
                m.into_iter()
                    .map(|(k, v)| Value::List(vec![Value::Str(k), v]))
                    .collect(),
            )),
            (v, ValueKind::List) => Ok(Value::List(vec![v])),

            // --- to Map: only from a list of [key, value] pairs.
            (Value::List(items), ValueKind::Map) => {
                let mut out = BTreeMap::new();
                for (i, item) in items.into_iter().enumerate() {
                    match item {
                        Value::List(mut pair) if pair.len() == 2 => {
                            let v = pair.pop().expect("len 2");
                            let k = pair.pop().expect("len 2");
                            match k {
                                Value::Str(k) => {
                                    out.insert(k, v);
                                }
                                other => {
                                    return Err(ValueError::CoercionFailed {
                                        from,
                                        to,
                                        detail: format!(
                                            "pair {i} key has kind {}, expected str",
                                            other.kind()
                                        ),
                                    })
                                }
                            }
                        }
                        other => {
                            return Err(ValueError::CoercionFailed {
                                from,
                                to,
                                detail: format!(
                                    "element {i} is {} rather than a [key, value] pair",
                                    other.kind()
                                ),
                            })
                        }
                    }
                }
                Ok(Value::Map(out))
            }

            // --- to ObjectRef: parse the display / byte forms back.
            (Value::Str(s), ValueKind::ObjectRef) => {
                s.parse()
                    .map(Value::ObjectRef)
                    .map_err(|_| ValueError::CoercionFailed {
                        from,
                        to,
                        detail: format!("{s:?} is not an object id"),
                    })
            }
            (Value::Bytes(b), ValueKind::ObjectRef) => {
                let raw: [u8; 16] =
                    b.as_slice()
                        .try_into()
                        .map_err(|_| ValueError::CoercionFailed {
                            from,
                            to,
                            detail: format!("object id needs 16 bytes, got {}", b.len()),
                        })?;
                Ok(Value::ObjectRef(crate::ObjectId::from_bytes(raw)))
            }

            (_, to) => Err(ValueError::CoercionUndefined { from, to }),
        }
    }

    /// Non-consuming convenience over [`Value::coerce`].
    ///
    /// # Errors
    ///
    /// Same as [`Value::coerce`].
    pub fn coerce_ref(&self, to: ValueKind) -> Result<Value, ValueError> {
        self.clone().coerce(to)
    }
}

/// Parses the boolean literals accepted by string → bool coercion.
fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "true" | "yes" | "1" | "on" => Some(true),
        "false" | "no" | "0" | "off" => Some(false),
        _ => None,
    }
}

/// Strips SGML/HTML markup and entities from presentation text so the
/// numeric payload can be parsed — the paper's HTML-to-integer scenario.
///
/// Tags (`<...>`) are removed; the five standard entities are decoded;
/// `&nbsp;` becomes a space; the result is whitespace-normalized.
pub(crate) fn strip_markup(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '<' => {
                // Skip to the matching '>'; an unterminated tag swallows the rest,
                // matching lenient browser behaviour.
                for t in chars.by_ref() {
                    if t == '>' {
                        break;
                    }
                }
            }
            '&' => {
                let mut entity = String::new();
                let mut terminated = false;
                while let Some(&t) = chars.peek() {
                    chars.next();
                    if t == ';' {
                        terminated = true;
                        break;
                    }
                    entity.push(t);
                    if entity.len() > 8 {
                        break;
                    }
                }
                if terminated {
                    match entity.as_str() {
                        "amp" => out.push('&'),
                        "lt" => out.push('<'),
                        "gt" => out.push('>'),
                        "quot" => out.push('"'),
                        "apos" => out.push('\''),
                        "nbsp" => out.push(' '),
                        other => {
                            // Unknown entity: keep the literal text.
                            out.push('&');
                            out.push_str(other);
                            out.push(';');
                        }
                    }
                } else {
                    out.push('&');
                    out.push_str(&entity);
                }
            }
            other => out.push(other),
        }
    }
    // Whitespace-normalize.
    out.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{NodeId, ObjectId};

    #[test]
    fn identity_coercion_is_free() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(5),
            Value::Float(1.5),
            Value::from("s"),
            Value::Bytes(vec![1]),
            Value::list([Value::Int(1)]),
            Value::map([("k", Value::Int(1))]),
        ] {
            let k = v.kind();
            assert_eq!(v.clone().coerce(k).unwrap(), v);
        }
    }

    #[test]
    fn paper_html_example() {
        let html = Value::from("<td><b> 42 </b></td>");
        assert_eq!(html.coerce(ValueKind::Int).unwrap(), Value::Int(42));
    }

    #[test]
    fn html_with_entities_and_floats() {
        let html = Value::from("<span>&nbsp;3.25&nbsp;</span>");
        assert_eq!(html.coerce(ValueKind::Float).unwrap(), Value::Float(3.25));
    }

    #[test]
    fn negative_number_in_markup() {
        let html = Value::from("<em>-17</em>");
        assert_eq!(html.coerce(ValueKind::Int).unwrap(), Value::Int(-17));
    }

    #[test]
    fn strip_markup_handles_unknown_entities() {
        assert_eq!(strip_markup("a &weird; b"), "a &weird; b");
        assert_eq!(strip_markup("a &amp; b"), "a & b");
        assert_eq!(strip_markup("x &unterminated"), "x &unterminated");
        assert_eq!(strip_markup("<unclosed tag"), "");
    }

    #[test]
    fn bool_coercions() {
        assert_eq!(
            Value::from("Yes").coerce(ValueKind::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::from(" off ").coerce(ValueKind::Bool).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Value::Int(0).coerce(ValueKind::Bool).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Value::Null.coerce(ValueKind::Bool).unwrap(),
            Value::Bool(false)
        );
        assert!(Value::from("maybe").coerce(ValueKind::Bool).is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(
            Value::Bool(true).coerce(ValueKind::Int).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Value::Int(2).coerce(ValueKind::Float).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            Value::Float(3.0).coerce(ValueKind::Int).unwrap(),
            Value::Int(3)
        );
        assert!(Value::Float(3.5).coerce(ValueKind::Int).is_err());
        assert!(Value::Float(f64::NAN).coerce(ValueKind::Int).is_err());
        assert!(Value::Float(1e300).coerce(ValueKind::Int).is_err());
    }

    #[test]
    fn string_coercions() {
        assert_eq!(
            Value::Int(-9).coerce(ValueKind::Str).unwrap(),
            Value::from("-9")
        );
        assert_eq!(
            Value::Null.coerce(ValueKind::Str).unwrap(),
            Value::from("null")
        );
        assert_eq!(
            Value::Bytes(b"hi".to_vec()).coerce(ValueKind::Str).unwrap(),
            Value::from("hi")
        );
        assert_eq!(
            Value::Bytes(vec![0xff]).coerce(ValueKind::Str),
            Err(ValueError::InvalidUtf8)
        );
    }

    #[test]
    fn list_wrap_and_map_entries() {
        assert_eq!(
            Value::Int(1).coerce(ValueKind::List).unwrap(),
            Value::list([Value::Int(1)])
        );
        let m = Value::map([("a", Value::Int(1)), ("b", Value::Int(2))]);
        let l = m.clone().coerce(ValueKind::List).unwrap();
        assert_eq!(
            l,
            Value::list([
                Value::list([Value::from("a"), Value::Int(1)]),
                Value::list([Value::from("b"), Value::Int(2)]),
            ])
        );
        // And back again.
        assert_eq!(l.coerce(ValueKind::Map).unwrap(), m);
    }

    #[test]
    fn map_coercion_rejects_non_pairs() {
        let bad = Value::list([Value::Int(1)]);
        assert!(matches!(
            bad.coerce(ValueKind::Map),
            Err(ValueError::CoercionFailed { .. })
        ));
        let bad_key = Value::list([Value::list([Value::Int(1), Value::Int(2)])]);
        assert!(bad_key.coerce(ValueKind::Map).is_err());
    }

    #[test]
    fn object_ref_round_trips_via_str_and_bytes() {
        let id = ObjectId::from_parts(NodeId(0xabc), 7, 9);
        let as_str = Value::ObjectRef(id).coerce(ValueKind::Str).unwrap();
        assert_eq!(
            as_str.coerce(ValueKind::ObjectRef).unwrap(),
            Value::ObjectRef(id)
        );
        let as_bytes = Value::ObjectRef(id).coerce(ValueKind::Bytes).unwrap();
        assert_eq!(
            as_bytes.coerce(ValueKind::ObjectRef).unwrap(),
            Value::ObjectRef(id)
        );
        assert!(Value::Bytes(vec![1, 2, 3])
            .coerce(ValueKind::ObjectRef)
            .is_err());
    }

    #[test]
    fn undefined_pairs_report_cleanly() {
        assert_eq!(
            Value::list([]).coerce(ValueKind::Int),
            Err(ValueError::CoercionUndefined {
                from: ValueKind::List,
                to: ValueKind::Int
            })
        );
        assert!(Value::Null.coerce(ValueKind::Bytes).is_err());
        assert!(Value::map::<String, _>([])
            .coerce(ValueKind::Float)
            .is_err());
    }

    #[test]
    fn coerce_ref_leaves_original_intact() {
        let v = Value::from("12");
        let n = v.coerce_ref(ValueKind::Int).unwrap();
        assert_eq!(n, Value::Int(12));
        assert_eq!(v, Value::from("12"));
    }
}
