//! The dynamic [`Value`] tree and its runtime type tags.

use std::collections::BTreeMap;
use std::fmt;

use crate::id::ObjectId;

/// Runtime type tag of a [`Value`].
///
/// MROM is weakly typed: data items may carry an optional *dynamic type*
/// constraint expressed as a `ValueKind`, and coercions name their target
/// with one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKind {
    /// The absent value.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Raw byte string.
    Bytes,
    /// Ordered heterogeneous list.
    List,
    /// String-keyed ordered map.
    Map,
    /// Reference to another object by identity.
    ObjectRef,
}

impl ValueKind {
    /// All kinds, in tag order. Useful for exhaustive sweeps in tests and
    /// benches.
    pub const ALL: [ValueKind; 9] = [
        ValueKind::Null,
        ValueKind::Bool,
        ValueKind::Int,
        ValueKind::Float,
        ValueKind::Str,
        ValueKind::Bytes,
        ValueKind::List,
        ValueKind::Map,
        ValueKind::ObjectRef,
    ];

    /// Canonical lowercase name (`"int"`, `"objectref"`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "bool",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "str",
            ValueKind::Bytes => "bytes",
            ValueKind::List => "list",
            ValueKind::Map => "map",
            ValueKind::ObjectRef => "objectref",
        }
    }

    /// Parses a kind from its canonical [`ValueKind::name`].
    pub fn from_name(name: &str) -> Option<ValueKind> {
        ValueKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed MROM value.
///
/// Values are the only currency of the model: data items hold them, method
/// parameters and return values are slices/instances of them, and the wire
/// format ships trees of them between nodes.
///
/// # Example
///
/// ```
/// use mrom_value::Value;
///
/// let v = Value::list([Value::Int(1), Value::from("two")]);
/// assert_eq!(v.kind(), mrom_value::ValueKind::List);
/// assert_eq!(v.as_list().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The absent value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw byte string.
    Bytes(Vec<u8>),
    /// Ordered heterogeneous list.
    List(Vec<Value>),
    /// String-keyed ordered map (BTreeMap keeps encoding canonical).
    Map(BTreeMap<String, Value>),
    /// Reference to another object by identity.
    ObjectRef(ObjectId),
}

impl Value {
    /// The runtime kind tag of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bytes(_) => ValueKind::Bytes,
            Value::List(_) => ValueKind::List,
            Value::Map(_) => ValueKind::Map,
            Value::ObjectRef(_) => ValueKind::ObjectRef,
        }
    }

    /// Builds a list value from anything iterable.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Builds a map value from `(key, value)` pairs.
    pub fn map<K, I>(entries: I) -> Value
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrows the float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Borrows the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the byte payload, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Borrows the list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Mutably borrows the list payload, if this is a `List`.
    pub fn as_list_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the map payload, if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrows the map payload, if this is a `Map`.
    pub fn as_map_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the object reference, if this is an `ObjectRef`.
    pub fn as_object_ref(&self) -> Option<ObjectId> {
        match self {
            Value::ObjectRef(id) => Some(*id),
            _ => None,
        }
    }

    /// Truthiness used by the script language and by pre/post procedures
    /// that return non-`Bool` values: `Null`, `false`, `0`, `0.0`, empty
    /// string/bytes/list/map are falsy; everything else (including any
    /// `ObjectRef`) is truthy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(x) => *x != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::List(items) => !items.is_empty(),
            Value::Map(m) => !m.is_empty(),
            Value::ObjectRef(_) => true,
        }
    }

    /// Recursively counts nodes in the value tree (the value itself counts
    /// as one). Used for size accounting in migration benches.
    pub fn tree_size(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::tree_size).sum::<usize>(),
            Value::Map(m) => 1 + m.values().map(Value::tree_size).sum::<usize>(),
            _ => 1,
        }
    }

    /// Maximum nesting depth of the value tree (a scalar has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::depth).max().unwrap_or(0),
            Value::Map(m) => 1 + m.values().map(Value::depth).max().unwrap_or(0),
            _ => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => {
                f.write_str("0x")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                f.write_str("}")
            }
            Value::ObjectRef(id) => write!(f, "@{id}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl From<ObjectId> for Value {
    fn from(id: ObjectId) -> Self {
        Value::ObjectRef(id)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::List(items)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::List(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;

    #[test]
    fn kind_matches_variant() {
        assert_eq!(Value::Null.kind(), ValueKind::Null);
        assert_eq!(Value::Bool(true).kind(), ValueKind::Bool);
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::Float(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::from("x").kind(), ValueKind::Str);
        assert_eq!(Value::Bytes(vec![]).kind(), ValueKind::Bytes);
        assert_eq!(Value::list([]).kind(), ValueKind::List);
        assert_eq!(Value::map::<String, _>([]).kind(), ValueKind::Map);
        let id = ObjectId::from_parts(NodeId(1), 1, 1);
        assert_eq!(Value::ObjectRef(id).kind(), ValueKind::ObjectRef);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in ValueKind::ALL {
            assert_eq!(ValueKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ValueKind::from_name("nope"), None);
    }

    #[test]
    fn truthiness_table() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(Value::Float(0.1).truthy());
        assert!(!Value::from("").truthy());
        assert!(Value::from("x").truthy());
        assert!(!Value::Bytes(vec![]).truthy());
        assert!(!Value::list([]).truthy());
        assert!(Value::list([Value::Null]).truthy());
        assert!(!Value::map::<String, _>([]).truthy());
        assert!(Value::ObjectRef(ObjectId::SYSTEM).truthy());
    }

    #[test]
    fn tree_size_and_depth() {
        let v = Value::list([
            Value::Int(1),
            Value::list([Value::Int(2), Value::Int(3)]),
            Value::map([("a", Value::Null)]),
        ]);
        assert_eq!(v.tree_size(), 7);
        assert_eq!(v.depth(), 3);
        assert_eq!(Value::Int(5).tree_size(), 1);
        assert_eq!(Value::Int(5).depth(), 1);
    }

    #[test]
    fn accessors_return_none_for_wrong_variant() {
        let v = Value::Int(1);
        assert!(v.as_bool().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_list().is_none());
        assert!(v.as_map().is_none());
        assert!(v.as_object_ref().is_none());
        assert_eq!(v.as_int(), Some(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "0xab01");
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(
            Value::map([("k", Value::Bool(true))]).to_string(),
            "{\"k\": true}"
        );
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(
            [Value::Int(1)].into_iter().collect::<Value>(),
            Value::list([Value::Int(1)])
        );
    }
}
