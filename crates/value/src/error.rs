//! Error type shared by the value, coercion, identity and wire modules.

use std::fmt;

use crate::value::ValueKind;

/// Errors produced while manipulating, coercing, or (de)serializing
/// [`Value`](crate::Value)s.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValueError {
    /// A coercion between two kinds is not defined at all.
    CoercionUndefined {
        /// Kind of the source value.
        from: ValueKind,
        /// Requested target kind.
        to: ValueKind,
    },
    /// A coercion is defined for the kind pair but failed for this
    /// particular value (e.g. `"abc"` → `Int`).
    CoercionFailed {
        /// Kind of the source value.
        from: ValueKind,
        /// Requested target kind.
        to: ValueKind,
        /// Human-readable detail.
        detail: String,
    },
    /// An integer conversion overflowed or a float was not representable.
    NumericRange(String),
    /// The wire decoder met a malformed buffer.
    Malformed(String),
    /// The wire decoder met an unknown type tag byte.
    UnknownTag(u8),
    /// The wire decoder met a format version it does not speak.
    UnsupportedVersion(u8),
    /// The buffer ended before the announced payload did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes remaining in the buffer.
        have: usize,
    },
    /// Trailing bytes remained after a complete value was decoded.
    TrailingBytes(usize),
    /// A nested structure exceeded the decoder's depth budget.
    DepthExceeded(usize),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::CoercionUndefined { from, to } => {
                write!(f, "no coercion defined from {from} to {to}")
            }
            ValueError::CoercionFailed { from, to, detail } => {
                write!(f, "coercion from {from} to {to} failed: {detail}")
            }
            ValueError::NumericRange(detail) => {
                write!(f, "numeric value out of range: {detail}")
            }
            ValueError::Malformed(detail) => write!(f, "malformed wire data: {detail}"),
            ValueError::UnknownTag(tag) => write!(f, "unknown wire type tag {tag:#04x}"),
            ValueError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire format version {v}")
            }
            ValueError::Truncated { needed, have } => {
                write!(f, "truncated wire data: needed {needed} bytes, have {have}")
            }
            ValueError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after decoded value")
            }
            ValueError::DepthExceeded(limit) => {
                write!(f, "value nesting exceeds depth limit {limit}")
            }
            ValueError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            ValueError::CoercionUndefined {
                from: ValueKind::List,
                to: ValueKind::Int,
            }
            .to_string(),
            ValueError::InvalidUtf8.to_string(),
            ValueError::TrailingBytes(3).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "no trailing period: {m}");
            let first = m.chars().next().unwrap();
            assert!(!first.is_uppercase(), "no leading capital: {m}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<ValueError>();
    }
}
