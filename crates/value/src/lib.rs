//! # mrom-value
//!
//! The dynamic value system underlying the MROM reproduction (Holder &
//! Ben-Shaul, *A Reflective Model for Mobile Software Objects*, ICDCS '97).
//!
//! MROM is *weakly typed*: method parameters and data items carry untyped
//! values whose interpretation is finalized at runtime, and the model
//! provides *generic coercion* between representations (the paper's example
//! is turning a value "represented as HTML text into an integer, when an
//! arithmetic operation should be performed on that value").
//!
//! This crate provides:
//!
//! * [`Value`] — the dynamic value tree ([`Value::Null`], booleans, integers,
//!   floats, strings, byte strings, lists, maps, and [`ObjectId`]
//!   references);
//! * [`ValueKind`] — the runtime type tags, used for dynamic type
//!   constraints and coercion targets;
//! * [`Value::coerce`] — the generic coercion engine (including HTML text →
//!   number);
//! * [`ObjectId`] / [`IdGenerator`] — decentralized identity and naming, the
//!   paper's "built-in decentralized mechanisms for assigning distinct names
//!   for objects";
//! * [`wire`] — a self-contained tag-length-value encoding. Mobile objects
//!   must carry their own (de)serialization scheme rather than lean on host
//!   facilities, so the format is hand-rolled, versioned, and byte-stable.
//!
//! ## Example
//!
//! ```
//! use mrom_value::{Value, ValueKind};
//!
//! # fn main() -> Result<(), mrom_value::ValueError> {
//! // The paper's motivating coercion: an HTML-wrapped figure used in
//! // arithmetic.
//! let html = Value::from("<td><b> 42 </b></td>");
//! let n = html.coerce(ValueKind::Int)?;
//! assert_eq!(n, Value::Int(42));
//!
//! // Round-trip through the self-contained wire format.
//! let bytes = mrom_value::wire::encode(&n);
//! assert_eq!(mrom_value::wire::decode(&bytes)?, n);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coerce;
mod error;
mod id;
mod value;
pub mod wire;

pub use error::ValueError;
pub use id::{AtomicIdGenerator, IdGenerator, NodeId, ObjectId};
pub use value::{Value, ValueKind};

/// Crate-local result alias over [`ValueError`].
pub type Result<T> = std::result::Result<T, ValueError>;
