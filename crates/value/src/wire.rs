//! Self-contained tag-length-value wire format.
//!
//! Mobile objects are *self-contained*: when an object migrates or persists
//! itself, it must not depend on marshaling facilities that may differ
//! between hosts. This module is therefore a hand-rolled, versioned,
//! byte-stable encoding that every MROM crate (migration images, simulator
//! payloads, the persistent store) shares.
//!
//! ## Layout
//!
//! A buffer produced by [`encode`] is `MAGIC (2 bytes) | VERSION (1 byte) |
//! value`. A `value` is `tag (1 byte)` followed by a tag-specific payload:
//!
//! | tag | kind | payload |
//! |-----|------|---------|
//! | `0x00` | Null | — |
//! | `0x01` | Bool | 1 byte, `0`/`1` |
//! | `0x02` | Int | varint zig-zag |
//! | `0x03` | Float | 8 bytes IEEE-754 BE |
//! | `0x04` | Str | varint len + UTF-8 bytes |
//! | `0x05` | Bytes | varint len + bytes |
//! | `0x06` | List | varint count + values |
//! | `0x07` | Map | varint count + (str, value) pairs |
//! | `0x08` | ObjectRef | 16 bytes ([`ObjectId::to_bytes`]) |
//!
//! Lengths use LEB128 varints; integers use zig-zag so small negative
//! numbers stay small. Decoding enforces a nesting-depth budget so hostile
//! images cannot blow the stack.

use std::collections::BTreeMap;

use crate::error::ValueError;
use crate::id::ObjectId;
use crate::value::Value;

/// Two magic bytes ("MR") identifying an MROM wire buffer.
pub const MAGIC: [u8; 2] = [0x4d, 0x52];

/// Current format version.
pub const VERSION: u8 = 1;

/// Maximum nesting depth accepted by the decoder.
pub const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_INT: u8 = 0x02;
const TAG_FLOAT: u8 = 0x03;
const TAG_STR: u8 = 0x04;
const TAG_BYTES: u8 = 0x05;
const TAG_LIST: u8 = 0x06;
const TAG_MAP: u8 = 0x07;
const TAG_OBJREF: u8 = 0x08;

/// Encodes a value into a fresh framed buffer (magic + version + body).
///
/// # Example
///
/// ```
/// use mrom_value::{wire, Value};
///
/// # fn main() -> Result<(), mrom_value::ValueError> {
/// let v = Value::list([Value::Int(-1), Value::from("x")]);
/// let buf = wire::encode(&v);
/// assert_eq!(wire::decode(&buf)?, v);
/// # Ok(())
/// # }
/// ```
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + value.tree_size() * 8);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    encode_value(value, &mut out);
    out
}

/// Appends the *body* encoding of a value (no frame header) to `out`.
///
/// Composite formats (migration images, network envelopes) embed many
/// values in one buffer and frame the whole buffer once.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            write_varint(zigzag(*i), out);
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            write_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            write_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(m) => {
            out.push(TAG_MAP);
            write_varint(m.len() as u64, out);
            for (k, v) in m {
                write_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                encode_value(v, out);
            }
        }
        Value::ObjectRef(id) => {
            out.push(TAG_OBJREF);
            out.extend_from_slice(&id.to_bytes());
        }
    }
}

/// Decodes a framed buffer produced by [`encode`].
///
/// # Errors
///
/// Returns [`ValueError`] when the buffer is unframed, truncated, malformed,
/// from an unknown version, too deep, or has trailing bytes.
pub fn decode(buf: &[u8]) -> Result<Value, ValueError> {
    let mut reader = Reader::new(buf);
    let magic = reader.take(2)?;
    if magic != MAGIC {
        return Err(ValueError::Malformed(format!(
            "bad magic {magic:02x?}, expected {MAGIC:02x?}"
        )));
    }
    let version = reader.take_u8()?;
    if version != VERSION {
        return Err(ValueError::UnsupportedVersion(version));
    }
    let value = decode_value(&mut reader)?;
    if reader.remaining() > 0 {
        return Err(ValueError::TrailingBytes(reader.remaining()));
    }
    Ok(value)
}

/// Decodes one body value from a [`Reader`], advancing it.
pub fn decode_value(reader: &mut Reader<'_>) -> Result<Value, ValueError> {
    decode_value_at(reader, 0)
}

fn decode_value_at(reader: &mut Reader<'_>, depth: usize) -> Result<Value, ValueError> {
    if depth > MAX_DEPTH {
        return Err(ValueError::DepthExceeded(MAX_DEPTH));
    }
    let tag = reader.take_u8()?;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => match reader.take_u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(ValueError::Malformed(format!("bool byte {other}"))),
        },
        TAG_INT => Ok(Value::Int(unzigzag(reader.read_varint()?))),
        TAG_FLOAT => {
            let raw = reader.take(8)?;
            Ok(Value::Float(f64::from_be_bytes(
                raw.try_into().expect("8 bytes"),
            )))
        }
        TAG_STR => {
            let len = reader.read_len()?;
            let raw = reader.take(len)?;
            let s = std::str::from_utf8(raw).map_err(|_| ValueError::InvalidUtf8)?;
            Ok(Value::Str(s.to_owned()))
        }
        TAG_BYTES => {
            let len = reader.read_len()?;
            Ok(Value::Bytes(reader.take(len)?.to_vec()))
        }
        TAG_LIST => {
            let count = reader.read_len()?;
            // A value needs at least one tag byte: a count beyond the
            // remaining bytes is malformed and must not pre-allocate.
            if count > reader.remaining() {
                return Err(ValueError::Malformed(format!(
                    "list announces {count} items with {} bytes left",
                    reader.remaining()
                )));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value_at(reader, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        TAG_MAP => {
            let count = reader.read_len()?;
            if count > reader.remaining() {
                return Err(ValueError::Malformed(format!(
                    "map announces {count} entries with {} bytes left",
                    reader.remaining()
                )));
            }
            let mut m = BTreeMap::new();
            for _ in 0..count {
                let klen = reader.read_len()?;
                let kraw = reader.take(klen)?;
                let k = std::str::from_utf8(kraw)
                    .map_err(|_| ValueError::InvalidUtf8)?
                    .to_owned();
                let v = decode_value_at(reader, depth + 1)?;
                m.insert(k, v);
            }
            Ok(Value::Map(m))
        }
        TAG_OBJREF => {
            let raw = reader.take(16)?;
            Ok(Value::ObjectRef(ObjectId::from_bytes(
                raw.try_into().expect("16 bytes"),
            )))
        }
        other => Err(ValueError::UnknownTag(other)),
    }
}

/// A cursor over a wire buffer, used by composite decoders (migration
/// images, protocol envelopes) that interleave their own fields with
/// embedded values.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer; the cursor starts at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`ValueError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ValueError> {
        if self.remaining() < n {
            return Err(ValueError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes a single byte.
    ///
    /// # Errors
    ///
    /// [`ValueError::Truncated`] at end of buffer.
    pub fn take_u8(&mut self) -> Result<u8, ValueError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`ValueError::Malformed`] for varints longer than 10 bytes and
    /// [`ValueError::Truncated`] at end of buffer.
    pub fn read_varint(&mut self) -> Result<u64, ValueError> {
        let mut shift = 0u32;
        let mut out = 0u64;
        loop {
            let byte = self.take_u8()?;
            if shift >= 64 {
                return Err(ValueError::Malformed("varint longer than 10 bytes".into()));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Reads a varint and checks it fits `usize`.
    ///
    /// # Errors
    ///
    /// Same as [`Reader::read_varint`] plus [`ValueError::Malformed`] on
    /// overflow.
    pub fn read_len(&mut self) -> Result<usize, ValueError> {
        let raw = self.read_varint()?;
        usize::try_from(raw)
            .map_err(|_| ValueError::Malformed(format!("length {raw} exceeds usize")))
    }
}

/// Appends a LEB128 varint.
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Convenience: encode a UTF-8 string field (varint length + bytes) into a
/// composite buffer.
pub fn write_str(s: &str, out: &mut Vec<u8>) {
    write_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

/// Convenience: decode a string field written by [`write_str`].
///
/// # Errors
///
/// [`ValueError`] on truncation or invalid UTF-8.
pub fn read_str(reader: &mut Reader<'_>) -> Result<String, ValueError> {
    let len = reader.read_len()?;
    let raw = reader.take(len)?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| ValueError::InvalidUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{IdGenerator, NodeId};

    fn round_trip(v: Value) {
        let buf = encode(&v);
        assert_eq!(decode(&buf).expect("decode"), v, "value {v}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Int(0));
        round_trip(Value::Int(-1));
        round_trip(Value::Int(i64::MAX));
        round_trip(Value::Int(i64::MIN));
        round_trip(Value::Float(0.0));
        round_trip(Value::Float(-2.75));
        round_trip(Value::Float(f64::INFINITY));
        round_trip(Value::from(""));
        round_trip(Value::from("héllo ✨"));
        round_trip(Value::Bytes(vec![]));
        round_trip(Value::Bytes((0..=255).collect()));
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let buf = encode(&Value::Float(f64::NAN));
        match decode(&buf).unwrap() {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected float, got {other}"),
        }
    }

    #[test]
    fn composites_round_trip() {
        let mut gen = IdGenerator::new(NodeId(5));
        round_trip(Value::list([]));
        round_trip(Value::list([Value::Int(1), Value::from("x"), Value::Null]));
        round_trip(Value::map([("a", Value::Int(1)), ("", Value::Null)]));
        round_trip(Value::ObjectRef(gen.next_id()));
        round_trip(Value::list([
            Value::map([("nested", Value::list([Value::Bool(false)]))]),
            Value::ObjectRef(gen.next_id()),
        ]));
    }

    #[test]
    fn small_negative_ints_are_compact() {
        // zig-zag: -1 encodes to a single varint byte.
        let buf = encode(&Value::Int(-1));
        // magic(2) + version(1) + tag(1) + varint(1)
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = encode(&Value::Int(1));
        buf[0] = 0xff;
        assert!(matches!(decode(&buf), Err(ValueError::Malformed(_))));
        let mut buf = encode(&Value::Int(1));
        buf[2] = 99;
        assert_eq!(decode(&buf), Err(ValueError::UnsupportedVersion(99)));
    }

    #[test]
    fn rejects_truncation_at_every_point() {
        let buf = encode(&Value::list([
            Value::from("hello"),
            Value::Int(123456),
            Value::map([("k", Value::Float(1.5))]),
        ]));
        for cut in 0..buf.len() {
            assert!(
                decode(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        assert!(decode(&buf).is_ok());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut buf = encode(&Value::Int(7));
        buf.push(0);
        assert_eq!(decode(&buf), Err(ValueError::TrailingBytes(1)));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(0x7e);
        assert_eq!(decode(&buf), Err(ValueError::UnknownTag(0x7e)));
    }

    #[test]
    fn rejects_bogus_bool_byte() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(TAG_BOOL);
        buf.push(7);
        assert!(matches!(decode(&buf), Err(ValueError::Malformed(_))));
    }

    #[test]
    fn rejects_hostile_list_count() {
        // Announce 2^40 items in a 10-byte buffer: must fail fast without
        // allocating.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(TAG_LIST);
        write_varint(1 << 40, &mut buf);
        assert!(matches!(decode(&buf), Err(ValueError::Malformed(_))));
    }

    #[test]
    fn rejects_excessive_depth() {
        let mut v = Value::Int(0);
        for _ in 0..(MAX_DEPTH + 2) {
            v = Value::list([v]);
        }
        let buf = encode(&v);
        assert_eq!(decode(&buf), Err(ValueError::DepthExceeded(MAX_DEPTH)));
    }

    #[test]
    fn accepts_depth_at_limit() {
        let mut v = Value::Int(0);
        for _ in 0..(MAX_DEPTH - 1) {
            v = Value::list([v]);
        }
        let buf = encode(&v);
        assert_eq!(decode(&buf).unwrap(), v);
    }

    #[test]
    fn rejects_invalid_utf8_in_str() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(TAG_STR);
        write_varint(1, &mut buf);
        buf.push(0xff);
        assert_eq!(decode(&buf), Err(ValueError::InvalidUtf8));
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(r.read_varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xffu8; 11];
        let mut r = Reader::new(&buf);
        assert!(r.read_varint().is_err());
    }

    #[test]
    fn zigzag_involution() {
        for i in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn str_field_helpers_round_trip() {
        let mut buf = Vec::new();
        write_str("field", &mut buf);
        write_str("", &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(read_str(&mut r).unwrap(), "field");
        assert_eq!(read_str(&mut r).unwrap(), "");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn encoding_is_canonical_for_maps() {
        // BTreeMap ordering makes byte output independent of insertion order.
        let a = Value::map([("x", Value::Int(1)), ("a", Value::Int(2))]);
        let b = Value::map([("a", Value::Int(2)), ("x", Value::Int(1))]);
        assert_eq!(encode(&a), encode(&b));
    }
}
