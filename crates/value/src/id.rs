//! Decentralized object identity.
//!
//! The paper requires "built-in decentralized mechanisms for assigning
//! distinct names for objects" — no central registry may be involved,
//! because the universe of objects is unbounded and widely dispersed.
//!
//! An [`ObjectId`] is a 128-bit triple `(node, seq, entropy)`:
//!
//! * `node` — 64-bit identifier of the node that *created* the object.
//!   Nodes pick their identifiers independently (in deployment: hash of
//!   address + boot time; in the simulator: assigned by the scenario).
//! * `seq`  — 32-bit per-node creation counter.
//! * `entropy` — 32 bits drawn from the generator's stream, protecting
//!   against node-id reuse after restarts.
//!
//! Two generators with distinct node ids can never collide; a single
//! generator never repeats. Identity is *location independent*: an object
//! keeps its id as it migrates.

use std::fmt;
use std::str::FromStr;

use crate::error::ValueError;

/// Identifier of a node (a site / host) in the object universe.
///
/// Newtype over `u64` so node ids cannot be confused with sequence numbers
/// or arbitrary integers.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{:x}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

/// Globally unique, decentralized, location-independent object identity.
///
/// # Example
///
/// ```
/// use mrom_value::{IdGenerator, NodeId};
///
/// let mut gen_a = IdGenerator::new(NodeId(1));
/// let mut gen_b = IdGenerator::new(NodeId(2));
/// let a = gen_a.next_id();
/// let b = gen_b.next_id();
/// assert_ne!(a, b);
/// assert_eq!(a.node(), NodeId(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ObjectId {
    node: NodeId,
    seq: u32,
    entropy: u32,
}

impl ObjectId {
    /// The reserved identity of "the system itself" — used as the caller
    /// principal for host-initiated operations before any object exists.
    pub const SYSTEM: ObjectId = ObjectId {
        node: NodeId(0),
        seq: 0,
        entropy: 0,
    };

    /// Assembles an id from raw parts. Prefer [`IdGenerator::next_id`];
    /// this constructor exists for deserialization and tests.
    pub fn from_parts(node: NodeId, seq: u32, entropy: u32) -> Self {
        ObjectId { node, seq, entropy }
    }

    /// The node on which this object was created.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The per-node creation sequence number.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// The anti-reuse entropy word.
    pub fn entropy(&self) -> u32 {
        self.entropy
    }

    /// Packs the identity into 16 bytes (big-endian `node, seq, entropy`).
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.node.0.to_be_bytes());
        out[8..12].copy_from_slice(&self.seq.to_be_bytes());
        out[12..].copy_from_slice(&self.entropy.to_be_bytes());
        out
    }

    /// Rebuilds an identity from [`ObjectId::to_bytes`] output.
    pub fn from_bytes(raw: [u8; 16]) -> Self {
        let node = u64::from_be_bytes(raw[..8].try_into().expect("8 bytes"));
        let seq = u32::from_be_bytes(raw[8..12].try_into().expect("4 bytes"));
        let entropy = u32::from_be_bytes(raw[12..].try_into().expect("4 bytes"));
        ObjectId::from_parts(NodeId(node), seq, entropy)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}-{:08x}-{:08x}",
            self.node.0, self.seq, self.entropy
        )
    }
}

impl FromStr for ObjectId {
    type Err = ValueError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('-');
        let (Some(a), Some(b), Some(c), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(ValueError::Malformed(format!(
                "object id must have three dash-separated fields, got {s:?}"
            )));
        };
        let node = u64::from_str_radix(a, 16)
            .map_err(|e| ValueError::Malformed(format!("bad node field {a:?}: {e}")))?;
        let seq = u32::from_str_radix(b, 16)
            .map_err(|e| ValueError::Malformed(format!("bad seq field {b:?}: {e}")))?;
        let entropy = u32::from_str_radix(c, 16)
            .map_err(|e| ValueError::Malformed(format!("bad entropy field {c:?}: {e}")))?;
        Ok(ObjectId::from_parts(NodeId(node), seq, entropy))
    }
}

/// Per-node generator of [`ObjectId`]s.
///
/// Each node owns exactly one generator. The entropy stream is a small
/// xorshift PRNG seeded from the node id, so generation is deterministic
/// within a simulation run while still exercising the anti-reuse word.
#[derive(Debug, Clone)]
pub struct IdGenerator {
    node: NodeId,
    next_seq: u32,
    rng_state: u64,
}

impl IdGenerator {
    /// Creates a generator for `node` with a seed derived from the node id.
    pub fn new(node: NodeId) -> Self {
        Self::with_seed(node, node.0 ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Creates a generator with an explicit entropy seed (e.g. boot time in
    /// deployment, scenario seed in simulation).
    pub fn with_seed(node: NodeId, seed: u64) -> Self {
        IdGenerator {
            node,
            next_seq: 1,
            // xorshift must not start at 0
            rng_state: seed | 1,
        }
    }

    /// The node this generator mints identities for.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Mints the next identity.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX - 1` identities are minted from one
    /// generator (2^32 objects on a single node exceeds any simulated run).
    pub fn next_id(&mut self) -> ObjectId {
        let seq = self.next_seq;
        self.next_seq = self
            .next_seq
            .checked_add(1)
            .expect("object id sequence exhausted on this node");
        // xorshift64
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        ObjectId::from_parts(self.node, seq, (x >> 32) as u32)
    }
}

/// A thread-safe [`IdGenerator`]: mints identities through `&self`, so a
/// shared (multi-worker) runtime can create objects without a lock around
/// the generator.
///
/// Used **sequentially**, the stream is identical to [`IdGenerator`] with
/// the same seed: the sequence counter and the xorshift entropy stream
/// advance exactly once per mint. Under concurrent minting the pairing of
/// sequence numbers with entropy draws depends on thread interleaving —
/// ids stay globally unique either way (uniqueness comes from `(node,
/// seq)`; entropy only guards against node-id reuse).
#[derive(Debug)]
pub struct AtomicIdGenerator {
    node: NodeId,
    next_seq: std::sync::atomic::AtomicU32,
    rng_state: std::sync::atomic::AtomicU64,
}

impl AtomicIdGenerator {
    /// Creates a generator for `node` with a seed derived from the node id
    /// (same derivation as [`IdGenerator::new`]).
    pub fn new(node: NodeId) -> Self {
        Self::with_seed(node, node.0 ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Creates a generator with an explicit entropy seed.
    pub fn with_seed(node: NodeId, seed: u64) -> Self {
        AtomicIdGenerator {
            node,
            next_seq: std::sync::atomic::AtomicU32::new(1),
            // xorshift must not start at 0
            rng_state: std::sync::atomic::AtomicU64::new(seed | 1),
        }
    }

    /// Adopts the exact state of a sequential generator, continuing its
    /// stream where it left off.
    pub fn from_generator(gen: &IdGenerator) -> Self {
        AtomicIdGenerator {
            node: gen.node,
            next_seq: std::sync::atomic::AtomicU32::new(gen.next_seq),
            rng_state: std::sync::atomic::AtomicU64::new(gen.rng_state),
        }
    }

    /// Snapshots the current state as a sequential [`IdGenerator`].
    pub fn to_generator(&self) -> IdGenerator {
        use std::sync::atomic::Ordering;
        IdGenerator {
            node: self.node,
            next_seq: self.next_seq.load(Ordering::Relaxed),
            rng_state: self.rng_state.load(Ordering::Relaxed),
        }
    }

    /// The node this generator mints identities for.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Mints the next identity. Safe to call from any number of threads.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX - 1` identities are minted from one
    /// generator, matching [`IdGenerator::next_id`].
    pub fn next_id(&self) -> ObjectId {
        use std::sync::atomic::Ordering;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        assert!(seq != u32::MAX, "object id sequence exhausted on this node");
        // xorshift64 advanced by compare-exchange: each mint consumes
        // exactly one step of the stream, whatever the interleaving.
        let mut cur = self.rng_state.load(Ordering::Relaxed);
        loop {
            let mut x = cur;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match self
                .rng_state
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return ObjectId::from_parts(self.node, seq, (x >> 32) as u32),
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_from_one_generator_are_distinct() {
        let mut g = IdGenerator::new(NodeId(7));
        let ids: HashSet<_> = (0..10_000).map(|_| g.next_id()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn ids_from_distinct_nodes_never_collide() {
        let mut a = IdGenerator::new(NodeId(1));
        let mut b = IdGenerator::new(NodeId(2));
        for _ in 0..1000 {
            assert_ne!(a.next_id(), b.next_id());
        }
    }

    #[test]
    fn same_node_same_seed_is_deterministic() {
        let mut a = IdGenerator::with_seed(NodeId(3), 42);
        let mut b = IdGenerator::with_seed(NodeId(3), 42);
        for _ in 0..100 {
            assert_eq!(a.next_id(), b.next_id());
        }
    }

    #[test]
    fn byte_round_trip() {
        let mut g = IdGenerator::new(NodeId(0xdead_beef));
        for _ in 0..100 {
            let id = g.next_id();
            assert_eq!(ObjectId::from_bytes(id.to_bytes()), id);
        }
    }

    #[test]
    fn string_round_trip() {
        let mut g = IdGenerator::new(NodeId(9));
        for _ in 0..100 {
            let id = g.next_id();
            let parsed: ObjectId = id.to_string().parse().expect("parse");
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-an-id-at-all-really".parse::<ObjectId>().is_err());
        assert!("".parse::<ObjectId>().is_err());
        assert!("12".parse::<ObjectId>().is_err());
        assert!("zz-1-1".parse::<ObjectId>().is_err());
    }

    #[test]
    fn atomic_generator_matches_sequential_stream() {
        let mut seq = IdGenerator::with_seed(NodeId(11), 77);
        let atomic = AtomicIdGenerator::with_seed(NodeId(11), 77);
        for _ in 0..256 {
            assert_eq!(seq.next_id(), atomic.next_id());
        }
        // Round trip through the snapshot keeps the stream aligned.
        let mut resumed = atomic.to_generator();
        let atomic2 = AtomicIdGenerator::from_generator(&resumed);
        for _ in 0..64 {
            assert_eq!(resumed.next_id(), atomic2.next_id());
        }
    }

    #[test]
    fn atomic_generator_unique_across_threads() {
        let atomic = AtomicIdGenerator::new(NodeId(12));
        let mut all = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..1000).map(|_| atomic.next_id()).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                all.extend(h.join().expect("minting thread panicked"));
            }
        });
        let distinct: HashSet<_> = all.iter().copied().collect();
        assert_eq!(distinct.len(), 8000);
    }

    #[test]
    fn system_id_is_stable() {
        assert_eq!(ObjectId::SYSTEM.node(), NodeId(0));
        assert_eq!(ObjectId::SYSTEM.seq(), 0);
    }

    #[test]
    fn display_is_nonempty_and_parseable() {
        let id = ObjectId::from_parts(NodeId(1), 2, 3);
        let s = id.to_string();
        assert_eq!(s, "0000000000000001-00000002-00000003");
    }
}
