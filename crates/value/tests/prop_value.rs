//! Property-based tests over the value tree, coercion, identity, and wire
//! format.

use mrom_value::{wire, IdGenerator, NodeId, ObjectId, Value, ValueKind};
use proptest::prelude::*;

/// Strategy producing arbitrary value trees of bounded depth/width.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based round-trip checks
        // (the bitwise NaN round-trip is covered by a unit test).
        prop::num::f64::NORMAL.prop_map(Value::Float),
        Just(Value::Float(0.0)),
        ".{0,24}".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
        (any::<u64>(), any::<u32>(), any::<u32>())
            .prop_map(|(n, s, e)| Value::ObjectRef(ObjectId::from_parts(NodeId(n), s, e))),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::List),
            prop::collection::btree_map(".{0,12}", inner, 0..8).prop_map(Value::Map),
        ]
    })
}

proptest! {
    /// Every value round-trips bit-exactly through the wire format.
    #[test]
    fn wire_round_trip(v in arb_value()) {
        let buf = wire::encode(&v);
        let back = wire::decode(&buf).expect("well-formed buffer decodes");
        prop_assert_eq!(back, v);
    }

    /// Encoding is deterministic: same value, same bytes.
    #[test]
    fn wire_deterministic(v in arb_value()) {
        prop_assert_eq!(wire::encode(&v), wire::encode(&v));
    }

    /// Every prefix truncation of a valid buffer is rejected, never panics.
    #[test]
    fn wire_truncations_fail_cleanly(v in arb_value(), frac in 0.0f64..1.0) {
        let buf = wire::encode(&v);
        let cut = ((buf.len() as f64) * frac) as usize;
        if cut < buf.len() {
            prop_assert!(wire::decode(&buf[..cut]).is_err());
        }
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn wire_garbage_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&data);
    }

    /// Single-bit corruption either fails or yields *some* value — never a
    /// panic or hang.
    #[test]
    fn wire_bitflip_never_panics(v in arb_value(), bit in 0usize..64) {
        let mut buf = wire::encode(&v);
        let idx = bit % (buf.len() * 8);
        buf[idx / 8] ^= 1 << (idx % 8);
        let _ = wire::decode(&buf);
    }

    /// Coercion to every kind either succeeds or errors — never panics —
    /// and a successful coercion yields exactly the requested kind.
    #[test]
    fn coercion_total_and_kind_correct(v in arb_value(), kind_idx in 0usize..9) {
        let to = ValueKind::ALL[kind_idx];
        if let Ok(out) = v.coerce_ref(to) {
            prop_assert_eq!(out.kind(), to);
        }
    }

    /// Coercion to a value's own kind is the identity.
    #[test]
    fn coercion_identity(v in arb_value()) {
        let k = v.kind();
        prop_assert_eq!(v.clone().coerce(k).expect("identity"), v);
    }

    /// Int → Str → Int round-trips.
    #[test]
    fn int_str_round_trip(i in any::<i64>()) {
        let s = Value::Int(i).coerce(ValueKind::Str).expect("int to str");
        prop_assert_eq!(s.coerce(ValueKind::Int).expect("str to int"), Value::Int(i));
    }

    /// Int → Float → Int round-trips for integers exactly representable in
    /// an f64 mantissa.
    #[test]
    fn int_float_round_trip(i in -(1i64 << 52)..(1i64 << 52)) {
        let f = Value::Int(i).coerce(ValueKind::Float).expect("int to float");
        prop_assert_eq!(f.coerce(ValueKind::Int).expect("float to int"), Value::Int(i));
    }

    /// Map → List → Map round-trips.
    #[test]
    fn map_list_round_trip(m in prop::collection::btree_map(".{0,8}", any::<i64>().prop_map(Value::Int), 0..8)) {
        let v = Value::Map(m.clone());
        let l = v.clone().coerce(ValueKind::List).expect("map to list");
        prop_assert_eq!(l.coerce(ValueKind::Map).expect("list to map"), v);
    }

    /// Display of a value tree never panics and is never empty.
    #[test]
    fn display_nonempty(v in arb_value()) {
        prop_assert!(!v.to_string().is_empty());
    }

    /// tree_size ≥ depth ≥ 1 for every value.
    #[test]
    fn size_depth_relation(v in arb_value()) {
        prop_assert!(v.tree_size() >= v.depth());
        prop_assert!(v.depth() >= 1);
    }

    /// Object ids survive display/parse and byte round-trips.
    #[test]
    fn object_id_round_trips(n in any::<u64>(), s in any::<u32>(), e in any::<u32>()) {
        let id = ObjectId::from_parts(NodeId(n), s, e);
        prop_assert_eq!(id.to_string().parse::<ObjectId>().expect("parse"), id);
        prop_assert_eq!(ObjectId::from_bytes(id.to_bytes()), id);
    }

    /// Generators on different nodes never mint equal ids.
    #[test]
    fn generators_disjoint(a in 0u64..1000, b in 1001u64..2000, count in 1usize..64) {
        let mut ga = IdGenerator::new(NodeId(a));
        let mut gb = IdGenerator::new(NodeId(b));
        let ids_a: Vec<_> = (0..count).map(|_| ga.next_id()).collect();
        let ids_b: Vec<_> = (0..count).map(|_| gb.next_id()).collect();
        for ia in &ids_a {
            prop_assert!(!ids_b.contains(ia));
        }
    }
}
