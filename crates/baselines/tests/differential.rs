//! Differential testing across object models: five implementations of the
//! same conceptual counter must agree on every behaviour they all support.
//! This is what makes the E8 cost comparison meaningful — the models are
//! doing the same work.

use mrom_baselines::com::counter_object;
use mrom_baselines::dii::{counter_setup, Request};
use mrom_baselines::introspect::counter_class;
use mrom_baselines::StaticCounter;
use mrom_core::{invoke, NoWorld};
use mrom_value::{IdGenerator, NodeId, Value};
use proptest::prelude::*;

/// The MROM counter equivalent to the baseline fixtures.
fn mrom_counter(ids: &mut IdGenerator) -> mrom_core::MromObject {
    mrom_core::ObjectBuilder::new(ids.next_id())
        .class("counter")
        .fixed_data("count", mrom_core::DataItem::public(Value::Int(0)))
        .fixed_method(
            "add",
            mrom_core::Method::public(mrom_core::MethodBody::native(|_, args| {
                match (
                    args.first().and_then(Value::as_int),
                    args.get(1).and_then(Value::as_int),
                ) {
                    (Some(a), Some(b)) => Ok(Value::Int(a.wrapping_add(b))),
                    _ => Ok(Value::Null),
                }
            })),
        )
        .fixed_method(
            "bump",
            mrom_core::Method::public(mrom_core::MethodBody::native(|env, _| {
                let me = env.object_ref().id();
                let c = env.object().read_data(me, "count")?.as_int().unwrap_or(0);
                env.object().write_data(me, "count", Value::Int(c + 1))?;
                Ok(Value::Int(c + 1))
            })),
        )
        .build()
}

proptest! {
    /// add(a, b) agrees across all five models for arbitrary inputs.
    #[test]
    fn add_is_identical_across_models(a in any::<i64>(), b in any::<i64>()) {
        let expected = a.wrapping_add(b);
        let args = [Value::Int(a), Value::Int(b)];

        // Static.
        let statik = StaticCounter::new();
        prop_assert_eq!(statik.add(a, b), expected);

        // Introspection.
        let mut intro = counter_class().instantiate();
        prop_assert_eq!(intro.invoke("add", &args).unwrap(), Value::Int(expected));

        // DII.
        let (repo, servant) = counter_setup();
        let req = Request::build(&repo, "Counter", "add", &args).unwrap();
        prop_assert_eq!(servant.invoke(&req).unwrap(), Value::Int(expected));

        // COM.
        let mut com = counter_object();
        let iface = com.query_interface("ICounter").unwrap();
        let slot = iface.slot_index("add").unwrap();
        prop_assert_eq!(com.call(&iface, slot, &args).unwrap(), Value::Int(expected));

        // MROM.
        let mut ids = IdGenerator::new(NodeId(0xd1ff));
        let mut obj = mrom_counter(&mut ids);
        let caller = ids.next_id();
        let mut world = NoWorld;
        prop_assert_eq!(
            invoke(&mut obj, &mut world, caller, "add", &args).unwrap(),
            Value::Int(expected)
        );
    }

    /// `bump` sequences agree across every stateful model.
    #[test]
    fn bump_sequences_agree(times in 1usize..24) {
        let mut statik = StaticCounter::new();
        let mut intro = counter_class().instantiate();
        intro.set_field("count", Value::Int(0)).unwrap();
        let mut com = counter_object();
        let iface = com.query_interface("ICounter").unwrap();
        let bump_slot = iface.slot_index("bump").unwrap();
        let mut ids = IdGenerator::new(NodeId(0xd1fe));
        let mut obj = mrom_counter(&mut ids);
        let caller = ids.next_id();
        let mut world = NoWorld;

        for i in 1..=times {
            let expected = Value::Int(i as i64);
            prop_assert_eq!(Value::Int(statik.bump()), expected.clone());
            prop_assert_eq!(intro.invoke("bump", &[]).unwrap(), expected.clone());
            prop_assert_eq!(com.call(&iface, bump_slot, &[]).unwrap(), expected.clone());
            prop_assert_eq!(
                invoke(&mut obj, &mut world, caller, "bump", &[]).unwrap(),
                expected
            );
        }
    }

    /// Weakly typed arguments: DII marshalling and MROM script coercion
    /// accept string-encoded integers and agree on the result.
    #[test]
    fn weak_typing_agrees_where_supported(a in -1000i64..1000, b in -1000i64..1000) {
        let args = [Value::Str(a.to_string()), Value::Int(b)];
        let (repo, servant) = counter_setup();
        let req = Request::build(&repo, "Counter", "add", &args).unwrap();
        let dii_result = servant.invoke(&req).unwrap();

        let mut ids = IdGenerator::new(NodeId(0xd1fd));
        let mut obj = mrom_core::ObjectBuilder::new(ids.next_id())
            .fixed_method(
                "add",
                mrom_core::Method::public(
                    mrom_core::MethodBody::script(
                        "param a; param b; return int(a) + int(b);",
                    )
                    .unwrap(),
                ),
            )
            .build();
        let caller = ids.next_id();
        let mut world = NoWorld;
        let mrom_result = invoke(&mut obj, &mut world, caller, "add", &args).unwrap();
        prop_assert_eq!(dii_result, mrom_result);
    }
}
