//! The CORBA-style Dynamic Invocation Interface model.
//!
//! §2 of the paper: "DII allows dynamic lookup of a desired interface in an
//! interface repository, and getting all the required information from the
//! repository so that a request on an object that implements the interface
//! can be built. This feature, along with the ability to dynamically
//! change the repository, allows dynamic changes in the meaning of a
//! certain interface. Nevertheless ... the core object semantics, such as
//! the invocation mechanism, is not subject to any manipulations."
//!
//! The flow: look an operation signature up in the [`InterfaceRepository`],
//! build a type-checked [`Request`], then deliver it to a [`Servant`]. The
//! repository is mutable; the invocation path is not.

use std::collections::BTreeMap;
use std::sync::Arc;

use mrom_value::{Value, ValueKind};

use crate::error::BaselineError;

/// An operation signature stored in the repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDef {
    /// Operation name.
    pub name: String,
    /// Declared parameter kinds.
    pub params: Vec<ValueKind>,
}

/// An interface: a named bag of operation signatures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterfaceDef {
    operations: BTreeMap<String, OperationDef>,
}

impl InterfaceDef {
    /// An empty interface.
    pub fn new() -> InterfaceDef {
        InterfaceDef::default()
    }

    /// Adds (or replaces) an operation signature.
    pub fn operation(mut self, name: &str, params: &[ValueKind]) -> InterfaceDef {
        self.operations.insert(
            name.to_owned(),
            OperationDef {
                name: name.to_owned(),
                params: params.to_vec(),
            },
        );
        self
    }

    /// Looks an operation up.
    pub fn lookup(&self, name: &str) -> Option<&OperationDef> {
        self.operations.get(name)
    }

    /// Operation names, sorted.
    pub fn operation_names(&self) -> Vec<&str> {
        self.operations.keys().map(String::as_str).collect()
    }
}

/// The (mutable) interface repository — dynamic changes here are the one
/// form of evolution DII supports.
#[derive(Debug, Clone, Default)]
pub struct InterfaceRepository {
    interfaces: BTreeMap<String, InterfaceDef>,
}

impl InterfaceRepository {
    /// An empty repository.
    pub fn new() -> InterfaceRepository {
        InterfaceRepository::default()
    }

    /// Registers or replaces an interface (the repository *is* mutable).
    pub fn define(&mut self, name: &str, def: InterfaceDef) {
        self.interfaces.insert(name.to_owned(), def);
    }

    /// Dynamic lookup.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`].
    pub fn lookup(&self, name: &str) -> Result<&InterfaceDef, BaselineError> {
        self.interfaces
            .get(name)
            .ok_or_else(|| BaselineError::NotFound(format!("interface {name:?}")))
    }

    /// Registered interface names, sorted.
    pub fn interface_names(&self) -> Vec<&str> {
        self.interfaces.keys().map(String::as_str).collect()
    }
}

/// A dynamically built, signature-checked request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    interface: String,
    operation: String,
    args: Vec<Value>,
}

impl Request {
    /// Builds a request against the repository: lookup, then marshal with
    /// kind checking (generic coercion is attempted, mirroring CORBA's
    /// typed `Any` insertion).
    ///
    /// # Errors
    ///
    /// Lookup, arity, and argument-kind errors.
    pub fn build(
        repo: &InterfaceRepository,
        interface: &str,
        operation: &str,
        args: &[Value],
    ) -> Result<Request, BaselineError> {
        let iface = repo.lookup(interface)?;
        let op = iface
            .lookup(operation)
            .ok_or_else(|| BaselineError::NotFound(format!("operation {operation:?}")))?;
        if args.len() != op.params.len() {
            return Err(BaselineError::Arity {
                operation: operation.to_owned(),
                expected: op.params.len(),
                got: args.len(),
            });
        }
        let mut marshalled = Vec::with_capacity(args.len());
        for (i, (arg, kind)) in args.iter().zip(&op.params).enumerate() {
            let coerced = arg
                .coerce_ref(*kind)
                .map_err(|_| BaselineError::ArgumentKind {
                    operation: operation.to_owned(),
                    index: i,
                    expected: *kind,
                    got: arg.kind(),
                })?;
            marshalled.push(coerced);
        }
        Ok(Request {
            interface: interface.to_owned(),
            operation: operation.to_owned(),
            args: marshalled,
        })
    }

    /// The target interface name.
    pub fn interface(&self) -> &str {
        &self.interface
    }

    /// The operation name.
    pub fn operation(&self) -> &str {
        &self.operation
    }

    /// The marshalled arguments.
    pub fn args(&self) -> &[Value] {
        &self.args
    }
}

/// An operation implementation.
pub type ServantFn = dyn Fn(&[Value]) -> Result<Value, BaselineError> + Send + Sync;

/// A servant: implements the operations of one or more interfaces. The
/// implementation table is fixed at construction — the model's invocation
/// semantics cannot be manipulated.
#[derive(Clone)]
pub struct Servant {
    implemented: Vec<String>,
    bodies: BTreeMap<String, Arc<ServantFn>>,
}

impl std::fmt::Debug for Servant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Servant")
            .field("implemented", &self.implemented)
            .field("operations", &self.bodies.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Servant {
    /// Starts a servant builder.
    pub fn new() -> Servant {
        Servant {
            implemented: Vec::new(),
            bodies: BTreeMap::new(),
        }
    }

    /// Declares an implemented interface. CORBA "does not limit an
    /// interface to be implemented only by one object" — any number of
    /// servants may declare the same name.
    pub fn implements(mut self, interface: &str) -> Servant {
        self.implemented.push(interface.to_owned());
        self
    }

    /// Provides an operation body.
    pub fn operation<F>(mut self, name: &str, f: F) -> Servant
    where
        F: Fn(&[Value]) -> Result<Value, BaselineError> + Send + Sync + 'static,
    {
        self.bodies.insert(name.to_owned(), Arc::new(f));
        self
    }

    /// Does the servant claim this interface?
    pub fn implements_interface(&self, name: &str) -> bool {
        self.implemented.iter().any(|i| i == name)
    }

    /// Delivers a built request — the fixed invocation mechanism.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`] when the servant does not implement the
    /// request's interface or operation; execution errors from the body.
    pub fn invoke(&self, request: &Request) -> Result<Value, BaselineError> {
        if !self.implements_interface(request.interface()) {
            return Err(BaselineError::NotFound(format!(
                "interface {:?} on this servant",
                request.interface()
            )));
        }
        let body = self.bodies.get(request.operation()).ok_or_else(|| {
            BaselineError::NotFound(format!("operation {:?}", request.operation()))
        })?;
        body(request.args())
    }
}

impl Default for Servant {
    fn default() -> Self {
        Servant::new()
    }
}

/// Builds the counter interface + servant pair shared by the benches.
pub fn counter_setup() -> (InterfaceRepository, Servant) {
    let mut repo = InterfaceRepository::new();
    repo.define(
        "Counter",
        InterfaceDef::new()
            .operation("add", &[ValueKind::Int, ValueKind::Int])
            .operation("bump", &[]),
    );
    let servant = Servant::new()
        .implements("Counter")
        .operation("add", |args| match (args[0].as_int(), args[1].as_int()) {
            (Some(a), Some(b)) => Ok(Value::Int(a.wrapping_add(b))),
            _ => Err(BaselineError::Execution("add requires ints".into())),
        })
        .operation("bump", |_| Ok(Value::Int(1)));
    (repo, servant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_dii_flow() {
        let (repo, servant) = counter_setup();
        let req = Request::build(&repo, "Counter", "add", &[Value::Int(2), Value::Int(3)]).unwrap();
        assert_eq!(servant.invoke(&req).unwrap(), Value::Int(5));
    }

    #[test]
    fn marshalling_coerces_weakly_typed_args() {
        let (repo, servant) = counter_setup();
        // String "2" coerces to Int per the signature.
        let req =
            Request::build(&repo, "Counter", "add", &[Value::from("2"), Value::Int(3)]).unwrap();
        assert_eq!(req.args()[0], Value::Int(2));
        assert_eq!(servant.invoke(&req).unwrap(), Value::Int(5));
        // Uncoercible arguments fail at build time.
        assert!(matches!(
            Request::build(&repo, "Counter", "add", &[Value::from("x"), Value::Int(3)]),
            Err(BaselineError::ArgumentKind { .. })
        ));
    }

    #[test]
    fn lookup_failures() {
        let (repo, _servant) = counter_setup();
        assert!(matches!(
            Request::build(&repo, "Ghost", "add", &[]),
            Err(BaselineError::NotFound(_))
        ));
        assert!(matches!(
            Request::build(&repo, "Counter", "ghost", &[]),
            Err(BaselineError::NotFound(_))
        ));
        assert!(matches!(
            Request::build(&repo, "Counter", "add", &[Value::Int(1)]),
            Err(BaselineError::Arity { .. })
        ));
    }

    #[test]
    fn repository_changes_change_interface_meaning() {
        let (mut repo, servant) = counter_setup();
        // Redefine Counter: `add` now takes three ints. Old-shape requests
        // stop building — the "meaning of the interface" changed without
        // touching the servant.
        repo.define(
            "Counter",
            InterfaceDef::new().operation("add", &[ValueKind::Int, ValueKind::Int, ValueKind::Int]),
        );
        assert!(matches!(
            Request::build(&repo, "Counter", "add", &[Value::Int(1), Value::Int(2)]),
            Err(BaselineError::Arity { .. })
        ));
        // But a pre-built request would still execute: the invocation
        // mechanism itself never changed.
        let (old_repo, _) = counter_setup();
        let req =
            Request::build(&old_repo, "Counter", "add", &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(servant.invoke(&req).unwrap(), Value::Int(3));
    }

    #[test]
    fn multiple_servants_one_interface() {
        let (repo, servant_a) = counter_setup();
        let servant_b = Servant::new()
            .implements("Counter")
            .operation("add", |_| Ok(Value::Int(-1))); // different semantics
        let req = Request::build(&repo, "Counter", "add", &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(servant_a.invoke(&req).unwrap(), Value::Int(3));
        assert_eq!(servant_b.invoke(&req).unwrap(), Value::Int(-1));
    }

    #[test]
    fn servant_without_interface_rejects() {
        let servant = Servant::new().operation("add", |_| Ok(Value::Null));
        let (repo, _) = counter_setup();
        let req = Request::build(&repo, "Counter", "add", &[Value::Int(1), Value::Int(2)]).unwrap();
        assert!(matches!(
            servant.invoke(&req),
            Err(BaselineError::NotFound(_))
        ));
    }
}
