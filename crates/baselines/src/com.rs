//! The DCOM-style QueryInterface model.
//!
//! §2 of the paper: "Each object may introduce several interfaces and a
//! user may query any one of them using the QueryInterface function ...
//! However, while an object's interface can be changed in runtime (e.g., a
//! new interface can be added) object's implementation can not ... there
//! is no notion of a fixed behavior for an object since objects are
//! entities unknown to their users (only the interfaces are known). Thus,
//! an object that supports a certain interface in a particular time can be
//! changed and appear later without support for that interface,
//! introducing inconsistency."
//!
//! Modelled: objects hold a runtime-mutable table of interfaces, each a
//! vtable of function pointers over shared object state; clients must
//! `query_interface` before calling, and a later re-query can legally fail
//! (the inconsistency the paper criticizes — demonstrated in tests).

use std::collections::BTreeMap;
use std::sync::Arc;

use mrom_value::Value;

use crate::error::BaselineError;

/// Shared mutable state of a COM-like object.
pub type ComState = BTreeMap<String, Value>;

/// A vtable slot.
pub type ComFn = dyn Fn(&mut ComState, &[Value]) -> Result<Value, BaselineError> + Send + Sync;

/// An interface: an ordered vtable plus name → slot index mapping.
#[derive(Clone)]
pub struct Interface {
    iid: String,
    slot_names: Vec<String>,
    vtable: Vec<Arc<ComFn>>,
}

impl std::fmt::Debug for Interface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interface")
            .field("iid", &self.iid)
            .field("slots", &self.slot_names)
            .finish()
    }
}

impl Interface {
    /// Starts an interface with the given IID.
    pub fn new(iid: &str) -> Interface {
        Interface {
            iid: iid.to_owned(),
            slot_names: Vec::new(),
            vtable: Vec::new(),
        }
    }

    /// Appends a vtable slot.
    pub fn slot<F>(mut self, name: &str, f: F) -> Interface
    where
        F: Fn(&mut ComState, &[Value]) -> Result<Value, BaselineError> + Send + Sync + 'static,
    {
        self.slot_names.push(name.to_owned());
        self.vtable.push(Arc::new(f));
        self
    }

    /// The interface id.
    pub fn iid(&self) -> &str {
        &self.iid
    }

    /// Slot index for `name`, if present.
    pub fn slot_index(&self, name: &str) -> Option<usize> {
        self.slot_names.iter().position(|n| n == name)
    }

    /// Number of vtable slots.
    pub fn slot_count(&self) -> usize {
        self.vtable.len()
    }
}

/// A COM-like object: state + a mutable interface table.
#[derive(Debug)]
pub struct ComObject {
    state: ComState,
    interfaces: BTreeMap<String, Arc<Interface>>,
}

impl ComObject {
    /// An object with empty state and no interfaces.
    pub fn new() -> ComObject {
        ComObject {
            state: ComState::new(),
            interfaces: BTreeMap::new(),
        }
    }

    /// Seeds a state entry.
    pub fn with_state(mut self, key: &str, v: Value) -> ComObject {
        self.state.insert(key.to_owned(), v);
        self
    }

    /// Installs an interface (allowed at any time — "a new interface can
    /// be added" at runtime).
    pub fn expose(&mut self, interface: Interface) {
        self.interfaces
            .insert(interface.iid().to_owned(), Arc::new(interface));
    }

    /// Withdraws an interface — the legal-but-inconsistent move the paper
    /// criticizes. Returns `true` if it was exposed.
    pub fn withdraw(&mut self, iid: &str) -> bool {
        self.interfaces.remove(iid).is_some()
    }

    /// `QueryInterface`: the handle needed before any call.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`] when the IID is not (or no longer)
    /// exposed.
    pub fn query_interface(&self, iid: &str) -> Result<Arc<Interface>, BaselineError> {
        self.interfaces
            .get(iid)
            .cloned()
            .ok_or_else(|| BaselineError::NotFound(format!("interface {iid:?}")))
    }

    /// Exposed IIDs, sorted.
    pub fn interface_ids(&self) -> Vec<&str> {
        self.interfaces.keys().map(String::as_str).collect()
    }

    /// Calls through a previously queried interface by slot index — the
    /// fast path after QueryInterface.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`] for out-of-range slots; execution
    /// errors from the body.
    pub fn call(
        &mut self,
        interface: &Arc<Interface>,
        slot: usize,
        args: &[Value],
    ) -> Result<Value, BaselineError> {
        let f = interface
            .vtable
            .get(slot)
            .cloned()
            .ok_or_else(|| BaselineError::NotFound(format!("vtable slot {slot}")))?;
        f(&mut self.state, args)
    }

    /// Reads a state entry (tests/benches).
    pub fn state(&self, key: &str) -> Option<&Value> {
        self.state.get(key)
    }
}

impl Default for ComObject {
    fn default() -> Self {
        ComObject::new()
    }
}

/// Builds the counter object + `ICounter` interface used by the benches.
pub fn counter_object() -> ComObject {
    let mut obj = ComObject::new().with_state("count", Value::Int(0));
    obj.expose(
        Interface::new("ICounter")
            .slot("bump", |state, _| {
                let c = state.get("count").and_then(Value::as_int).unwrap_or(0);
                state.insert("count".into(), Value::Int(c + 1));
                Ok(Value::Int(c + 1))
            })
            .slot("add", |_, args| match args {
                [Value::Int(a), Value::Int(b)] => Ok(Value::Int(a.wrapping_add(*b))),
                _ => Err(BaselineError::Execution("add requires two ints".into())),
            }),
    );
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_then_call() {
        let mut obj = counter_object();
        let iface = obj.query_interface("ICounter").unwrap();
        let bump = iface.slot_index("bump").unwrap();
        let add = iface.slot_index("add").unwrap();
        assert_eq!(obj.call(&iface, bump, &[]).unwrap(), Value::Int(1));
        assert_eq!(obj.call(&iface, bump, &[]).unwrap(), Value::Int(2));
        assert_eq!(
            obj.call(&iface, add, &[Value::Int(2), Value::Int(3)])
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(obj.state("count"), Some(&Value::Int(2)));
    }

    #[test]
    fn unknown_interface_and_slot() {
        let mut obj = counter_object();
        assert!(matches!(
            obj.query_interface("IGhost"),
            Err(BaselineError::NotFound(_))
        ));
        let iface = obj.query_interface("ICounter").unwrap();
        assert!(matches!(
            obj.call(&iface, 99, &[]),
            Err(BaselineError::NotFound(_))
        ));
        assert_eq!(iface.slot_index("ghost"), None);
    }

    #[test]
    fn interfaces_can_be_added_at_runtime() {
        let mut obj = counter_object();
        assert_eq!(obj.interface_ids(), ["ICounter"]);
        obj.expose(Interface::new("IReset").slot("reset", |state, _| {
            state.insert("count".into(), Value::Int(0));
            Ok(Value::Null)
        }));
        assert_eq!(obj.interface_ids(), ["ICounter", "IReset"]);
        let reset = obj.query_interface("IReset").unwrap();
        let bump_iface = obj.query_interface("ICounter").unwrap();
        obj.call(&bump_iface, 0, &[]).unwrap();
        obj.call(&reset, 0, &[]).unwrap();
        assert_eq!(obj.state("count"), Some(&Value::Int(0)));
    }

    #[test]
    fn the_papers_inconsistency_scenario() {
        // "an object that supports a certain interface in a particular
        // time can be changed and appear later without support for that
        // interface"
        let mut obj = counter_object();
        let before = obj.query_interface("ICounter");
        assert!(before.is_ok());
        assert!(obj.withdraw("ICounter"));
        // A client re-querying the same IID now fails — nothing in the
        // model prevented the withdrawal.
        assert!(matches!(
            obj.query_interface("ICounter"),
            Err(BaselineError::NotFound(_))
        ));
        // Stale handles keep working against the new state — there is no
        // fixed behaviour contract.
        let stale = before.unwrap();
        assert_eq!(obj.call(&stale, 0, &[]).unwrap(), Value::Int(1));
        assert!(!obj.withdraw("ICounter"));
    }

    #[test]
    fn slot_counts() {
        let obj = counter_object();
        let iface = obj.query_interface("ICounter").unwrap();
        assert_eq!(iface.slot_count(), 2);
        assert_eq!(iface.iid(), "ICounter");
    }
}
