//! # mrom-baselines
//!
//! Working miniatures of the object models MROM is compared against in §2
//! of the paper, sharing one call surface so the benchmark harness can
//! drive them interchangeably:
//!
//! * [`StaticCounter`] — a plain Rust object: compile-time layout, direct
//!   dispatch. The paper's "static structures \[whose\] location is
//!   determined at compile time as a fixed offset".
//! * [`introspect`] — a Java-JDK-1.1-style core-reflection model:
//!   structure is queryable, invocation is by name, but nothing can be
//!   changed ("this API does not support mutability").
//! * [`dii`] — a CORBA-style Dynamic Invocation Interface: an interface
//!   repository that can be searched and *changed*, request objects built
//!   against signatures, but "the core object semantics, such as the
//!   invocation mechanism, is not subject to any manipulations".
//! * [`com`] — a DCOM-style QueryInterface model: objects expose
//!   interfaces discovered at runtime; interfaces can appear and disappear
//!   but implementations cannot change without "recompilation".
//!
//! Each model reports a [`Capabilities`] record; experiment E8 prints the
//! matrix next to measured invocation costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod com;
pub mod dii;
pub mod introspect;
mod statik;

mod error;

pub use error::BaselineError;
pub use statik::StaticCounter;

/// What a model can and cannot do — the qualitative §2 comparison made
/// executable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Can a client discover an object's structure at runtime?
    pub introspect_structure: bool,
    /// Can an object's structure (fields/methods/interfaces) change at
    /// runtime?
    pub mutate_structure: bool,
    /// Can method *implementations* be replaced at runtime?
    pub mutate_behaviour: bool,
    /// Can the invocation mechanism itself be modified (meta-invocation)?
    pub mutate_invocation: bool,
    /// Is per-item security part of the model (vs. left to implementers)?
    pub security_in_model: bool,
    /// Can an object serialize itself with its behaviour and move?
    pub mobile: bool,
}

/// Capability rows for every model, MROM included, keyed by display name.
pub fn capability_matrix() -> Vec<(&'static str, Capabilities)> {
    vec![
        (
            "static (plain Rust)",
            Capabilities {
                introspect_structure: false,
                mutate_structure: false,
                mutate_behaviour: false,
                mutate_invocation: false,
                security_in_model: false,
                mobile: false,
            },
        ),
        (
            "introspection (Java JDK 1.1)",
            Capabilities {
                introspect_structure: true,
                mutate_structure: false,
                mutate_behaviour: false,
                mutate_invocation: false,
                security_in_model: false,
                mobile: false,
            },
        ),
        (
            "DII (CORBA)",
            Capabilities {
                introspect_structure: true,
                mutate_structure: true, // the repository can change
                mutate_behaviour: false,
                mutate_invocation: false,
                security_in_model: false,
                mobile: false,
            },
        ),
        (
            "QueryInterface (DCOM)",
            Capabilities {
                introspect_structure: true,
                mutate_structure: true, // interfaces can be added
                mutate_behaviour: false,
                mutate_invocation: false,
                security_in_model: false,
                mobile: false,
            },
        ),
        (
            "MROM",
            Capabilities {
                introspect_structure: true,
                mutate_structure: true,
                mutate_behaviour: true,
                mutate_invocation: true,
                security_in_model: true,
                mobile: true,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_mrom_has_full_mutability() {
        let matrix = capability_matrix();
        let full: Vec<_> = matrix
            .iter()
            .filter(|(_, c)| c.mutate_behaviour && c.mutate_invocation && c.mobile)
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(full, ["MROM"]);
    }

    #[test]
    fn matrix_covers_five_models() {
        assert_eq!(capability_matrix().len(), 5);
    }
}
