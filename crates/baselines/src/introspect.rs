//! The Java-JDK-1.1-style introspection model.
//!
//! §2 of the paper: "Though supplying facilities for querying object's
//! structure, such as to examine its methods and their signatures, this
//! API does not support mutability, e.g., it does not allow operations on
//! existing objects that may change their semantics."
//!
//! Accordingly: classes describe fields and methods; instances can be
//! inspected and invoked by name; every structural mutation returns
//! [`BaselineError::NotSupported`].

use std::collections::BTreeMap;
use std::sync::Arc;

use mrom_value::Value;

use crate::error::BaselineError;

/// A method implementation: a Rust closure over the instance fields.
pub type IntrospectFn =
    dyn Fn(&mut BTreeMap<String, Value>, &[Value]) -> Result<Value, BaselineError> + Send + Sync;

/// An immutable class descriptor (the analogue of `java.lang.Class`).
#[derive(Clone)]
pub struct IntrospectClass {
    name: String,
    field_names: Vec<String>,
    methods: BTreeMap<String, (usize, Arc<IntrospectFn>)>,
}

impl std::fmt::Debug for IntrospectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntrospectClass")
            .field("name", &self.name)
            .field("fields", &self.field_names)
            .field("methods", &self.method_names())
            .finish()
    }
}

impl IntrospectClass {
    /// Starts a class descriptor.
    pub fn new(name: &str) -> IntrospectClass {
        IntrospectClass {
            name: name.to_owned(),
            field_names: Vec::new(),
            methods: BTreeMap::new(),
        }
    }

    /// Declares a field.
    pub fn field(mut self, name: &str) -> IntrospectClass {
        self.field_names.push(name.to_owned());
        self
    }

    /// Declares a method with a fixed arity.
    pub fn method<F>(mut self, name: &str, arity: usize, f: F) -> IntrospectClass
    where
        F: Fn(&mut BTreeMap<String, Value>, &[Value]) -> Result<Value, BaselineError>
            + Send
            + Sync
            + 'static,
    {
        self.methods.insert(name.to_owned(), (arity, Arc::new(f)));
        self
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared field names (reflection: `getFields`).
    pub fn field_names(&self) -> &[String] {
        &self.field_names
    }

    /// Declared method names (reflection: `getMethods`).
    pub fn method_names(&self) -> Vec<&str> {
        self.methods.keys().map(String::as_str).collect()
    }

    /// A method's declared arity (reflection: parameter inspection).
    pub fn method_arity(&self, name: &str) -> Option<usize> {
        self.methods.get(name).map(|(a, _)| *a)
    }

    /// Instantiates the class with all fields `Null`.
    pub fn instantiate(self: &Arc<Self>) -> IntrospectObject {
        IntrospectObject {
            class: Arc::clone(self),
            fields: self
                .field_names
                .iter()
                .map(|n| (n.clone(), Value::Null))
                .collect(),
        }
    }
}

/// An instance: queryable, invocable, immutable in structure.
#[derive(Debug, Clone)]
pub struct IntrospectObject {
    class: Arc<IntrospectClass>,
    fields: BTreeMap<String, Value>,
}

impl IntrospectObject {
    /// The instance's class descriptor (reflection: `getClass`).
    pub fn class(&self) -> &Arc<IntrospectClass> {
        &self.class
    }

    /// Reads a field by name.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`].
    pub fn get_field(&self, name: &str) -> Result<Value, BaselineError> {
        self.fields
            .get(name)
            .cloned()
            .ok_or_else(|| BaselineError::NotFound(format!("field {name:?}")))
    }

    /// Writes a field by name (allowed: *state* is mutable, structure is
    /// not).
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`].
    pub fn set_field(&mut self, name: &str, v: Value) -> Result<(), BaselineError> {
        match self.fields.get_mut(name) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(BaselineError::NotFound(format!("field {name:?}"))),
        }
    }

    /// Invokes a method by name (reflection: `Method.invoke`), with arity
    /// checking against the declared signature.
    ///
    /// # Errors
    ///
    /// Lookup, arity, and execution errors.
    pub fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, BaselineError> {
        let (arity, f) = self
            .class
            .methods
            .get(method)
            .cloned()
            .ok_or_else(|| BaselineError::NotFound(format!("method {method:?}")))?;
        if args.len() != arity {
            return Err(BaselineError::Arity {
                operation: method.to_owned(),
                expected: arity,
                got: args.len(),
            });
        }
        f(&mut self.fields, args)
    }

    /// Structural mutation is not part of this model — always fails.
    ///
    /// # Errors
    ///
    /// Always [`BaselineError::NotSupported`].
    pub fn add_method(&mut self, name: &str) -> Result<(), BaselineError> {
        Err(BaselineError::NotSupported(format!(
            "adding method {name:?}: JDK 1.1 reflection is introspection-only"
        )))
    }

    /// Structural mutation is not part of this model — always fails.
    ///
    /// # Errors
    ///
    /// Always [`BaselineError::NotSupported`].
    pub fn add_field(&mut self, name: &str) -> Result<(), BaselineError> {
        Err(BaselineError::NotSupported(format!(
            "adding field {name:?}: JDK 1.1 reflection is introspection-only"
        )))
    }
}

/// Builds the counter class shared by the benchmark suite.
pub fn counter_class() -> Arc<IntrospectClass> {
    Arc::new(
        IntrospectClass::new("counter")
            .field("count")
            .method("bump", 0, |fields, _| {
                let c = fields
                    .get("count")
                    .and_then(Value::as_int)
                    .unwrap_or_default();
                fields.insert("count".into(), Value::Int(c + 1));
                Ok(Value::Int(c + 1))
            })
            .method("add", 2, |_, args| {
                match (args[0].as_int(), args[1].as_int()) {
                    (Some(a), Some(b)) => Ok(Value::Int(a.wrapping_add(b))),
                    _ => Err(BaselineError::Execution("add requires ints".into())),
                }
            }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_queryable() {
        let class = counter_class();
        assert_eq!(class.name(), "counter");
        assert_eq!(class.field_names(), ["count"]);
        assert_eq!(class.method_names(), ["add", "bump"]);
        assert_eq!(class.method_arity("add"), Some(2));
        assert_eq!(class.method_arity("ghost"), None);
    }

    #[test]
    fn invocation_by_name_with_arity_checks() {
        let class = counter_class();
        let mut obj = class.instantiate();
        obj.set_field("count", Value::Int(0)).unwrap();
        assert_eq!(obj.invoke("bump", &[]).unwrap(), Value::Int(1));
        assert_eq!(obj.get_field("count").unwrap(), Value::Int(1));
        assert!(matches!(
            obj.invoke("bump", &[Value::Int(1)]),
            Err(BaselineError::Arity { .. })
        ));
        assert!(matches!(
            obj.invoke("ghost", &[]),
            Err(BaselineError::NotFound(_))
        ));
    }

    #[test]
    fn mutation_is_rejected() {
        let class = counter_class();
        let mut obj = class.instantiate();
        assert!(matches!(
            obj.add_method("new_power"),
            Err(BaselineError::NotSupported(_))
        ));
        assert!(matches!(
            obj.add_field("new_state"),
            Err(BaselineError::NotSupported(_))
        ));
        assert!(matches!(
            obj.set_field("ghost", Value::Null),
            Err(BaselineError::NotFound(_))
        ));
    }

    #[test]
    fn instances_share_class_but_not_state() {
        let class = counter_class();
        let mut a = class.instantiate();
        let b = class.instantiate();
        a.set_field("count", Value::Int(10)).unwrap();
        assert_eq!(b.get_field("count").unwrap(), Value::Null);
        assert!(Arc::ptr_eq(a.class(), b.class()));
    }
}
