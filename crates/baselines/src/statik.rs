//! The static baseline: a plain Rust object with compile-time layout.
//!
//! Field offsets and method addresses are resolved by the compiler — the
//! cost the paper says mutable structures must pay on top of ("in static
//! structures the location is determined at compile time as a fixed
//! offset"). E2 measures MROM lookup against these direct calls.

use mrom_value::Value;

use crate::error::BaselineError;

/// A counter with statically dispatched methods, mirroring the behaviour
/// of the MROM `counter` objects used across the benchmark suite.
///
/// # Example
///
/// ```
/// use mrom_baselines::StaticCounter;
///
/// let mut c = StaticCounter::new();
/// assert_eq!(c.bump(), 1);
/// assert_eq!(c.add(2, 3), 5);
/// assert_eq!(c.count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticCounter {
    count: i64,
}

impl StaticCounter {
    /// A counter at zero.
    pub fn new() -> StaticCounter {
        StaticCounter::default()
    }

    /// Direct field read — the "fixed offset" access.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// Direct field write.
    pub fn set_count(&mut self, v: i64) {
        self.count = v;
    }

    /// Statically dispatched increment.
    pub fn bump(&mut self) -> i64 {
        self.count += 1;
        self.count
    }

    /// Statically dispatched pure addition (the same body as the MROM
    /// `add` script used in E1/E2).
    pub fn add(&self, a: i64, b: i64) -> i64 {
        a.wrapping_add(b)
    }

    /// Dynamic-looking entry point used where the harness needs a uniform
    /// `(name, args)` signature; dispatch is still a compiled match.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`] / argument errors.
    pub fn call(&mut self, method: &str, args: &[Value]) -> Result<Value, BaselineError> {
        match method {
            "bump" => Ok(Value::Int(self.bump())),
            "count" => Ok(Value::Int(self.count())),
            "add" => match args {
                [Value::Int(a), Value::Int(b)] => Ok(Value::Int(self.add(*a, *b))),
                _ => Err(BaselineError::Arity {
                    operation: "add".into(),
                    expected: 2,
                    got: args.len(),
                }),
            },
            other => Err(BaselineError::NotFound(format!("method {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_calls() {
        let mut c = StaticCounter::new();
        assert_eq!(c.count(), 0);
        assert_eq!(c.bump(), 1);
        assert_eq!(c.bump(), 2);
        c.set_count(10);
        assert_eq!(c.count(), 10);
        assert_eq!(c.add(i64::MAX, 1), i64::MIN); // wrapping by contract
    }

    #[test]
    fn uniform_entry_point() {
        let mut c = StaticCounter::new();
        assert_eq!(c.call("bump", &[]).unwrap(), Value::Int(1));
        assert_eq!(
            c.call("add", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        assert!(matches!(
            c.call("ghost", &[]),
            Err(BaselineError::NotFound(_))
        ));
        assert!(matches!(
            c.call("add", &[Value::Int(1)]),
            Err(BaselineError::Arity { .. })
        ));
    }
}
