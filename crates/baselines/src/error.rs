//! Shared error type for the comparator models.

use std::fmt;

use mrom_value::ValueKind;

/// Errors raised by the baseline object models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// Method/operation/interface lookup failed.
    NotFound(String),
    /// The model does not support the attempted manipulation (the point of
    /// several §2 comparisons).
    NotSupported(String),
    /// Argument count mismatch against the declared signature.
    Arity {
        /// Operation name.
        operation: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// Argument kind mismatch against the declared signature.
    ArgumentKind {
        /// Operation name.
        operation: String,
        /// Parameter index.
        index: usize,
        /// Declared kind.
        expected: ValueKind,
        /// Supplied kind.
        got: ValueKind,
    },
    /// The invoked implementation failed.
    Execution(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::NotFound(what) => write!(f, "not found: {what}"),
            BaselineError::NotSupported(what) => write!(f, "not supported by this model: {what}"),
            BaselineError::Arity {
                operation,
                expected,
                got,
            } => write!(f, "{operation} expects {expected} arguments, got {got}"),
            BaselineError::ArgumentKind {
                operation,
                index,
                expected,
                got,
            } => write!(
                f,
                "{operation} argument {index} must be {expected}, got {got}"
            ),
            BaselineError::Execution(detail) => write!(f, "execution failed: {detail}"),
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(BaselineError::NotFound("iface".into())
            .to_string()
            .contains("iface"));
        let e = BaselineError::Arity {
            operation: "add".into(),
            expected: 2,
            got: 1,
        };
        assert!(e.to_string().contains("expects 2"));
    }
}
