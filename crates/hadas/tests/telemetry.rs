//! The windowed telemetry pipeline, end to end: a three-site federation
//! produces a populated [`mrom_obs::TelemetrySnapshot`] (hot objects,
//! site-to-site call matrix, per-link windows), the reflective
//! `getTelemetry` meta-method serves it as a value tree, per-site
//! filtering works, and the whole thing is a pure function of the
//! `SimNet` seed — byte-identical JSON across replays, swept over
//! `MROM_CHAOS_SEEDS` in CI.

use hadas::chaos::{run_scenario, ChaosScenario};
use hadas::Federation;
use mrom_core::{ClassSpec, Method, MethodBody};
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_obs::{ObsMode, WindowConfig};
use mrom_value::{NodeId, ObjectId, Value};

/// Seeds to sweep: `MROM_CHAOS_SEEDS` (a count) or a fast default.
fn sweep_seeds() -> Vec<u64> {
    let count = std::env::var("MROM_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(3);
    (1..=count.max(1)).collect()
}

/// A three-site triangle with one service object at each remote site
/// and a local object at the calling site, exercised enough to light up
/// every snapshot section: local invokes (diagonal of the call matrix),
/// cross-site invokes (off-diagonal + link traffic), and repeats to
/// make `svc_b` unambiguously the hottest object.
struct Fixture {
    fed: Federation,
    a: NodeId,
    b: NodeId,
    local: ObjectId,
    svc_b: ObjectId,
}

fn run_fixture(seed: u64) -> Fixture {
    let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    let (a, b, c) = (NodeId(1), NodeId(2), NodeId(3));
    for n in [a, b, c] {
        fed.add_site(n).unwrap();
    }
    fed.link(a, b).unwrap();
    fed.link(a, c).unwrap();
    fed.link(b, c).unwrap();

    let adopt_svc = |fed: &mut Federation, at: NodeId| {
        let rt = fed.runtime_mut(at).unwrap();
        let svc = ClassSpec::new("svc")
            .fixed_method(
                "ping",
                Method::public(MethodBody::script("return 7;").unwrap()),
            )
            .instantiate_as(rt.ids_mut().next_id(), None);
        let id = svc.id();
        rt.adopt(svc).unwrap();
        id
    };
    let svc_b = adopt_svc(&mut fed, b);
    let svc_c = adopt_svc(&mut fed, c);
    let local = adopt_svc(&mut fed, a);

    let caller = ObjectId::SYSTEM;
    for _ in 0..5 {
        fed.remote_invoke(a, b, caller, svc_b, "ping", &[]).unwrap();
    }
    fed.remote_invoke(a, c, caller, svc_c, "ping", &[]).unwrap();
    fed.runtime_mut(a)
        .unwrap()
        .invoke_as_system(local, "ping", &[])
        .unwrap();
    Fixture {
        fed,
        a,
        b,
        local,
        svc_b,
    }
}

fn with_windowed_ring<T>(body: impl FnOnce() -> T) -> T {
    mrom_obs::reset();
    mrom_obs::set_window(Some(WindowConfig::DEFAULT));
    mrom_obs::set_mode(ObsMode::Ring);
    let out = body();
    mrom_obs::set_mode(ObsMode::Disabled);
    mrom_obs::set_window(None);
    mrom_obs::reset();
    out
}

#[test]
fn federation_snapshot_is_populated_and_site_filtered() {
    with_windowed_ring(|| {
        let fx = run_fixture(11);
        let snap = fx.fed.telemetry();

        // Hot objects: the five-times-invoked service leads the board.
        let hot = snap.hot_objects(3);
        assert!(!hot.is_empty(), "window saw invocations");
        assert_eq!(hot[0].0, fx.svc_b, "svc_b is the hottest object");
        assert_eq!(hot[0].1.invocations, 5);

        // Call matrix: diagonal counts executions at a site,
        // off-diagonal counts cross-site invoke_req traffic.
        assert!(snap.calls.get(&(fx.a, fx.b)).copied().unwrap_or(0) >= 5);
        assert!(snap.calls.get(&(fx.b, fx.b)).copied().unwrap_or(0) >= 5);
        assert!(snap.calls.get(&(fx.a, fx.a)).copied().unwrap_or(0) >= 1);

        // Link windows: the a->b link delivered the requests.
        let ab = snap.links.get(&(fx.a, fx.b)).expect("a->b link windowed");
        assert!(ab.delivered >= 5);
        assert!(ab.bytes > 0);
        assert_eq!(ab.delivered_per_1k(), 1000, "LAN link drops nothing");

        // Site filtering: site B's slice keeps only B-hosted objects and
        // B-touching matrix rows / links.
        let site_b = fx.fed.site_telemetry(fx.b).unwrap();
        assert!(site_b.objects.contains_key(&fx.svc_b));
        assert!(!site_b.objects.contains_key(&fx.local));
        assert!(site_b.calls.keys().all(|(s, d)| *s == fx.b || *d == fx.b));
        assert!(site_b.links.keys().all(|(s, d)| *s == fx.b || *d == fx.b));
        assert!(fx.fed.site_telemetry(NodeId(99)).is_err());
    });
}

#[test]
fn get_telemetry_meta_method_serves_the_snapshot_as_a_value() {
    with_windowed_ring(|| {
        let mut fx = run_fixture(12);
        let v = fx
            .fed
            .runtime_mut(fx.a)
            .unwrap()
            .invoke_as_system(fx.local, "getTelemetry", &[])
            .unwrap();
        let m = v.as_map().expect("snapshot is a map");
        assert_eq!(
            m.get("schema"),
            Some(&Value::from("mrom.telemetry.v1")),
            "stable schema tag"
        );
        assert_eq!(m.get("object"), Some(&Value::ObjectRef(fx.local)));
        let objects = m.get("objects").and_then(Value::as_list).unwrap();
        assert!(!objects.is_empty(), "hot objects present");
        let calls = m.get("calls").and_then(Value::as_list).unwrap();
        assert!(!calls.is_empty(), "call matrix present");
        let links = m.get("links").and_then(Value::as_list).unwrap();
        assert!(!links.is_empty(), "link windows present");
    });
}

#[test]
fn federation_snapshot_is_deterministic_per_seed() {
    let run = |seed| {
        with_windowed_ring(|| {
            let fx = run_fixture(seed);
            fx.fed.telemetry().to_json()
        })
    };
    for seed in sweep_seeds() {
        let first = run(seed);
        let second = run(seed);
        assert_eq!(first, second, "seed {seed} must replay identically");
        assert!(first.contains("\"schema\":\"mrom.telemetry.v1\""));
    }
}

/// Satellite: same `SimNet` seed ⇒ byte-identical snapshot JSON across
/// two *chaos* runs — loss, duplication, reordering, partitions, and
/// crashes included — for every scenario, swept over `MROM_CHAOS_SEEDS`.
/// Ring mode takes no wall clocks, so the windowed aggregates are a
/// pure function of the seed.
#[test]
fn windowed_snapshot_is_byte_identical_across_chaos_replays() {
    let run = |scenario, seed| {
        with_windowed_ring(|| {
            let report = run_scenario(scenario, seed).unwrap();
            report.assert_invariants();
            mrom_obs::telemetry_snapshot().to_json()
        })
    };
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let first = run(scenario, seed);
            let second = run(scenario, seed);
            assert_eq!(
                first,
                second,
                "{} seed {seed}: windowed telemetry must replay byte-identically",
                scenario.name()
            );
            assert!(
                first.contains("\"invocations\""),
                "{} seed {seed}: chaos run populates object profiles",
                scenario.name()
            );
        }
    }
}
