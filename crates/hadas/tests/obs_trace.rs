//! Cross-node trace continuity: a federation round trip is ONE
//! causally-linked trace. The sender-side operation span anchors the
//! trace, the wire protocol carries `(trace, parent_span)`, and the
//! receiving site's work joins the same trace instead of minting a
//! fresh one.

use hadas::{Federation, ProtocolMsg};
use mrom_core::{ClassSpec, DataItem, Method, MethodBody};
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_obs::{EventKind, ObsMode};
use mrom_value::{NodeId, ObjectId, Value};

fn two_sites() -> (Federation, NodeId, NodeId) {
    let cfg = NetworkConfig::new(7).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    let (home, away) = (NodeId(1), NodeId(2));
    fed.add_site(home).unwrap();
    fed.add_site(away).unwrap();
    fed.link(home, away).unwrap();
    (fed, home, away)
}

#[test]
fn object_hop_is_one_causally_linked_trace() {
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Ring);
    let (mut fed, home, away) = two_sites();
    let rt = fed.runtime_mut(home).unwrap();
    let agent = ClassSpec::new("agent")
        .fixed_data("x", DataItem::public(Value::Int(1)))
        .instantiate_as(rt.ids_mut().next_id(), None);
    let id = agent.id();
    rt.adopt(agent).unwrap();
    fed.dispatch_object(home, away, id).unwrap();
    mrom_obs::set_mode(ObsMode::Disabled);

    let events = mrom_obs::ring_snapshot();
    let op = events
        .iter()
        .find(|e| {
            matches!(
                e.kind,
                EventKind::FedOpStart {
                    op: "dispatch_object",
                    ..
                }
            )
        })
        .expect("dispatch opens an operation span");
    let trace = op.event.trace;
    assert_ne!(trace, 0, "the hop runs under a real trace");

    // Both halves of the hop — the dispatch at `home` and the adoption
    // at `away` — carry the same trace id.
    let dispatched = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::ObjectDispatched { .. }))
        .expect("sender half recorded");
    let adopted = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::ObjectAdopted { .. }))
        .expect("receiver half recorded");
    assert_eq!(dispatched.event.trace, trace);
    assert_eq!(adopted.event.trace, trace);
    match adopted.kind {
        EventKind::ObjectAdopted { object, at } => {
            assert_eq!(object, id);
            assert_eq!(at, away);
        }
        _ => unreachable!(),
    }
}

#[test]
fn remote_invocation_joins_the_senders_trace() {
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Ring);
    let (mut fed, home, away) = two_sites();
    let rt = fed.runtime_mut(away).unwrap();
    let svc = ClassSpec::new("svc")
        .fixed_method(
            "ping",
            Method::public(MethodBody::script("return 7;").unwrap()),
        )
        .instantiate_as(rt.ids_mut().next_id(), None);
    let target = svc.id();
    rt.adopt(svc).unwrap();
    let caller = fed.runtime_mut(home).unwrap().ids_mut().next_id();
    let out = fed
        .remote_invoke(home, away, caller, target, "ping", &[])
        .unwrap();
    mrom_obs::set_mode(ObsMode::Disabled);
    assert_eq!(out, Value::Int(7));

    let events = mrom_obs::ring_snapshot();
    let op = events
        .iter()
        .find(|e| {
            matches!(
                e.kind,
                EventKind::FedOpStart {
                    op: "remote_invoke",
                    ..
                }
            )
        })
        .expect("remote_invoke opens an operation span");
    // The invocation executed at `away` is a child span of the sender's
    // operation span, in the same trace.
    let start = events
        .iter()
        .find(|e| matches!(&e.kind, EventKind::InvokeStart { method, .. } if method == "ping"))
        .expect("remote execution recorded");
    assert_ne!(op.event.trace, 0);
    assert_eq!(start.event.trace, op.event.trace);
    assert_eq!(start.event.parent, op.event.span);
}

/// The wire continuation itself, across genuinely separate recorders:
/// the receiving side here is a different thread, so nothing links the
/// two halves except the `(trace, parent_span)` fields of the message.
#[test]
fn trace_context_survives_the_wire_to_a_fresh_recorder() {
    let caller = ObjectId::SYSTEM;
    let target = ObjectId::SYSTEM;
    // Sender thread: an operation span is open when the message encodes.
    let (sent_trace, sent_span, bytes) = std::thread::spawn(move || {
        mrom_obs::set_mode(ObsMode::Ring);
        let h = mrom_obs::fed_op_start(NodeId(1), "remote_invoke");
        let (trace, parent_span) = mrom_obs::current_trace_context();
        let msg = ProtocolMsg::InvokeReq {
            req_id: 9,
            caller,
            target,
            method: "m".to_owned(),
            args: vec![],
            trace,
            parent_span,
        };
        let bytes = msg.encode();
        mrom_obs::fed_op_end(h, "remote_invoke", true);
        (trace, parent_span, bytes)
    })
    .join()
    .unwrap();
    assert_ne!(sent_trace, 0);
    assert_ne!(sent_span, 0);

    // Receiver thread: a fresh thread-local recorder with no history.
    let events = std::thread::spawn(move || {
        mrom_obs::set_mode(ObsMode::Ring);
        let Ok(ProtocolMsg::InvokeReq {
            trace, parent_span, ..
        }) = ProtocolMsg::decode(&bytes)
        else {
            panic!("message decodes");
        };
        let _scope = mrom_obs::continue_trace(trace, parent_span);
        let h = mrom_obs::invoke_start(target, "m", caller, 0);
        mrom_obs::invoke_end(h, target, "m", "ok", 0);
        mrom_obs::ring_snapshot()
    })
    .join()
    .unwrap();
    let start = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::InvokeStart { .. }))
        .expect("remote half recorded");
    assert_eq!(start.event.trace, sent_trace, "remote half joins the trace");
    assert_eq!(
        start.event.parent, sent_span,
        "remote root span hangs off the sender's operation span"
    );
}
