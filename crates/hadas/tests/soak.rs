//! Randomized soak test: hundreds of interleaved federation operations
//! (links, imports, calls, migrations, update pushes, partitions, agent
//! dispatches) driven by a seeded RNG, with conservation invariants
//! checked throughout and exact determinism across reruns.

use hadas::scenarios::employee_db_class;
use hadas::{AmbassadorSpec, Federation, HadasError, UpdateOp};
use mrom_core::{Acl, DataItem, Method, MethodBody, ObjectBuilder};
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_value::{NodeId, ObjectId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SITES: u64 = 6;
const OPS: usize = 300;

struct Soak {
    fed: Federation,
    nodes: Vec<NodeId>,
    rng: StdRng,
    /// Every guest ambassador we imported: (host, id).
    ambassadors: Vec<(NodeId, ObjectId)>,
    /// Roaming agents: (current host, id).
    agents: Vec<(NodeId, ObjectId)>,
    /// Pairs currently partitioned.
    partitions: Vec<(NodeId, NodeId)>,
    log: Vec<String>,
}

impl Soak {
    fn new(seed: u64) -> Soak {
        let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::lan());
        let mut fed = Federation::new(cfg);
        let nodes: Vec<NodeId> = (1..=SITES).map(NodeId).collect();
        for &n in &nodes {
            fed.add_site(n).unwrap();
        }
        // Full mesh of links up front; the soak exercises the data plane.
        for &a in &nodes {
            for &b in &nodes {
                if a < b {
                    fed.link(a, b).unwrap();
                }
            }
        }
        // One DB APO at site 1.
        let apo = employee_db_class()
            .instantiate_as(fed.runtime_mut(nodes[0]).unwrap().ids_mut().next_id(), None);
        fed.integrate_apo(
            nodes[0],
            "db",
            apo,
            AmbassadorSpec::relay_only()
                .with_methods(["count"])
                .with_data(["employees"]),
        )
        .unwrap();
        Soak {
            fed,
            nodes,
            rng: StdRng::seed_from_u64(seed ^ 0xabcdef),
            ambassadors: Vec::new(),
            agents: Vec::new(),
            partitions: Vec::new(),
            log: Vec::new(),
        }
    }

    fn pick_node(&mut self) -> NodeId {
        self.nodes[self.rng.random_range(0..self.nodes.len())]
    }

    fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions
            .iter()
            .any(|&(x, y)| (x, y) == (a.min(b), a.max(b)))
    }

    fn spawn_agent(&mut self, at: NodeId) -> ObjectId {
        let rt = self.fed.runtime_mut(at).unwrap();
        let agent = ObjectBuilder::new(rt.ids_mut().next_id())
            .class("soak-agent")
            .meta_acl(Acl::Public)
            .ext_data("hops", DataItem::public(Value::Int(0)))
            .ext_method(
                "on_arrival",
                Method::public(
                    MethodBody::script(
                        "param ctx; self.set(\"hops\", self.get(\"hops\") + 1); return true;",
                    )
                    .unwrap(),
                ),
            )
            .build();
        let id = agent.id();
        rt.adopt(agent).unwrap();
        id
    }

    fn step(&mut self, i: usize) {
        let hub = self.nodes[0];
        match self.rng.random_range(0..10u32) {
            // Import another db ambassador somewhere.
            0 | 1 => {
                let host = self.pick_node();
                if host == hub || self.partitioned(host, hub) {
                    return;
                }
                let amb = self
                    .fed
                    .import_apo(host, hub, "db")
                    .unwrap_or_else(|e| panic!("op {i}: import at {host} failed: {e}"));
                self.ambassadors.push((host, amb));
                self.log.push(format!("import {host} {amb}"));
            }
            // Call through a random ambassador.
            2..=4 => {
                if self.ambassadors.is_empty() {
                    return;
                }
                let (host, amb) =
                    self.ambassadors[self.rng.random_range(0..self.ambassadors.len())];
                let caller = self.fed.runtime_mut(host).unwrap().ids_mut().next_id();
                // `count` is always local, so partitions never matter.
                let out = self
                    .fed
                    .call_through_ambassador(host, caller, amb, "count", &[])
                    .unwrap_or_else(|e| panic!("op {i}: local count failed: {e}"));
                assert!(
                    out == Value::Int(4) || out.as_str().is_some(),
                    "op {i}: unexpected count result {out}"
                );
                self.log.push(format!("call {host} {amb}"));
            }
            // Push a (benign, idempotent) update to all ambassadors.
            5 => {
                if self.ambassadors.is_empty() {
                    return;
                }
                let blocked = self
                    .ambassadors
                    .iter()
                    .any(|&(host, _)| self.partitioned(host, hub));
                let result = self.fed.push_update(
                    hub,
                    "db",
                    &[UpdateOp::SetData(
                        "employees".into(),
                        Value::map::<String, _>([]),
                    )],
                );
                match result {
                    Ok(n) => {
                        assert!(!blocked, "op {i}: push succeeded across a partition");
                        assert_eq!(n, self.ambassadors.len(), "op {i}");
                        // Restore the table for later counts... count uses
                        // len(employees) so put 4 entries back.
                        let table = employee_db_class()
                            .instantiate(&mut mrom_value::IdGenerator::new(NodeId(999)))
                            .read_data(ObjectId::SYSTEM, "employees")
                            .unwrap();
                        self.fed
                            .push_update(hub, "db", &[UpdateOp::SetData("employees".into(), table)])
                            .ok();
                    }
                    Err(HadasError::Timeout { .. }) => {
                        assert!(blocked, "op {i}: push timed out without a partition");
                    }
                    Err(e) => panic!("op {i}: push failed unexpectedly: {e}"),
                }
                self.log.push(format!("push blocked={blocked}"));
            }
            // Spawn or move an agent.
            6 | 7 => {
                if self.agents.is_empty() || self.rng.random_bool(0.3) {
                    let at = self.pick_node();
                    let id = self.spawn_agent(at);
                    self.agents.push((at, id));
                    self.log.push(format!("spawn {at} {id}"));
                } else {
                    let idx = self.rng.random_range(0..self.agents.len());
                    let (from, id) = self.agents[idx];
                    let to = self.pick_node();
                    if to == from {
                        return;
                    }
                    match self.fed.dispatch_object(from, to, id) {
                        Ok(()) => {
                            self.agents[idx] = (to, id);
                            self.log.push(format!("move {from}->{to} {id}"));
                        }
                        Err(HadasError::Timeout { .. }) => {
                            assert!(
                                self.partitioned(from, to),
                                "op {i}: move timed out without a partition"
                            );
                            self.log.push(format!("move-blocked {from}->{to}"));
                        }
                        Err(e) => panic!("op {i}: move failed: {e}"),
                    }
                }
            }
            // Partition or heal a random pair (never isolate the hub so the
            // import path stays exercised).
            8 => {
                let a = self.pick_node();
                let b = self.pick_node();
                if a == b || a == hub || b == hub {
                    return;
                }
                let key = (a.min(b), a.max(b));
                if let Some(pos) = self.partitions.iter().position(|&p| p == key) {
                    self.partitions.remove(pos);
                    self.fed.net_config_mut().heal(a, b);
                    self.log.push(format!("heal {a} {b}"));
                } else {
                    self.partitions.push(key);
                    self.fed.net_config_mut().partition(a, b);
                    self.log.push(format!("cut {a} {b}"));
                }
            }
            // Remote invoke straight at the hub APO.
            _ => {
                let from = self.pick_node();
                if from == hub || self.partitioned(from, hub) {
                    return;
                }
                let apo = self.fed.apo_id(hub, "db").unwrap();
                let caller = self.fed.runtime_mut(from).unwrap().ids_mut().next_id();
                let out = self
                    .fed
                    .remote_invoke(from, hub, caller, apo, "salary_of", &[Value::from("bob")])
                    .unwrap_or_else(|e| panic!("op {i}: remote invoke failed: {e}"));
                assert_eq!(out, Value::Int(95), "op {i}");
                self.log.push(format!("remote {from}"));
            }
        }
        self.check_invariants(i);
    }

    fn check_invariants(&self, i: usize) {
        // Conservation: every tracked agent exists at exactly its recorded
        // host and nowhere else.
        for &(host, id) in &self.agents {
            for &n in &self.nodes {
                let present = self.fed.runtime(n).unwrap().object(id).is_some();
                assert_eq!(
                    present,
                    n == host,
                    "op {i}: agent {id} presence wrong at {n} (expected host {host})"
                );
            }
        }
        // Every ambassador stays at its import host.
        for &(host, amb) in &self.ambassadors {
            assert!(
                self.fed.runtime(host).unwrap().object(amb).is_some(),
                "op {i}: ambassador {amb} vanished from {host}"
            );
        }
        // Traffic accounting stays coherent.
        let s = self.fed.net_stats();
        assert!(
            s.messages_delivered + s.messages_dropped <= s.messages_sent,
            "op {i}: stats incoherent"
        );
    }

    fn run(mut self) -> (Vec<String>, u64, u64) {
        for i in 0..OPS {
            self.step(i);
        }
        let s = self.fed.net_stats();
        (self.log, s.messages_sent, s.bytes_sent)
    }
}

#[test]
fn soak_runs_clean_under_random_interleavings() {
    let (log, sent, bytes) = Soak::new(2026).run();
    assert!(log.len() > 100, "only {} effective ops", log.len());
    assert!(sent > 100, "only {sent} messages");
    assert!(bytes > 10_000, "only {bytes} bytes");
}

#[test]
fn soak_is_deterministic_per_seed() {
    let a = Soak::new(7).run();
    let b = Soak::new(7).run();
    assert_eq!(a, b);
    let c = Soak::new(8).run();
    assert_ne!(a.0, c.0);
}
