//! Seed-swept chaos tests: every scenario must uphold the global
//! invariants under every seed, and the same seed must reproduce the
//! identical run.
//!
//! The sweep width defaults to a fast smoke value; CI raises it via the
//! `MROM_CHAOS_SEEDS` environment variable.

use hadas::chaos::{run_scenario, run_scenario_with_site_workers, ChaosScenario};
use mrom_obs::{EventKind, ObsMode};

/// Seeds to sweep: `MROM_CHAOS_SEEDS` (a count) or a fast default.
fn sweep_seeds() -> Vec<u64> {
    let count = std::env::var("MROM_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(3);
    (1..=count.max(1)).collect()
}

#[test]
fn every_scenario_upholds_invariants_across_the_seed_sweep() {
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let report = run_scenario(scenario, seed)
                .unwrap_or_else(|e| panic!("{} seed {seed} errored: {e}", scenario.name()));
            report.assert_invariants();
        }
    }
}

#[test]
fn same_seed_reproduces_the_identical_run() {
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let first = run_scenario(scenario, seed).unwrap();
            let second = run_scenario(scenario, seed).unwrap();
            // Full-report equality covers NetStats field for field:
            // sends, deliveries, drops, duplicates, bytes, per-link maps.
            assert_eq!(
                first,
                second,
                "{} seed {seed} must replay identically",
                scenario.name()
            );
        }
    }
}

#[test]
fn concurrent_site_upholds_invariants_across_the_seed_sweep() {
    // The ConcurrentSite matrix: every fault scenario with every site
    // draining its invocation inbox on a 4-thread pool. The invariants
    // are identical to the single-threaded sweep — concurrency must not
    // weaken exactly-once delivery, single-copy migration, or recovery.
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let report = run_scenario_with_site_workers(scenario, seed, 4).unwrap_or_else(|e| {
                panic!("{} seed {seed} workers=4 errored: {e}", scenario.name())
            });
            report.assert_invariants();
        }
    }
}

#[test]
fn concurrent_site_replays_identically_per_seed() {
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let first = run_scenario_with_site_workers(scenario, seed, 4).unwrap();
            let second = run_scenario_with_site_workers(scenario, seed, 4).unwrap();
            assert_eq!(
                first,
                second,
                "{} seed {seed} workers=4 must replay identically",
                scenario.name()
            );
        }
    }
}

#[test]
fn different_seeds_explore_different_schedules() {
    // Not an invariant, a sanity check on the harness itself: a faulty
    // scenario that ignored its seed would silently shrink the sweep to
    // one schedule.
    let a = run_scenario(ChaosScenario::LossAndRetry, 1).unwrap();
    let b = run_scenario(ChaosScenario::LossAndRetry, 2).unwrap();
    assert_ne!(a.stats, b.stats, "seeds drive the fault schedule");
}

#[test]
fn retries_stay_causally_linked_to_their_operation() {
    // Under lost acknowledgements the dispatch retries several times;
    // every retry event and the eventual adoption must sit on the same
    // trace as the operation span that started the dispatch.
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Ring);
    let report = run_scenario(ChaosScenario::LostAcks, 5).unwrap();
    mrom_obs::set_mode(ObsMode::Disabled);
    report.assert_invariants();

    let events = mrom_obs::ring_snapshot();
    let op = events
        .iter()
        .find(|e| {
            matches!(
                e.kind,
                EventKind::FedOpStart {
                    op: "dispatch_object",
                    ..
                }
            )
        })
        .expect("dispatch opens an operation span");
    let trace = op.event.trace;
    assert_ne!(trace, 0);

    let retries: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FedRetry { .. }))
        .collect();
    assert!(!retries.is_empty(), "lost acks force retries");
    for retry in &retries {
        assert_eq!(
            retry.event.trace, trace,
            "retries belong to the operation that issued them"
        );
    }
    let adopted = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::ObjectAdopted { .. }))
        .expect("the move landed");
    assert_eq!(adopted.event.trace, trace, "adoption joins the same trace");

    let dedups = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FedDedup { .. }))
        .count();
    assert!(
        dedups > 0,
        "retransmitted MoveObject hits the receiver dedup cache"
    );
}

#[test]
fn crash_and_restart_are_observable() {
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Ring);
    let report = run_scenario(ChaosScenario::CrashMidMigration, 3).unwrap();
    let metrics = mrom_obs::metrics_snapshot();
    mrom_obs::set_mode(ObsMode::Disabled);
    report.assert_invariants();

    let events = mrom_obs::ring_snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SiteCrash { .. })),
        "crashes are recorded"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SiteRestart { restored, .. } if restored > 0)),
        "restarts report what the depot brought back"
    );
    assert!(metrics.federation.site_crashes >= 2);
    assert_eq!(
        metrics.federation.site_crashes,
        metrics.federation.site_restarts
    );
}

/// Satellite for the effect system: under [`hadas::RetryPolicy::IdempotentOnly`]
/// a lossy network may re-post an invocation only when the target
/// method's interprocedural effect signature proves it idempotent.
mod idempotent_only_gating {
    use hadas::{Federation, HadasError, RetryPolicy};
    use mrom_core::{ClassSpec, DataItem, Method, MethodBody};
    use mrom_net::{LinkConfig, NetworkConfig, SimTime};
    use mrom_obs::{EventKind, ObsMode};
    use mrom_value::{NodeId, ObjectId, Value};

    fn scripted(src: &str) -> Method {
        Method::public(MethodBody::script(src).unwrap())
    }

    /// One lossy-network run: a mixed bump/reset workload against a
    /// remote counter whose `bump` is provably non-idempotent and whose
    /// `reset` is provably idempotent. Returns every call's outcome
    /// (`Ok` value or timeout attempt count), the counter's final value,
    /// and how many `InvokeReq` retries the federation posted.
    fn run(seed: u64) -> (Vec<Result<Value, u32>>, i64, u64) {
        mrom_obs::reset();
        mrom_obs::set_mode(ObsMode::Ring);
        let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::lan());
        let mut fed = Federation::new(cfg);
        let (a, b) = (NodeId(1), NodeId(2));
        fed.add_site(a).unwrap();
        fed.add_site(b).unwrap();
        fed.link(a, b).unwrap();
        let obj = ClassSpec::new("counter")
            .fixed_data("n", DataItem::public(Value::Int(0)))
            .fixed_method(
                "bump",
                scripted("self.set(\"n\", self.get(\"n\") + 1); return self.get(\"n\");"),
            )
            .fixed_method("reset", scripted("self.set(\"n\", 0); return null;"))
            .instantiate_as(fed.runtime_mut(b).unwrap().ids_mut().next_id(), None);
        let id = obj.id();
        fed.runtime_mut(b).unwrap().adopt(obj).unwrap();
        fed.set_retry_policy(RetryPolicy::idempotent_only(
            4,
            SimTime::from_millis(20),
            2,
            0,
        ));
        fed.net_config_mut()
            .set_symmetric_link(a, b, LinkConfig::lan().loss_probability(0.4));
        let caller = fed.ioo_id(a).unwrap();
        let mut outcomes = Vec::new();
        for i in 0..10 {
            let method = if i % 2 == 0 { "bump" } else { "reset" };
            outcomes.push(
                fed.remote_invoke(a, b, caller, id, method, &[])
                    .map_err(|e| match e {
                        HadasError::Timeout { attempts, .. } => attempts,
                        other => panic!("only timeouts expected: {other}"),
                    }),
            );
        }
        mrom_obs::set_mode(ObsMode::Disabled);
        let invoke_retries = mrom_obs::ring_snapshot()
            .into_iter()
            .filter(|te| matches!(&te.kind, EventKind::FedRetry { op, .. } if *op == "invoke_req"))
            .count() as u64;
        let n = fed
            .runtime(b)
            .unwrap()
            .object(id)
            .unwrap()
            .read_data(ObjectId::SYSTEM, "n")
            .unwrap()
            .as_int()
            .unwrap();
        (outcomes, n, invoke_retries)
    }

    #[test]
    fn non_idempotent_invokes_are_never_auto_retried() {
        let mut total_retries = 0;
        for seed in super::sweep_seeds() {
            let (outcomes, _, retries) = run(seed);
            total_retries += retries;
            for (i, outcome) in outcomes.iter().enumerate() {
                match (i % 2 == 0, outcome) {
                    // bump: the signature cannot prove idempotence, so a
                    // lost message fails on the single allowed attempt.
                    (true, Err(attempts)) => {
                        assert_eq!(*attempts, 1, "seed {seed} call {i}: bump must not retry");
                    }
                    // reset: provably idempotent — a failure means the
                    // full retry budget was spent first.
                    (false, Err(attempts)) => {
                        assert_eq!(
                            *attempts, 4,
                            "seed {seed} call {i}: reset retries to budget"
                        );
                    }
                    (_, Ok(_)) => {}
                }
            }
        }
        // With 40% loss across the sweep, at least one reset retry must
        // have fired — proving the gate passes idempotent invocations.
        assert!(total_retries > 0, "idempotent invocations do retry");
    }

    #[test]
    fn gated_runs_replay_byte_identically_per_seed() {
        for seed in super::sweep_seeds() {
            assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
        }
    }
}
