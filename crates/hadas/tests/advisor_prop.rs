//! Property test for the Advisor's decision function: `decide` is a
//! deterministic, side-effect-free pure function of `(snapshot, config,
//! candidates)`.
//!
//! Rather than trusting the `&self` signature, the test exercises it:
//! a seeded generator builds a randomized fleet snapshot (caller
//! matrices, degraded links, unsafe/busy candidates), then invokes
//! `decide` 1000 times — re-assembling the candidate map in a freshly
//! shuffled insertion order every round — and demands byte-identical
//! passes. Along the way it checks the safety property the harness
//! relies on: no decision ever names a migration-unsafe or busy object.

use std::collections::BTreeMap;

use hadas::{Advisor, AdvisorConfig, AdvisorDecision, AdvisorInput, Candidate};
use mrom_net::NetStats;
use mrom_obs::{ObjectProfile, TelemetrySnapshot};
use mrom_value::{NodeId, ObjectId};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn oid(n: u32) -> ObjectId {
    ObjectId::from_parts(NodeId(77), n, 0)
}

/// Fisher–Yates over an index vector; the rand stub has no shuffle.
fn shuffled<T: Clone>(items: &[T], rng: &mut StdRng) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

struct Scenario {
    snapshot: TelemetrySnapshot,
    stats: NetStats,
    /// `(object, candidate)` pairs in generation order; rounds shuffle
    /// this before folding it into the input's `BTreeMap`.
    candidates: Vec<(ObjectId, Candidate)>,
}

/// A randomized but seed-deterministic fleet: ~24 objects across 8
/// sites with Zipf-ish caller weights, every third object
/// migration-unsafe, every fifth busy, plus a couple of lossy links.
fn scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut snapshot = TelemetrySnapshot::default();
    let mut stats = NetStats::default();
    let mut candidates = Vec::new();
    for n in 0..24u32 {
        let id = oid(n);
        let host = NodeId(u64::from(n % 8));
        let mut profile = ObjectProfile::default();
        let callers = rng.random_range(1..4usize);
        for _ in 0..callers {
            let site = NodeId(rng.random_range(0..8u64));
            let weight = rng.random_range(1..40u64);
            *profile.remote_callers.entry(site).or_insert(0) += weight;
            profile.invocations += weight;
        }
        snapshot.objects.insert(id, profile);
        candidates.push((
            id,
            Candidate {
                host,
                migration_safe: n % 3 != 0,
                idempotent_permille: rng.random_range(0..=1000u64),
                busy: n % 5 == 0,
            },
        ));
    }
    for (src, dst, sent, delivered, dropped) in
        [(0u64, 1u64, 40u64, 320u64, 20u64), (2, 3, 30, 900, 1)]
    {
        stats
            .per_link
            .insert((NodeId(src), NodeId(dst)), (sent, delivered));
        stats
            .per_link_dropped
            .insert((NodeId(src), NodeId(dst)), dropped);
    }
    Scenario {
        snapshot,
        stats,
        candidates,
    }
}

#[test]
fn decide_is_pure_and_order_insensitive_across_1000_shuffles() {
    for seed in [3u64, 11, 2026] {
        let sc = scenario(seed);
        let advisor = Advisor::new(AdvisorConfig::standard());
        let mut shuffle_rng = StdRng::seed_from_u64(seed ^ 0xD00D);
        let reference = advisor.decide(&AdvisorInput {
            epoch: 4,
            telemetry: &sc.snapshot,
            stats: &sc.stats,
            candidates: sc.candidates.iter().copied().collect(),
        });
        for round in 0..1000 {
            let order = shuffled(&sc.candidates, &mut shuffle_rng);
            let input = AdvisorInput {
                epoch: 4,
                telemetry: &sc.snapshot,
                stats: &sc.stats,
                candidates: order.into_iter().collect::<BTreeMap<_, _>>(),
            };
            let pass = advisor.decide(&input);
            assert_eq!(
                pass, reference,
                "seed {seed} round {round}: decide must be a pure function \
                 of (snapshot, config) regardless of candidate order"
            );
        }
    }
}

#[test]
fn decide_never_names_unsafe_or_busy_objects() {
    for seed in 0..32u64 {
        let sc = scenario(seed);
        let advisor = Advisor::new(AdvisorConfig::standard());
        let candidates: BTreeMap<_, _> = sc.candidates.iter().copied().collect();
        let pass = advisor.decide(&AdvisorInput {
            epoch: 0,
            telemetry: &sc.snapshot,
            stats: &sc.stats,
            candidates: candidates.clone(),
        });
        for decision in &pass.decisions {
            if let AdvisorDecision::Migrate { object, .. } = decision {
                let cand = &candidates[object];
                assert!(
                    cand.migration_safe,
                    "seed {seed}: named migration-unsafe object {object:?}"
                );
                assert!(!cand.busy, "seed {seed}: named busy object {object:?}");
            }
        }
    }
}

#[test]
fn decide_leaves_advisor_state_untouched() {
    // `decide` borrows immutably, but the ledger state it *reads*
    // (pending evidence, dwell clocks) must also be observably
    // unchanged: a decide-heavy epoch followed by one more decide
    // yields exactly what a fresh advisor yields.
    let sc = scenario(9);
    let candidates: BTreeMap<_, _> = sc.candidates.iter().copied().collect();
    let input = AdvisorInput {
        epoch: 1,
        telemetry: &sc.snapshot,
        stats: &sc.stats,
        candidates,
    };
    let veteran = Advisor::new(AdvisorConfig::standard());
    for _ in 0..100 {
        let _ = veteran.decide(&input);
    }
    let fresh = Advisor::new(AdvisorConfig::standard());
    assert_eq!(veteran.decide(&input), fresh.decide(&input));
}
