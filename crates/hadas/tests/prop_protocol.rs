//! Property tests for the HADAS wire protocol: every message round-trips;
//! the decoder is total on hostile input.

use hadas::{ProtocolMsg, UpdateOp};
use mrom_value::{NodeId, ObjectId, Value};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = ObjectId> {
    (any::<u64>(), any::<u32>(), any::<u32>())
        .prop_map(|(n, s, e)| ObjectId::from_parts(NodeId(n), s, e))
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        ".{0,12}".prop_map(Value::Str),
        arb_id().prop_map(Value::ObjectRef),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::btree_map(".{0,8}", inner, 0..4).prop_map(Value::Map),
        ]
    })
}

fn arb_update_op() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        (".{1,10}", arb_value()).prop_map(|(n, v)| UpdateOp::AddMethod(n, v)),
        (".{1,10}", arb_value()).prop_map(|(n, v)| UpdateOp::SetMethod(n, v)),
        ".{1,10}".prop_map(UpdateOp::DeleteMethod),
        (".{1,10}", arb_value()).prop_map(|(n, v)| UpdateOp::AddData(n, v)),
        (".{1,10}", arb_value()).prop_map(|(n, v)| UpdateOp::SetData(n, v)),
        ".{1,10}".prop_map(UpdateOp::InstallMetaInvoke),
        Just(UpdateOp::UninstallMetaInvoke),
    ]
}

fn arb_msg() -> impl Strategy<Value = ProtocolMsg> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_id()).prop_map(|(r, n, i)| ProtocolMsg::LinkReq {
            req_id: r,
            from: NodeId(n),
            from_ioo: i,
        }),
        (
            any::<u64>(),
            arb_id(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(r, i, img)| ProtocolMsg::LinkAck {
                req_id: r,
                ioo: i,
                ambassador_image: img,
            }),
        (any::<u64>(), any::<u64>(), arb_id(), ".{0,16}").prop_map(|(r, n, i, a)| {
            ProtocolMsg::ImportReq {
                req_id: r,
                from: NodeId(n),
                from_ioo: i,
                apo_name: a,
            }
        }),
        (
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..64),
            arb_id(),
            prop::collection::vec(".{0,10}".prop_map(String::from), 0..4)
        )
            .prop_map(|(r, img, o, ms)| ProtocolMsg::ExportAck {
                req_id: r,
                ambassador_image: img,
                origin_apo: o,
                remote_methods: ms,
            }),
        (any::<u64>(), ".{0,40}").prop_map(|(r, reason)| ProtocolMsg::Error { req_id: r, reason }),
        (
            any::<u64>(),
            arb_id(),
            arb_id(),
            ".{0,12}",
            prop::collection::vec(arb_value(), 0..3),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(r, c, t, m, a, tr, ps)| ProtocolMsg::InvokeReq {
                req_id: r,
                caller: c,
                target: t,
                method: m,
                args: a,
                trace: tr,
                parent_span: ps,
            }),
        (
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..64),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(r, img, tr, ps)| ProtocolMsg::MoveObject {
                req_id: r,
                image: img,
                trace: tr,
                parent_span: ps,
            }),
        (any::<u64>(), arb_id()).prop_map(|(r, a)| ProtocolMsg::MoveAck {
            req_id: r,
            adopted: a,
        }),
        (any::<u64>(), arb_value()).prop_map(|(r, v)| ProtocolMsg::InvokeResp {
            req_id: r,
            result: v,
        }),
        (
            any::<u64>(),
            arb_id(),
            arb_id(),
            prop::collection::vec(arb_update_op(), 0..4)
        )
            .prop_map(|(r, o, t, ops)| ProtocolMsg::UpdateReq {
                req_id: r,
                origin: o,
                target: t,
                ops,
            }),
        (any::<u64>(), any::<u16>()).prop_map(|(r, a)| ProtocolMsg::UpdateAck {
            req_id: r,
            applied: a as usize,
        }),
    ]
}

proptest! {
    /// Every protocol message round-trips bit-exactly.
    #[test]
    fn messages_round_trip(msg in arb_msg()) {
        let bytes = msg.encode();
        let back = ProtocolMsg::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(back.req_id(), msg.req_id());
    }

    /// Truncated messages are rejected, never panic.
    #[test]
    fn truncations_fail_cleanly(msg in arb_msg(), frac in 0.0f64..1.0) {
        let bytes = msg.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(ProtocolMsg::decode(&bytes[..cut]).is_err());
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_is_total(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = ProtocolMsg::decode(&data);
    }

    /// Bit flips either fail or decode to *some* message — never a panic.
    #[test]
    fn bitflips_are_total(msg in arb_msg(), bit in any::<u32>()) {
        let mut bytes = msg.encode();
        let idx = (bit as usize) % (bytes.len() * 8);
        bytes[idx / 8] ^= 1 << (idx % 8);
        let _ = ProtocolMsg::decode(&bytes);
    }

    /// Update ops round-trip through their value form.
    #[test]
    fn update_ops_round_trip(op in arb_update_op()) {
        prop_assert_eq!(UpdateOp::from_value(&op.to_value()).expect("decodes"), op);
    }
}
