//! HADAS errors.

use std::fmt;

use mrom_core::MromError;
use mrom_net::{NetError, SimTime};
use mrom_value::{NodeId, ObjectId};

/// Errors raised by the interoperability framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HadasError {
    /// The referenced site does not exist in this federation.
    UnknownSite(NodeId),
    /// A site with this node id is already part of the federation.
    DuplicateSite(NodeId),
    /// No APO registered under this name at the site.
    UnknownApo(String),
    /// An APO with this name is already integrated at the site.
    DuplicateApo(String),
    /// The operation requires a Link agreement that does not exist.
    NotLinked {
        /// Requesting site.
        from: NodeId,
        /// Target site.
        to: NodeId,
    },
    /// The referenced object is not a hosted ambassador here.
    UnknownAmbassador(ObjectId),
    /// A synchronous protocol exchange did not complete (partition, loss,
    /// or a dead peer), even after every retry the active policy allowed.
    Timeout {
        /// The operation that timed out.
        operation: String,
        /// Attempts made before giving up (1 = no retry policy).
        attempts: u32,
        /// Virtual time spent on the operation, first post to give-up.
        elapsed: SimTime,
    },
    /// The peer answered with an error.
    Remote(String),
    /// A protocol message failed to decode.
    BadMessage(String),
    /// Export was refused: the requested APO is not accessible to the
    /// requesting IOO.
    ExportDenied {
        /// The APO name requested.
        apo: String,
        /// The requesting site.
        requester: NodeId,
    },
    /// Static admission analysis refused mobile code at a federation
    /// boundary (object arrival, ambassador import, or ambassador
    /// instantiation) under a strict admission policy.
    AdmissionRefused {
        /// The site that refused.
        at: NodeId,
        /// The underlying [`MromError::AdmissionRejected`] with the full
        /// diagnostic list.
        rejection: MromError,
    },
    /// Under a strict admission policy the federation refused to
    /// dispatch an object whose interprocedural effect signatures prove
    /// a method depends on site-local world calls (peer `send`s or
    /// `spawn`s whose references would dangle after the move).
    MigrationRefused {
        /// The object whose dispatch was refused.
        object: ObjectId,
        /// The first method (in name order) with a site-bound signature.
        method: String,
        /// The site-local world calls that method transitively makes.
        world_calls: Vec<String>,
    },
    /// A depot (persistence) operation failed during checkpoint or
    /// crash recovery.
    Persist(String),
    /// An underlying model error.
    Model(MromError),
    /// An underlying network error.
    Net(NetError),
}

impl fmt::Display for HadasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HadasError::UnknownSite(n) => write!(f, "no site at node {n}"),
            HadasError::DuplicateSite(n) => write!(f, "site {n} already exists"),
            HadasError::UnknownApo(name) => write!(f, "no apo named {name:?} at this site"),
            HadasError::DuplicateApo(name) => write!(f, "apo {name:?} already integrated"),
            HadasError::NotLinked { from, to } => {
                write!(f, "sites {from} and {to} have no link agreement")
            }
            HadasError::UnknownAmbassador(id) => {
                write!(f, "object {id} is not an ambassador hosted here")
            }
            HadasError::Timeout {
                operation,
                attempts,
                elapsed,
            } => {
                write!(
                    f,
                    "{operation} did not complete after {attempts} attempt(s) over {elapsed} \
                     (message lost or peer down)"
                )
            }
            HadasError::Remote(detail) => write!(f, "remote error: {detail}"),
            HadasError::BadMessage(detail) => write!(f, "bad protocol message: {detail}"),
            HadasError::ExportDenied { apo, requester } => {
                write!(f, "export of {apo:?} denied to site {requester}")
            }
            HadasError::AdmissionRefused { at, rejection } => {
                write!(f, "site {at} refused admission: {rejection}")
            }
            HadasError::MigrationRefused {
                object,
                method,
                world_calls,
            } => {
                write!(
                    f,
                    "dispatch of {object} refused: method {method:?} is bound to site-local \
                     world calls {world_calls:?}"
                )
            }
            HadasError::Persist(detail) => write!(f, "persistence error: {detail}"),
            HadasError::Model(e) => write!(f, "model error: {e}"),
            HadasError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for HadasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HadasError::AdmissionRefused { rejection, .. } => Some(rejection),
            HadasError::Model(e) => Some(e),
            HadasError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MromError> for HadasError {
    fn from(e: MromError) -> Self {
        HadasError::Model(e)
    }
}

impl From<NetError> for HadasError {
    fn from(e: NetError) -> Self {
        HadasError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(HadasError::UnknownSite(NodeId(3))
            .to_string()
            .contains("n3"));
        assert!(HadasError::NotLinked {
            from: NodeId(1),
            to: NodeId(2)
        }
        .to_string()
        .contains("link"));
    }

    #[test]
    fn timeout_reports_attempts_and_elapsed_time() {
        let e = HadasError::Timeout {
            operation: "request ImportReq".into(),
            attempts: 4,
            elapsed: SimTime::from_millis(350),
        };
        let text = e.to_string();
        assert!(text.contains("request ImportReq"));
        assert!(text.contains("4 attempt(s)"));
        assert!(text.contains("350"), "elapsed sim-time shown: {text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<HadasError>();
    }
}
