//! The HADAS wire protocol.
//!
//! Every cross-site exchange is a [`ProtocolMsg`] lowered to a
//! [`mrom_value::Value`] map and encoded with the standard wire format, so
//! protocol traffic and mobile objects share one self-contained encoding.

use mrom_value::{wire, NodeId, ObjectId, Value};

use crate::error::HadasError;

/// One structural update pushed by an origin APO to a deployed Ambassador
/// (the dynamic-update mechanism of §5).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `addMethod(name, descriptor)`.
    AddMethod(String, Value),
    /// `setMethod(name, descriptor)`.
    SetMethod(String, Value),
    /// `deleteMethod(name)`.
    DeleteMethod(String),
    /// `addDataItem(name, value)`.
    AddData(String, Value),
    /// Ordinary `set(name, value)`.
    SetData(String, Value),
    /// Push a new meta-invoke level (the database-maintenance move).
    InstallMetaInvoke(String),
    /// Pop the topmost meta-invoke level.
    UninstallMetaInvoke,
}

impl UpdateOp {
    /// Lowers to a tagged list.
    pub fn to_value(&self) -> Value {
        match self {
            UpdateOp::AddMethod(n, d) => {
                Value::list([Value::from("add_method"), Value::Str(n.clone()), d.clone()])
            }
            UpdateOp::SetMethod(n, d) => {
                Value::list([Value::from("set_method"), Value::Str(n.clone()), d.clone()])
            }
            UpdateOp::DeleteMethod(n) => {
                Value::list([Value::from("delete_method"), Value::Str(n.clone())])
            }
            UpdateOp::AddData(n, v) => {
                Value::list([Value::from("add_data"), Value::Str(n.clone()), v.clone()])
            }
            UpdateOp::SetData(n, v) => {
                Value::list([Value::from("set_data"), Value::Str(n.clone()), v.clone()])
            }
            UpdateOp::InstallMetaInvoke(n) => {
                Value::list([Value::from("install_meta_invoke"), Value::Str(n.clone())])
            }
            UpdateOp::UninstallMetaInvoke => Value::list([Value::from("uninstall_meta_invoke")]),
        }
    }

    /// Rebuilds from [`UpdateOp::to_value`] output.
    ///
    /// # Errors
    ///
    /// [`HadasError::BadMessage`].
    pub fn from_value(v: &Value) -> Result<UpdateOp, HadasError> {
        let items = v.as_list().ok_or_else(|| bad("update op must be a list"))?;
        let tag = items
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| bad("update op missing tag"))?;
        let name = |i: usize| -> Result<String, HadasError> {
            items
                .get(i)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad("update op missing name"))
        };
        let val = |i: usize| -> Result<Value, HadasError> {
            items
                .get(i)
                .cloned()
                .ok_or_else(|| bad("update op missing value"))
        };
        Ok(match tag {
            "add_method" => UpdateOp::AddMethod(name(1)?, val(2)?),
            "set_method" => UpdateOp::SetMethod(name(1)?, val(2)?),
            "delete_method" => UpdateOp::DeleteMethod(name(1)?),
            "add_data" => UpdateOp::AddData(name(1)?, val(2)?),
            "set_data" => UpdateOp::SetData(name(1)?, val(2)?),
            "install_meta_invoke" => UpdateOp::InstallMetaInvoke(name(1)?),
            "uninstall_meta_invoke" => UpdateOp::UninstallMetaInvoke,
            other => return Err(bad(&format!("unknown update op {other:?}"))),
        })
    }
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolMsg {
    /// Link handshake request: "let our IOOs cooperate".
    LinkReq {
        /// Correlation id.
        req_id: u64,
        /// The requesting site.
        from: NodeId,
        /// The requester's IOO identity.
        from_ioo: ObjectId,
    },
    /// Link acknowledgement carrying an IOO-Ambassador image for the
    /// requester's Vicinity.
    LinkAck {
        /// Correlation id.
        req_id: u64,
        /// The replying site's IOO identity.
        ioo: ObjectId,
        /// Migration image of the IOO Ambassador.
        ambassador_image: Vec<u8>,
    },
    /// Import request naming an APO at the remote site.
    ImportReq {
        /// Correlation id.
        req_id: u64,
        /// The requesting site.
        from: NodeId,
        /// The requester's IOO identity (the principal Export checks).
        from_ioo: ObjectId,
        /// Name of the APO to import.
        apo_name: String,
    },
    /// Successful Export reply carrying the APO Ambassador as data.
    ExportAck {
        /// Correlation id.
        req_id: u64,
        /// Migration image of the freshly instantiated Ambassador.
        ambassador_image: Vec<u8>,
        /// Identity of the origin APO (for the relay path).
        origin_apo: ObjectId,
        /// Methods that did *not* migrate and must be relayed to the
        /// origin.
        remote_methods: Vec<String>,
    },
    /// Any request refused or failed remotely.
    Error {
        /// Correlation id.
        req_id: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Remote method invocation request.
    InvokeReq {
        /// Correlation id.
        req_id: u64,
        /// Principal on whose behalf the invocation runs.
        caller: ObjectId,
        /// Target object at the receiving site.
        target: ObjectId,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Value>,
        /// Originating trace id (0 = no active trace): lets the receiving
        /// site continue the sender's trace so a cross-site call is one
        /// causally-linked timeline.
        trace: u64,
        /// Span at the sender under which remote work nests (0 = none).
        parent_span: u64,
    },
    /// Remote invocation response.
    InvokeResp {
        /// Correlation id.
        req_id: u64,
        /// The returned value.
        result: Value,
    },
    /// Origin-pushed structural update for a deployed Ambassador.
    UpdateReq {
        /// Correlation id.
        req_id: u64,
        /// Acting principal (must be the Ambassador's origin).
        origin: ObjectId,
        /// The Ambassador to update.
        target: ObjectId,
        /// Ordered operations.
        ops: Vec<UpdateOp>,
    },
    /// Update acknowledgement.
    UpdateAck {
        /// Correlation id.
        req_id: u64,
        /// Number of operations applied.
        applied: usize,
    },
    /// Whole-object migration: an autonomous object (agent) moves itself
    /// to another site, as data.
    MoveObject {
        /// Correlation id.
        req_id: u64,
        /// The object's migration image.
        image: Vec<u8>,
        /// Originating trace id (0 = no active trace); travels with the
        /// object so the migration hop and everything the object does on
        /// arrival stay on one causally-linked trace.
        trace: u64,
        /// Span at the sender under which the hop nests (0 = none).
        parent_span: u64,
    },
    /// Migration acknowledgement.
    MoveAck {
        /// Correlation id.
        req_id: u64,
        /// Identity the receiving site adopted.
        adopted: ObjectId,
    },
    /// Asks whether the receiving site currently hosts `object`. Used to
    /// reconcile in-doubt migrations: a dispatch whose acknowledgement was
    /// lost leaves the origin unsure whether the destination adopted.
    QueryObject {
        /// Correlation id.
        req_id: u64,
        /// The identity in question.
        object: ObjectId,
    },
    /// Reply to [`ProtocolMsg::QueryObject`].
    QueryAck {
        /// Correlation id.
        req_id: u64,
        /// Whether the replying site hosts the object.
        hosted: bool,
    },
}

fn bad(detail: &str) -> HadasError {
    HadasError::BadMessage(detail.to_owned())
}

impl ProtocolMsg {
    /// The correlation id of any message.
    pub fn req_id(&self) -> u64 {
        match self {
            ProtocolMsg::LinkReq { req_id, .. }
            | ProtocolMsg::LinkAck { req_id, .. }
            | ProtocolMsg::ImportReq { req_id, .. }
            | ProtocolMsg::ExportAck { req_id, .. }
            | ProtocolMsg::Error { req_id, .. }
            | ProtocolMsg::InvokeReq { req_id, .. }
            | ProtocolMsg::InvokeResp { req_id, .. }
            | ProtocolMsg::UpdateReq { req_id, .. }
            | ProtocolMsg::UpdateAck { req_id, .. }
            | ProtocolMsg::MoveObject { req_id, .. }
            | ProtocolMsg::MoveAck { req_id, .. }
            | ProtocolMsg::QueryObject { req_id, .. }
            | ProtocolMsg::QueryAck { req_id, .. } => *req_id,
        }
    }

    /// The wire tag of the message (stable, for traffic accounting).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolMsg::LinkReq { .. } => "link_req",
            ProtocolMsg::LinkAck { .. } => "link_ack",
            ProtocolMsg::ImportReq { .. } => "import_req",
            ProtocolMsg::ExportAck { .. } => "export_ack",
            ProtocolMsg::Error { .. } => "error",
            ProtocolMsg::InvokeReq { .. } => "invoke_req",
            ProtocolMsg::InvokeResp { .. } => "invoke_resp",
            ProtocolMsg::UpdateReq { .. } => "update_req",
            ProtocolMsg::UpdateAck { .. } => "update_ack",
            ProtocolMsg::MoveObject { .. } => "move_object",
            ProtocolMsg::MoveAck { .. } => "move_ack",
            ProtocolMsg::QueryObject { .. } => "query_object",
            ProtocolMsg::QueryAck { .. } => "query_ack",
        }
    }

    /// Lowers the message to a value map.
    pub fn to_value(&self) -> Value {
        match self {
            ProtocolMsg::LinkReq {
                req_id,
                from,
                from_ioo,
            } => Value::map([
                ("op", Value::from("link_req")),
                ("req_id", Value::Int(*req_id as i64)),
                ("from", Value::Int(from.0 as i64)),
                ("from_ioo", Value::ObjectRef(*from_ioo)),
            ]),
            ProtocolMsg::LinkAck {
                req_id,
                ioo,
                ambassador_image,
            } => Value::map([
                ("op", Value::from("link_ack")),
                ("req_id", Value::Int(*req_id as i64)),
                ("ioo", Value::ObjectRef(*ioo)),
                ("image", Value::Bytes(ambassador_image.clone())),
            ]),
            ProtocolMsg::ImportReq {
                req_id,
                from,
                from_ioo,
                apo_name,
            } => Value::map([
                ("op", Value::from("import_req")),
                ("req_id", Value::Int(*req_id as i64)),
                ("from", Value::Int(from.0 as i64)),
                ("from_ioo", Value::ObjectRef(*from_ioo)),
                ("apo", Value::Str(apo_name.clone())),
            ]),
            ProtocolMsg::ExportAck {
                req_id,
                ambassador_image,
                origin_apo,
                remote_methods,
            } => Value::map([
                ("op", Value::from("export_ack")),
                ("req_id", Value::Int(*req_id as i64)),
                ("image", Value::Bytes(ambassador_image.clone())),
                ("origin_apo", Value::ObjectRef(*origin_apo)),
                (
                    "remote_methods",
                    Value::List(
                        remote_methods
                            .iter()
                            .map(|m| Value::Str(m.clone()))
                            .collect(),
                    ),
                ),
            ]),
            ProtocolMsg::Error { req_id, reason } => Value::map([
                ("op", Value::from("error")),
                ("req_id", Value::Int(*req_id as i64)),
                ("reason", Value::Str(reason.clone())),
            ]),
            ProtocolMsg::InvokeReq {
                req_id,
                caller,
                target,
                method,
                args,
                trace,
                parent_span,
            } => Value::map([
                ("op", Value::from("invoke_req")),
                ("req_id", Value::Int(*req_id as i64)),
                ("caller", Value::ObjectRef(*caller)),
                ("target", Value::ObjectRef(*target)),
                ("method", Value::Str(method.clone())),
                ("args", Value::List(args.clone())),
                ("trace", Value::Int(*trace as i64)),
                ("parent_span", Value::Int(*parent_span as i64)),
            ]),
            ProtocolMsg::InvokeResp { req_id, result } => Value::map([
                ("op", Value::from("invoke_resp")),
                ("req_id", Value::Int(*req_id as i64)),
                ("result", result.clone()),
            ]),
            ProtocolMsg::UpdateReq {
                req_id,
                origin,
                target,
                ops,
            } => Value::map([
                ("op", Value::from("update_req")),
                ("req_id", Value::Int(*req_id as i64)),
                ("origin", Value::ObjectRef(*origin)),
                ("target", Value::ObjectRef(*target)),
                (
                    "ops",
                    Value::List(ops.iter().map(UpdateOp::to_value).collect()),
                ),
            ]),
            ProtocolMsg::UpdateAck { req_id, applied } => Value::map([
                ("op", Value::from("update_ack")),
                ("req_id", Value::Int(*req_id as i64)),
                ("applied", Value::Int(*applied as i64)),
            ]),
            ProtocolMsg::MoveObject {
                req_id,
                image,
                trace,
                parent_span,
            } => Value::map([
                ("op", Value::from("move_object")),
                ("req_id", Value::Int(*req_id as i64)),
                ("image", Value::Bytes(image.clone())),
                ("trace", Value::Int(*trace as i64)),
                ("parent_span", Value::Int(*parent_span as i64)),
            ]),
            ProtocolMsg::MoveAck { req_id, adopted } => Value::map([
                ("op", Value::from("move_ack")),
                ("req_id", Value::Int(*req_id as i64)),
                ("adopted", Value::ObjectRef(*adopted)),
            ]),
            ProtocolMsg::QueryObject { req_id, object } => Value::map([
                ("op", Value::from("query_object")),
                ("req_id", Value::Int(*req_id as i64)),
                ("object", Value::ObjectRef(*object)),
            ]),
            ProtocolMsg::QueryAck { req_id, hosted } => Value::map([
                ("op", Value::from("query_ack")),
                ("req_id", Value::Int(*req_id as i64)),
                ("hosted", Value::Bool(*hosted)),
            ]),
        }
    }

    /// Encodes the message to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        wire::encode(&self.to_value())
    }

    /// Decodes a message from wire bytes.
    ///
    /// # Errors
    ///
    /// [`HadasError::BadMessage`] for undecodable or malformed buffers.
    pub fn decode(bytes: &[u8]) -> Result<ProtocolMsg, HadasError> {
        let v = wire::decode(bytes).map_err(|e| bad(&e.to_string()))?;
        ProtocolMsg::from_value(&v)
    }

    /// Rebuilds a message from its value form.
    ///
    /// # Errors
    ///
    /// [`HadasError::BadMessage`].
    pub fn from_value(v: &Value) -> Result<ProtocolMsg, HadasError> {
        let m = v.as_map().ok_or_else(|| bad("message must be a map"))?;
        let op = m
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing op"))?;
        let req_id = m
            .get("req_id")
            .and_then(Value::as_int)
            .ok_or_else(|| bad("missing req_id"))? as u64;
        let get_ref = |key: &str| -> Result<ObjectId, HadasError> {
            m.get(key)
                .and_then(Value::as_object_ref)
                .ok_or_else(|| bad(&format!("missing object ref {key:?}")))
        };
        let get_str = |key: &str| -> Result<String, HadasError> {
            m.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("missing string {key:?}")))
        };
        let get_bytes = |key: &str| -> Result<Vec<u8>, HadasError> {
            m.get(key)
                .and_then(Value::as_bytes)
                .map(<[u8]>::to_vec)
                .ok_or_else(|| bad(&format!("missing bytes {key:?}")))
        };
        let get_node = |key: &str| -> Result<NodeId, HadasError> {
            m.get(key)
                .and_then(Value::as_int)
                .map(|n| NodeId(n as u64))
                .ok_or_else(|| bad(&format!("missing node {key:?}")))
        };
        // Trace fields are carried by newer peers only; absent means "no
        // active trace", so pre-trace buffers still decode.
        let get_u64_or_zero =
            |key: &str| -> u64 { m.get(key).and_then(Value::as_int).unwrap_or(0) as u64 };
        Ok(match op {
            "link_req" => ProtocolMsg::LinkReq {
                req_id,
                from: get_node("from")?,
                from_ioo: get_ref("from_ioo")?,
            },
            "link_ack" => ProtocolMsg::LinkAck {
                req_id,
                ioo: get_ref("ioo")?,
                ambassador_image: get_bytes("image")?,
            },
            "import_req" => ProtocolMsg::ImportReq {
                req_id,
                from: get_node("from")?,
                from_ioo: get_ref("from_ioo")?,
                apo_name: get_str("apo")?,
            },
            "export_ack" => ProtocolMsg::ExportAck {
                req_id,
                ambassador_image: get_bytes("image")?,
                origin_apo: get_ref("origin_apo")?,
                remote_methods: m
                    .get("remote_methods")
                    .and_then(Value::as_list)
                    .ok_or_else(|| bad("missing remote_methods"))?
                    .iter()
                    .map(|x| {
                        x.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| bad("remote_methods entries must be strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "error" => ProtocolMsg::Error {
                req_id,
                reason: get_str("reason")?,
            },
            "invoke_req" => ProtocolMsg::InvokeReq {
                req_id,
                caller: get_ref("caller")?,
                target: get_ref("target")?,
                method: get_str("method")?,
                args: m
                    .get("args")
                    .and_then(Value::as_list)
                    .ok_or_else(|| bad("missing args"))?
                    .to_vec(),
                trace: get_u64_or_zero("trace"),
                parent_span: get_u64_or_zero("parent_span"),
            },
            "invoke_resp" => ProtocolMsg::InvokeResp {
                req_id,
                result: m
                    .get("result")
                    .cloned()
                    .ok_or_else(|| bad("missing result"))?,
            },
            "update_req" => ProtocolMsg::UpdateReq {
                req_id,
                origin: get_ref("origin")?,
                target: get_ref("target")?,
                ops: m
                    .get("ops")
                    .and_then(Value::as_list)
                    .ok_or_else(|| bad("missing ops"))?
                    .iter()
                    .map(UpdateOp::from_value)
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "update_ack" => ProtocolMsg::UpdateAck {
                req_id,
                applied: m
                    .get("applied")
                    .and_then(Value::as_int)
                    .ok_or_else(|| bad("missing applied"))? as usize,
            },
            "move_object" => ProtocolMsg::MoveObject {
                req_id,
                image: get_bytes("image")?,
                trace: get_u64_or_zero("trace"),
                parent_span: get_u64_or_zero("parent_span"),
            },
            "move_ack" => ProtocolMsg::MoveAck {
                req_id,
                adopted: get_ref("adopted")?,
            },
            "query_object" => ProtocolMsg::QueryObject {
                req_id,
                object: get_ref("object")?,
            },
            "query_ack" => ProtocolMsg::QueryAck {
                req_id,
                hosted: m
                    .get("hosted")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| bad("missing hosted"))?,
            },
            other => return Err(bad(&format!("unknown op {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_value::{IdGenerator, NodeId};

    fn ids() -> IdGenerator {
        IdGenerator::new(NodeId(77))
    }

    #[test]
    fn all_messages_round_trip() {
        let mut gen = ids();
        let a = gen.next_id();
        let b = gen.next_id();
        let msgs = vec![
            ProtocolMsg::LinkReq {
                req_id: 1,
                from: NodeId(4),
                from_ioo: a,
            },
            ProtocolMsg::LinkAck {
                req_id: 1,
                ioo: b,
                ambassador_image: vec![1, 2, 3],
            },
            ProtocolMsg::ImportReq {
                req_id: 2,
                from: NodeId(4),
                from_ioo: a,
                apo_name: "db".into(),
            },
            ProtocolMsg::ExportAck {
                req_id: 2,
                ambassador_image: vec![9; 64],
                origin_apo: b,
                remote_methods: vec!["query".into(), "update".into()],
            },
            ProtocolMsg::Error {
                req_id: 3,
                reason: "denied".into(),
            },
            ProtocolMsg::InvokeReq {
                req_id: 4,
                caller: a,
                target: b,
                method: "query".into(),
                args: vec![Value::Int(1), Value::from("x")],
                trace: 17,
                parent_span: 3,
            },
            ProtocolMsg::InvokeResp {
                req_id: 4,
                result: Value::map([("rows", Value::list([]))]),
            },
            ProtocolMsg::UpdateReq {
                req_id: 5,
                origin: b,
                target: a,
                ops: vec![
                    UpdateOp::AddData("note".into(), Value::from("hi")),
                    UpdateOp::SetMethod(
                        "m".into(),
                        Value::map([("body", Value::from("return 1;"))]),
                    ),
                    UpdateOp::DeleteMethod("old".into()),
                    UpdateOp::InstallMetaInvoke("maintenance".into()),
                    UpdateOp::UninstallMetaInvoke,
                    UpdateOp::SetData("x".into(), Value::Int(2)),
                    UpdateOp::AddMethod("n".into(), Value::from("return 2;")),
                ],
            },
            ProtocolMsg::UpdateAck {
                req_id: 5,
                applied: 7,
            },
            ProtocolMsg::MoveObject {
                req_id: 6,
                image: vec![0xAB; 32],
                trace: 9,
                parent_span: 0,
            },
            ProtocolMsg::MoveAck {
                req_id: 6,
                adopted: a,
            },
            ProtocolMsg::QueryObject {
                req_id: 7,
                object: b,
            },
            ProtocolMsg::QueryAck {
                req_id: 7,
                hosted: true,
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            let back = ProtocolMsg::decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
            assert_eq!(back.req_id(), msg.req_id());
            assert_eq!(back.kind(), msg.kind());
        }
    }

    #[test]
    fn pre_trace_buffers_decode_with_no_active_trace() {
        // A message encoded without the trace fields (an older peer) must
        // still decode; the trace context defaults to "none".
        let v = Value::map([
            ("op", Value::from("move_object")),
            ("req_id", Value::Int(6)),
            ("image", Value::Bytes(vec![1, 2, 3])),
        ]);
        match ProtocolMsg::from_value(&v).unwrap() {
            ProtocolMsg::MoveObject {
                trace, parent_span, ..
            } => {
                assert_eq!(trace, 0);
                assert_eq!(parent_span, 0);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn hostile_buffers_are_rejected() {
        assert!(ProtocolMsg::decode(b"junk").is_err());
        let v = Value::map([("op", Value::from("link_req"))]); // no req_id
        assert!(ProtocolMsg::from_value(&v).is_err());
        let v = Value::map([("op", Value::from("who_knows")), ("req_id", Value::Int(1))]);
        assert!(ProtocolMsg::from_value(&v).is_err());
        let v = Value::Int(7);
        assert!(ProtocolMsg::from_value(&v).is_err());
    }

    #[test]
    fn update_op_rejects_malformed() {
        assert!(UpdateOp::from_value(&Value::Int(1)).is_err());
        assert!(UpdateOp::from_value(&Value::list([])).is_err());
        assert!(UpdateOp::from_value(&Value::list([Value::from("add_method")])).is_err());
        assert!(UpdateOp::from_value(&Value::list([Value::from("zap")])).is_err());
    }
}
