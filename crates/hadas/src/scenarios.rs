//! Canned scenarios shared by the examples, integration tests, and the
//! benchmark harness.

use mrom_core::{ClassSpec, DataItem, Method, MethodBody};
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_value::{NodeId, ObjectId, Value};

use crate::ambassador::AmbassadorSpec;
use crate::error::HadasError;
use crate::federation::Federation;
use crate::protocol::UpdateOp;

/// The employee-database APO of the paper's §5 running example: "a
/// database APO whose methods return employees information".
pub fn employee_db_class() -> ClassSpec {
    ClassSpec::new("employee-db")
        .fixed_data(
            "employees",
            DataItem::public(Value::map([
                (
                    "alice",
                    Value::map([("salary", Value::Int(120)), ("dept", Value::from("os"))]),
                ),
                (
                    "bob",
                    Value::map([("salary", Value::Int(95)), ("dept", Value::from("db"))]),
                ),
                (
                    "carol",
                    Value::map([("salary", Value::Int(130)), ("dept", Value::from("net"))]),
                ),
                (
                    "dave",
                    Value::map([("salary", Value::Int(88)), ("dept", Value::from("db"))]),
                ),
            ])),
        )
        .fixed_method(
            "count",
            Method::public(MethodBody::script("return len(self.get(\"employees\"));").unwrap()),
        )
        .fixed_method(
            "salary_of",
            Method::public(
                MethodBody::script(
                    r#"
                    param name;
                    let db = self.get("employees");
                    if (!contains(db, name)) { fail("no such employee: " + name); }
                    return db[name]["salary"];
                    "#,
                )
                .unwrap(),
            ),
        )
        .fixed_method(
            "department_total",
            Method::public(
                MethodBody::script(
                    r#"
                    param dept;
                    let db = self.get("employees");
                    let total = 0;
                    for (name in db) {
                        if (db[name]["dept"] == dept) {
                            total = total + db[name]["salary"];
                        }
                    }
                    return total;
                    "#,
                )
                .unwrap(),
            ),
        )
}

/// Builds a federation with `site_count` sites (nodes `1..=site_count`)
/// over the given link profile, all linked to site 1.
///
/// # Errors
///
/// Propagates federation setup errors.
pub fn star_federation(
    seed: u64,
    site_count: u64,
    link: LinkConfig,
) -> Result<(Federation, Vec<NodeId>), HadasError> {
    let cfg = NetworkConfig::new(seed).with_default_link(link);
    let mut fed = Federation::new(cfg);
    let nodes: Vec<NodeId> = (1..=site_count).map(NodeId).collect();
    for &n in &nodes {
        fed.add_site(n)?;
    }
    for &n in &nodes[1..] {
        fed.link(n, nodes[0])?;
    }
    Ok((fed, nodes))
}

/// Sets up the full §5 database scenario: the employee DB lives at the hub
/// site, every spoke imports an Ambassador exporting only `count`. Returns
/// the ambassador ids by spoke.
///
/// # Errors
///
/// Propagates federation errors.
pub fn deploy_employee_db(
    fed: &mut Federation,
    hub: NodeId,
    spokes: &[NodeId],
) -> Result<Vec<(NodeId, ObjectId)>, HadasError> {
    let apo = employee_db_class().instantiate_as(fed.runtime_mut(hub)?.ids_mut().next_id(), None);
    // `count` is served at the edge, so the employee table snapshot rides
    // along; the heavier queries stay home and are relayed.
    let spec = AmbassadorSpec::relay_only()
        .with_methods(["count"])
        .with_data(["employees"]);
    fed.integrate_apo(hub, "employee-db", apo, spec)?;
    let mut out = Vec::with_capacity(spokes.len());
    for &spoke in spokes {
        let amb = fed.import_apo(spoke, hub, "employee-db")?;
        out.push((spoke, amb));
    }
    Ok(out)
}

/// The maintenance-shutdown update of §5: the database administrator
/// pushes a meta-invoke to every deployed Ambassador so "users at remote
/// sites can have instant meaningful results for their queries".
///
/// # Errors
///
/// Propagates push failures.
pub fn push_maintenance_notice(fed: &mut Federation, hub: NodeId) -> Result<usize, HadasError> {
    fed.push_update(
        hub,
        "employee-db",
        &[
            UpdateOp::AddMethod(
                "maintenance_notice".into(),
                Value::map([
                    (
                        "body",
                        Value::from("return \"database is down for maintenance\";"),
                    ),
                    ("invoke_acl", Value::from("public")),
                ]),
            ),
            UpdateOp::InstallMetaInvoke("maintenance_notice".into()),
        ],
    )
}

/// Lifts the maintenance notice again (uninstall + cleanup).
///
/// # Errors
///
/// Propagates push failures.
pub fn lift_maintenance_notice(fed: &mut Federation, hub: NodeId) -> Result<usize, HadasError> {
    fed.push_update(
        hub,
        "employee-db",
        &[
            UpdateOp::UninstallMetaInvoke,
            UpdateOp::DeleteMethod("maintenance_notice".into()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_federation_links_all_spokes() {
        let (fed, nodes) = star_federation(5, 4, LinkConfig::lan()).unwrap();
        for &spoke in &nodes[1..] {
            assert!(fed.is_linked(spoke, nodes[0]));
        }
    }

    #[test]
    fn employee_db_answers_queries() {
        let (mut fed, nodes) = star_federation(6, 2, LinkConfig::lan()).unwrap();
        let hub = nodes[0];
        let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
        let (spoke, amb) = ambs[0];
        let caller = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
        // Local (exported) method.
        assert_eq!(
            fed.call_through_ambassador(spoke, caller, amb, "count", &[])
                .unwrap(),
            Value::Int(4)
        );
        // Relayed methods.
        assert_eq!(
            fed.call_through_ambassador(spoke, caller, amb, "salary_of", &[Value::from("carol")])
                .unwrap(),
            Value::Int(130)
        );
        assert_eq!(
            fed.call_through_ambassador(
                spoke,
                caller,
                amb,
                "department_total",
                &[Value::from("db")]
            )
            .unwrap(),
            Value::Int(183)
        );
        // Failing queries surface the script's own error remotely.
        assert!(matches!(
            fed.call_through_ambassador(spoke, caller, amb, "salary_of", &[Value::from("zed")]),
            Err(HadasError::Remote(reason)) if reason.contains("no such employee")
        ));
    }

    #[test]
    fn maintenance_cycle_end_to_end() {
        let (mut fed, nodes) = star_federation(7, 3, LinkConfig::lan()).unwrap();
        let hub = nodes[0];
        let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
        assert_eq!(push_maintenance_notice(&mut fed, hub).unwrap(), 2);
        for &(spoke, amb) in &ambs {
            let caller = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
            let out = fed
                .call_through_ambassador(spoke, caller, amb, "count", &[])
                .unwrap();
            assert_eq!(out, Value::from("database is down for maintenance"));
        }
        assert_eq!(lift_maintenance_notice(&mut fed, hub).unwrap(), 2);
        for &(spoke, amb) in &ambs {
            let caller = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
            assert_eq!(
                fed.call_through_ambassador(spoke, caller, amb, "count", &[])
                    .unwrap(),
                Value::Int(4)
            );
        }
    }
}
