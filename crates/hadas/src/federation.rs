//! The federation driver: sites, the protocol engine, and the synchronous
//! convenience operations (Link, Import/Export, remote invocation,
//! functionality migration, update push) running over the simulated
//! network.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use mrom_core::{AdmissionPolicy, MromError, MromObject, Runtime, SharedRuntime};
use mrom_net::{Delivery, NetStats, NetworkConfig, SimNet, SimTime};
use mrom_persist::{BlobStore, Depot, MemStore};
use mrom_value::{NodeId, ObjectId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ambassador::{AmbassadorSpec, GuestInfo};
use crate::error::HadasError;
use crate::ioo::map_insert;
use crate::protocol::{ProtocolMsg, UpdateOp};
use crate::retry::RetryPolicy;

/// Entries kept in a site's reply cache before the oldest are evicted.
/// Request ids are globally monotonic, so evicting the smallest ids drops
/// the replies least likely to be retried.
const REPLY_CACHE_CAP: usize = 1024;

/// One invocation in a [`Federation::remote_invoke_batch`] — the batched
/// form of the `remote_invoke` argument list.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeCall {
    /// Principal the invocation is attributed to.
    pub caller: ObjectId,
    /// Object to invoke on the destination site.
    pub target: ObjectId,
    /// Method name.
    pub method: String,
    /// Positional arguments.
    pub args: Vec<Value>,
}

impl InvokeCall {
    /// Convenience constructor mirroring `remote_invoke`'s parameters.
    #[must_use]
    pub fn new(caller: ObjectId, target: ObjectId, method: &str, args: &[Value]) -> InvokeCall {
        InvokeCall {
            caller,
            target,
            method: method.to_owned(),
            args: args.to_vec(),
        }
    }
}

/// Who may import an APO — the access check the paper's Export performs
/// ("Export verifies that the requested APO is accessible to the
/// requesting IOO").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExportPolicy {
    /// Any *linked* site may import (the default: Link is already a
    /// prerequisite for all cooperation).
    #[default]
    Linked,
    /// Only the listed sites may import.
    Sites(BTreeSet<NodeId>),
    /// Nobody may import.
    Nobody,
}

/// One remote invocation parked in a site's inbox, awaiting a
/// worker-pool drain (only used when `site_workers > 1`).
struct QueuedInvoke {
    /// Reply destination (the requesting site).
    src: NodeId,
    req_id: u64,
    caller: ObjectId,
    target: ObjectId,
    method: String,
    args: Vec<Value>,
    /// Trace context that travelled with the request, re-installed on
    /// whichever worker thread executes it.
    trace: u64,
    parent_span: u64,
}

/// Executes one inbox batch over a site's shared runtime. With one
/// worker (or a single-element batch) this runs inline on the calling
/// thread; otherwise `workers` scoped threads pull requests off a shared
/// cursor, each labelling itself and re-joining the request's travelled
/// trace context. Replies come back in batch order regardless of which
/// thread ran which request, so the wire stays deterministic even though
/// execution interleaves.
fn run_site_batch(
    shared: &SharedRuntime,
    node: NodeId,
    batch: &[QueuedInvoke],
    workers: usize,
) -> Vec<ProtocolMsg> {
    let execute = |q: &QueuedInvoke| -> ProtocolMsg {
        let _scope = mrom_obs::continue_trace(q.trace, q.parent_span);
        match shared.invoke(q.caller, q.target, &q.method, &q.args) {
            Ok(result) => ProtocolMsg::InvokeResp {
                req_id: q.req_id,
                result,
            },
            Err(e) => ProtocolMsg::Error {
                req_id: q.req_id,
                reason: HadasError::Model(e).to_string(),
            },
        }
    };
    let workers = workers.min(batch.len());
    if workers <= 1 {
        return batch.iter().map(execute).collect();
    }
    let mode = mrom_obs::mode();
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, ProtocolMsg)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let execute = &execute;
                let next = &next;
                s.spawn(move || {
                    // Worker threads carry their own thread-local
                    // recorder: inherit the driver's mode and label the
                    // thread so emitted events stay attributable.
                    mrom_obs::set_mode(mode);
                    mrom_obs::set_thread_label(Some(&format!("site-{node}-w{w}")));
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= batch.len() {
                            break;
                        }
                        out.push((i, execute(&batch[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("invoke worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), batch.len());
    indexed.into_iter().map(|(_, reply)| reply).collect()
}

/// One logical site: a node runtime, its IOO, and the bookkeeping the
/// protocol handlers maintain.
struct Site {
    runtime: Runtime,
    ioo: ObjectId,
    /// Home: APO name → identity.
    apos: BTreeMap<String, ObjectId>,
    /// Default functionality split per APO name.
    specs: BTreeMap<String, AmbassadorSpec>,
    /// Export access policy per APO name.
    policies: BTreeMap<String, ExportPolicy>,
    /// Sites this site has a Link agreement with (either direction).
    links: BTreeSet<NodeId>,
    /// Hosted guest Ambassadors.
    guests: BTreeMap<ObjectId, GuestInfo>,
    /// Ambassadors deployed *from* this site's APOs: APO id → (host node,
    /// ambassador id) pairs.
    deployed: BTreeMap<ObjectId, Vec<(NodeId, ObjectId)>>,
    /// The site's self-contained persistence depot (paper §9): objects
    /// write themselves here and bootstrap themselves back after a crash.
    depot: Depot<MemStore>,
    /// Receiver-side request dedup: req id → the reply already produced.
    /// A retried or duplicated request is answered from here instead of
    /// being re-executed, which is what makes delivery exactly-once.
    /// Volatile — wiped by a crash (the depot, not this cache, is the
    /// durable layer).
    replies: BTreeMap<u64, ProtocolMsg>,
    /// Migrations whose acknowledgement never arrived: object → intended
    /// destination. The object's image stays in the depot until
    /// [`Federation::resolve_in_doubt`] learns which side owns it.
    in_doubt: BTreeMap<ObjectId, NodeId>,
    /// Remote invocations queued for the worker pool (empty whenever
    /// `site_workers == 1`). Drained — executed and replied to — before
    /// any other protocol message touches this site and whenever the
    /// network goes quiet, so queueing never reorders an invoke past a
    /// migration or update that arrived after it.
    inbox: Vec<QueuedInvoke>,
}

impl Site {
    /// Caches `reply` for its request id, evicting the oldest entries
    /// beyond the cache bound.
    fn remember_reply(&mut self, req_id: u64, reply: &ProtocolMsg) {
        self.replies.insert(req_id, reply.clone());
        while self.replies.len() > REPLY_CACHE_CAP {
            let oldest = *self.replies.keys().next().expect("cache is non-empty");
            self.replies.remove(&oldest);
        }
    }
}

/// A point-in-time summary of one site, used by reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// The site's node.
    pub node: NodeId,
    /// Number of integrated APOs.
    pub apos: usize,
    /// Number of link agreements.
    pub links: usize,
    /// Number of hosted guest Ambassadors.
    pub guests: usize,
    /// Number of Ambassadors deployed from here.
    pub deployed: usize,
}

/// A federation of HADAS sites over a simulated network.
///
/// # Example
///
/// ```
/// use hadas::Federation;
/// use mrom_net::NetworkConfig;
/// use mrom_value::NodeId;
///
/// # fn main() -> Result<(), hadas::HadasError> {
/// let mut fed = Federation::new(NetworkConfig::new(7));
/// fed.add_site(NodeId(1))?;
/// fed.add_site(NodeId(2))?;
/// fed.link(NodeId(1), NodeId(2))?;
/// assert!(fed.is_linked(NodeId(1), NodeId(2)));
/// # Ok(())
/// # }
/// ```
pub struct Federation {
    net: SimNet,
    sites: BTreeMap<NodeId, Site>,
    next_req: u64,
    completed: HashMap<u64, ProtocolMsg>,
    /// Request ids currently awaiting a reply. A reply whose id is not
    /// here is stale — a duplicate of one already consumed — and is
    /// dropped instead of polluting `completed`.
    pending: HashSet<u64>,
    /// Safety bound on deliveries processed while waiting for one reply.
    max_pump: usize,
    /// Static admission policy every receive path applies to arriving
    /// mobile code (migrating objects, imported/linked ambassadors) and
    /// that the export path applies to ambassadors it instantiates.
    admission: AdmissionPolicy,
    /// Retry policy for synchronous operations ([`RetryPolicy::Off`] by
    /// default — the historical fail-on-first-loss behaviour).
    retry: RetryPolicy,
    /// Dedicated generator for backoff jitter, seeded from the network
    /// seed so retry schedules reproduce per seed without perturbing the
    /// simulator's own stream.
    retry_rng: StdRng,
    /// Threads each site drains its invocation inbox with. `1` (the
    /// default) keeps the historical fully-inline single-threaded path;
    /// `> 1` parks arriving `InvokeReq`s in the site inbox and executes
    /// each batch on a scoped worker pool over the site's
    /// [`mrom_core::SharedRuntime`].
    site_workers: usize,
}

/// How one pass of the protocol pump ended.
enum PumpOutcome {
    /// Every awaited reply arrived.
    Done,
    /// The network went idle with replies still missing (lost traffic).
    Dry,
    /// The per-operation delivery bound was exceeded (a protocol storm).
    BoundExceeded,
}

impl Federation {
    /// Creates an empty federation over a simulator with `config`.
    /// Admission starts [`AdmissionPolicy::Off`] — the pre-admission
    /// behaviour.
    pub fn new(config: NetworkConfig) -> Federation {
        // Decorrelate from the simulator's stream while staying a pure
        // function of the configured seed.
        let retry_rng = StdRng::seed_from_u64(config.seed() ^ 0x9E37_79B9_7F4A_7C15);
        Federation {
            net: SimNet::new(config),
            sites: BTreeMap::new(),
            next_req: 0,
            completed: HashMap::new(),
            pending: HashSet::new(),
            max_pump: 100_000,
            admission: AdmissionPolicy::Off,
            retry: RetryPolicy::Off,
            retry_rng,
            site_workers: 1,
        }
    }

    /// Sets how many threads every site uses to drain its invocation
    /// inbox, returning the previous value. `1` (the default) is the
    /// historical inline path — byte-for-byte identical behaviour;
    /// values above `1` execute batched remote invocations concurrently
    /// over each site's shared runtime, where same-object collisions
    /// surface as [`MromError::ObjectBusy`]. Clamped to at least 1.
    pub fn set_site_workers(&mut self, workers: usize) -> usize {
        std::mem::replace(&mut self.site_workers, workers.max(1))
    }

    /// Threads each site drains its invocation inbox with.
    #[must_use]
    pub fn site_workers(&self) -> usize {
        self.site_workers
    }

    /// Sets the federation-wide [`AdmissionPolicy`], returning the
    /// previous one.
    pub fn set_admission_policy(&mut self, policy: AdmissionPolicy) -> AdmissionPolicy {
        std::mem::replace(&mut self.admission, policy)
    }

    /// The federation-wide [`AdmissionPolicy`].
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.admission
    }

    /// Sets the federation-wide [`RetryPolicy`], returning the previous
    /// one. With [`RetryPolicy::Off`] (the default) every synchronous
    /// operation behaves exactly as it did before retries existed.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) -> RetryPolicy {
        std::mem::replace(&mut self.retry, policy)
    }

    /// The federation-wide [`RetryPolicy`].
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Decodes an arriving image under the federation admission policy,
    /// converting strict rejections into [`HadasError::AdmissionRefused`]
    /// naming the receiving site.
    fn admit_image(&self, at: NodeId, image: &[u8]) -> Result<MromObject, HadasError> {
        match MromObject::from_image_with_policy(image, self.admission) {
            Ok(obj) => Ok(obj),
            Err(rejection @ MromError::AdmissionRejected { .. }) => {
                Err(HadasError::AdmissionRefused { at, rejection })
            }
            Err(e) => Err(HadasError::Model(e)),
        }
    }

    /// Adds a site at `node`, creating its runtime and IOO. Returns the
    /// IOO's identity.
    ///
    /// # Errors
    ///
    /// [`HadasError::DuplicateSite`] / network errors.
    pub fn add_site(&mut self, node: NodeId) -> Result<ObjectId, HadasError> {
        if self.sites.contains_key(&node) {
            return Err(HadasError::DuplicateSite(node));
        }
        self.net.add_node(node)?;
        let mut runtime = Runtime::new(node);
        let ioo_obj = crate::ioo::build_ioo_as(runtime.ids_mut().next_id(), node);
        let ioo = ioo_obj.id();
        let mut depot = Depot::new(MemStore::new());
        // Write-ahead bootstrap image: a crashed site restores its IOO
        // (and everything else in the depot) from here. Best-effort — an
        // IOO with native bodies simply is not persistable.
        let _ = depot.save(&ioo_obj);
        runtime.adopt(ioo_obj).map_err(HadasError::Model)?;
        self.sites.insert(
            node,
            Site {
                runtime,
                ioo,
                apos: BTreeMap::new(),
                specs: BTreeMap::new(),
                policies: BTreeMap::new(),
                links: BTreeSet::new(),
                guests: BTreeMap::new(),
                deployed: BTreeMap::new(),
                depot,
                replies: BTreeMap::new(),
                in_doubt: BTreeMap::new(),
                inbox: Vec::new(),
            },
        );
        Ok(ioo)
    }

    fn site(&self, node: NodeId) -> Result<&Site, HadasError> {
        self.sites.get(&node).ok_or(HadasError::UnknownSite(node))
    }

    fn site_mut(&mut self, node: NodeId) -> Result<&mut Site, HadasError> {
        self.sites
            .get_mut(&node)
            .ok_or(HadasError::UnknownSite(node))
    }

    /// The runtime hosting a site's objects.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn runtime(&self, node: NodeId) -> Result<&Runtime, HadasError> {
        Ok(&self.site(node)?.runtime)
    }

    /// Mutable runtime access (local administration, tests).
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn runtime_mut(&mut self, node: NodeId) -> Result<&mut Runtime, HadasError> {
        Ok(&mut self.site_mut(node)?.runtime)
    }

    /// A site's IOO identity.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn ioo_id(&self, node: NodeId) -> Result<ObjectId, HadasError> {
        Ok(self.site(node)?.ioo)
    }

    /// Simulator traffic statistics.
    pub fn net_stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// The recording thread's windowed telemetry across the whole
    /// federation: every object profile, the full site-to-site call
    /// matrix, and every link window. Empty (but schema-complete)
    /// unless [`mrom_obs::set_window`] configured a window and a
    /// recording mode is on.
    #[must_use]
    pub fn telemetry(&self) -> mrom_obs::TelemetrySnapshot {
        mrom_obs::telemetry_snapshot()
    }

    /// One site's slice of [`Federation::telemetry`]: objects hosted at
    /// `node` right now, plus the call-matrix rows and links touching
    /// it. This is the federation analogue of `Runtime::telemetry`.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn site_telemetry(&self, node: NodeId) -> Result<mrom_obs::TelemetrySnapshot, HadasError> {
        let site = self.site(node)?;
        let hosted: std::collections::BTreeSet<ObjectId> =
            site.runtime.object_ids().into_iter().collect();
        Ok(self.telemetry().for_site(node, |id| hosted.contains(&id)))
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Mutable simulator configuration (partitions mid-run).
    pub fn net_config_mut(&mut self) -> &mut NetworkConfig {
        self.net.config_mut()
    }

    /// The nodes that have a site in this federation.
    pub fn site_nodes(&self) -> Vec<NodeId> {
        self.sites.keys().copied().collect()
    }

    /// Per-site summary.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn site_stats(&self, node: NodeId) -> Result<SiteStats, HadasError> {
        let site = self.site(node)?;
        Ok(SiteStats {
            node,
            apos: site.apos.len(),
            links: site.links.len(),
            guests: site.guests.len(),
            deployed: site.deployed.values().map(Vec::len).sum(),
        })
    }

    /// Integrates a pre-built APO object at `node` under `name`, with the
    /// default functionality split `spec` for its Ambassadors. Returns the
    /// APO's identity.
    ///
    /// # Errors
    ///
    /// Site/duplicate errors and model errors.
    pub fn integrate_apo(
        &mut self,
        node: NodeId,
        name: &str,
        apo: MromObject,
        spec: AmbassadorSpec,
    ) -> Result<ObjectId, HadasError> {
        let site = self.site_mut(node)?;
        if site.apos.contains_key(name) {
            return Err(HadasError::DuplicateApo(name.to_owned()));
        }
        let id = apo.id();
        // Best-effort write-ahead: a mobile APO survives a site crash;
        // one with native bodies simply is not persistable.
        let _ = site.depot.save(&apo);
        site.runtime.adopt(apo).map_err(HadasError::Model)?;
        site.apos.insert(name.to_owned(), id);
        site.specs.insert(name.to_owned(), spec);
        site.policies
            .insert(name.to_owned(), ExportPolicy::default());
        let ioo = site.ioo;
        if let Some(ioo_obj) = site.runtime.object_mut(ioo) {
            map_insert(ioo_obj, "home", name, Value::ObjectRef(id));
        }
        Ok(id)
    }

    /// Sets the export policy for an APO.
    ///
    /// # Errors
    ///
    /// Site/APO lookup errors.
    pub fn set_export_policy(
        &mut self,
        node: NodeId,
        apo_name: &str,
        policy: ExportPolicy,
    ) -> Result<(), HadasError> {
        let site = self.site_mut(node)?;
        if !site.apos.contains_key(apo_name) {
            return Err(HadasError::UnknownApo(apo_name.to_owned()));
        }
        site.policies.insert(apo_name.to_owned(), policy);
        Ok(())
    }

    /// The identity of an APO registered at a site.
    ///
    /// # Errors
    ///
    /// Site/APO lookup errors.
    pub fn apo_id(&self, node: NodeId, name: &str) -> Result<ObjectId, HadasError> {
        self.site(node)?
            .apos
            .get(name)
            .copied()
            .ok_or_else(|| HadasError::UnknownApo(name.to_owned()))
    }

    /// Are two sites linked (in either direction)?
    pub fn is_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.sites.get(&a).is_some_and(|s| s.links.contains(&b))
    }

    /// Guest info for a hosted Ambassador.
    ///
    /// # Errors
    ///
    /// Lookup errors.
    pub fn guest_info(&self, host: NodeId, amb: ObjectId) -> Result<&GuestInfo, HadasError> {
        self.site(host)?
            .guests
            .get(&amb)
            .ok_or(HadasError::UnknownAmbassador(amb))
    }

    /// Ambassadors deployed from an APO: `(host node, ambassador id)`.
    ///
    /// # Errors
    ///
    /// Lookup errors.
    pub fn deployed_ambassadors(
        &self,
        origin: NodeId,
        apo_name: &str,
    ) -> Result<Vec<(NodeId, ObjectId)>, HadasError> {
        let site = self.site(origin)?;
        let apo = site
            .apos
            .get(apo_name)
            .ok_or_else(|| HadasError::UnknownApo(apo_name.to_owned()))?;
        Ok(site.deployed.get(apo).cloned().unwrap_or_default())
    }

    // -- protocol engine -----------------------------------------------------

    fn fresh_req_id(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    fn post(&mut self, from: NodeId, to: NodeId, msg: &ProtocolMsg) -> Result<(), HadasError> {
        let bytes = msg.encode();
        mrom_obs::fed_send(from, to, msg.kind(), bytes.len());
        self.net.send(from, to, bytes)?;
        Ok(())
    }

    /// Sends a request and pumps the network until its reply arrives,
    /// re-posting it under the active [`RetryPolicy`] when the network
    /// goes quiet with the reply still missing. Every attempt reuses the
    /// request id, so the receiver's reply cache makes retries idempotent.
    fn request(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: ProtocolMsg,
    ) -> Result<ProtocolMsg, HadasError> {
        let max_attempts = self.retry.max_attempts();
        self.request_capped(from, to, msg, max_attempts)
    }

    /// [`Federation::request`] with an explicit attempt budget. The
    /// invocation path uses this to tighten (never widen) the policy's
    /// budget when the target method's effect signature does not prove
    /// it idempotent.
    fn request_capped(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: ProtocolMsg,
        max_attempts: u32,
    ) -> Result<ProtocolMsg, HadasError> {
        let req_id = msg.req_id();
        let started = self.net.now();
        self.pending.insert(req_id);
        let mut attempt = 1u32;
        let finish = |fed: &mut Federation, reply| {
            fed.pending.remove(&req_id);
            reply
        };
        loop {
            if let Err(e) = self.post(from, to, &msg) {
                return finish(self, Err(e));
            }
            match self.pump(&[req_id]) {
                PumpOutcome::Done => {
                    let reply = self
                        .completed
                        .remove(&req_id)
                        .expect("pump guarantees presence");
                    return finish(self, Ok(reply));
                }
                PumpOutcome::BoundExceeded => {
                    return finish(
                        self,
                        Err(HadasError::Timeout {
                            operation: format!("request {} (pump bound exceeded)", msg.kind()),
                            attempts: attempt,
                            elapsed: self.net.now().saturating_sub(started),
                        }),
                    );
                }
                PumpOutcome::Dry if attempt < max_attempts => {
                    attempt += 1;
                    mrom_obs::fed_retry(from, msg.kind(), attempt);
                    let delay = self.retry.backoff_delay(attempt, &mut self.retry_rng);
                    // Wait out the backoff in virtual time; anything that
                    // arrives meanwhile (a slow reply racing the retry) is
                    // handled before the re-post.
                    let deliveries = self.net.run_until(self.net.now() + delay);
                    for d in deliveries {
                        self.handle(d);
                    }
                    if let Some(reply) = self.completed.remove(&req_id) {
                        return finish(self, Ok(reply));
                    }
                }
                PumpOutcome::Dry => {
                    return finish(
                        self,
                        Err(HadasError::Timeout {
                            operation: format!("request {msg:?}"),
                            attempts: attempt,
                            elapsed: self.net.now().saturating_sub(started),
                        }),
                    );
                }
            }
        }
    }

    /// One pass of the protocol pump: processes deliveries until every
    /// listed reply is present, the network goes dry, or the safety bound
    /// trips.
    fn pump(&mut self, req_ids: &[u64]) -> PumpOutcome {
        let mut steps = 0;
        while !req_ids.iter().all(|id| self.completed.contains_key(id)) {
            let Some(delivery) = self.net.step() else {
                // Quiet wire: flush every queued invocation. Replies the
                // drain posts are new traffic, so only a drain that moved
                // nothing means the network is truly dry.
                if self.drain_all_inboxes() {
                    continue;
                }
                return PumpOutcome::Dry;
            };
            self.handle(delivery);
            steps += 1;
            if steps > self.max_pump {
                return PumpOutcome::BoundExceeded;
            }
        }
        PumpOutcome::Done
    }

    /// Processes deliveries until every listed reply has arrived,
    /// converting a dry network into a single-attempt timeout (used by
    /// multi-target operations that manage their own request ids).
    fn pump_until(&mut self, req_ids: &[u64], operation: &str) -> Result<(), HadasError> {
        let started = self.net.now();
        match self.pump(req_ids) {
            PumpOutcome::Done => Ok(()),
            PumpOutcome::Dry => Err(HadasError::Timeout {
                operation: operation.to_owned(),
                attempts: 1,
                elapsed: self.net.now().saturating_sub(started),
            }),
            PumpOutcome::BoundExceeded => Err(HadasError::Timeout {
                operation: format!("{operation} (pump bound exceeded)"),
                attempts: 1,
                elapsed: self.net.now().saturating_sub(started),
            }),
        }
    }

    /// Drains every in-flight message (fire-and-forget flows, tests).
    pub fn pump_all(&mut self) {
        loop {
            while let Some(delivery) = self.net.step() {
                self.handle(delivery);
            }
            if !self.drain_all_inboxes() {
                return;
            }
        }
    }

    /// Fault injection: puts raw bytes on the wire between two sites, as a
    /// hostile or broken peer would. Undecodable traffic must be dropped
    /// by the protocol engine without disturbing real operations.
    ///
    /// # Errors
    ///
    /// Network errors for unknown endpoints.
    pub fn inject_raw(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: Vec<u8>,
    ) -> Result<(), HadasError> {
        self.net.send(from, to, bytes)?;
        Ok(())
    }

    /// Handles one delivery: requests produce replies, replies complete
    /// pending operations. Undecodable traffic is dropped (a hostile peer
    /// cannot wedge the engine).
    fn handle(&mut self, delivery: Delivery) {
        let Ok(msg) = ProtocolMsg::decode(&delivery.payload) else {
            return;
        };
        mrom_obs::fed_recv(delivery.src, delivery.dst, msg.kind());
        // Keep every site's virtual clock in step with the network.
        if let Some(site) = self.sites.get_mut(&delivery.dst) {
            site.runtime.set_now(delivery.at.as_millis());
        }
        // Anything other than another invocation flushes the receiving
        // site's queued invocations first, so worker-pool batching never
        // reorders an invoke past a later migration, update, or query.
        if self.site_workers > 1 && !matches!(msg, ProtocolMsg::InvokeReq { .. }) {
            self.drain_inbox(delivery.dst);
        }
        // Receiver-side dedup: a request whose id was already served —
        // a network duplicate or a sender retry racing a slow reply — is
        // answered from the reply cache, never re-executed. This is what
        // makes a retried `dispatch_object` unable to double-adopt and a
        // retried invoke of a non-idempotent method exactly-once.
        if Self::is_request(&msg) {
            let cached = self
                .sites
                .get(&delivery.dst)
                .and_then(|site| site.replies.get(&msg.req_id()).cloned());
            if let Some(reply) = cached {
                mrom_obs::fed_dedup(delivery.dst, msg.kind());
                let _ = self.post(delivery.dst, delivery.src, &reply);
                return;
            }
        }
        match msg {
            ProtocolMsg::LinkReq {
                req_id,
                from,
                from_ioo,
            } => {
                let reply = self.handle_link_req(delivery.dst, from, from_ioo, req_id);
                self.reply_to(delivery.dst, delivery.src, req_id, &reply);
            }
            ProtocolMsg::ImportReq {
                req_id,
                from,
                from_ioo,
                apo_name,
            } => {
                let reply = self.handle_import_req(delivery.dst, from, from_ioo, &apo_name, req_id);
                self.reply_to(delivery.dst, delivery.src, req_id, &reply);
            }
            ProtocolMsg::InvokeReq {
                req_id,
                caller,
                target,
                method,
                args,
                trace,
                parent_span,
            } => {
                if self.site_workers > 1 {
                    self.enqueue_invoke(
                        delivery.dst,
                        QueuedInvoke {
                            src: delivery.src,
                            req_id,
                            caller,
                            target,
                            method,
                            args,
                            trace,
                            parent_span,
                        },
                    );
                    return;
                }
                // Continue the sender's trace for the duration of the
                // remote invocation: both halves of the cross-site call
                // share one causally-linked timeline.
                let _scope = mrom_obs::continue_trace(trace, parent_span);
                let reply = match self
                    .sites
                    .get_mut(&delivery.dst)
                    .ok_or(HadasError::UnknownSite(delivery.dst))
                    .and_then(|site| {
                        site.runtime
                            .invoke(caller, target, &method, &args)
                            .map_err(HadasError::Model)
                    }) {
                    Ok(result) => ProtocolMsg::InvokeResp { req_id, result },
                    Err(e) => ProtocolMsg::Error {
                        req_id,
                        reason: e.to_string(),
                    },
                };
                self.reply_to(delivery.dst, delivery.src, req_id, &reply);
            }
            ProtocolMsg::UpdateReq {
                req_id,
                origin,
                target,
                ops,
            } => {
                let reply = match self.apply_update(delivery.dst, origin, target, &ops) {
                    Ok(applied) => ProtocolMsg::UpdateAck { req_id, applied },
                    Err(e) => ProtocolMsg::Error {
                        req_id,
                        reason: e.to_string(),
                    },
                };
                self.reply_to(delivery.dst, delivery.src, req_id, &reply);
            }
            ProtocolMsg::MoveObject {
                req_id,
                image,
                trace,
                parent_span,
            } => {
                // The migrating object's trace context travelled with it:
                // adoption and the arrival hook stay on the origin's trace.
                let _scope = mrom_obs::continue_trace(trace, parent_span);
                let reply = match self.handle_move(delivery.dst, delivery.src, &image) {
                    Ok(adopted) => ProtocolMsg::MoveAck { req_id, adopted },
                    Err(e) => ProtocolMsg::Error {
                        req_id,
                        reason: e.to_string(),
                    },
                };
                self.reply_to(delivery.dst, delivery.src, req_id, &reply);
            }
            ProtocolMsg::QueryObject { req_id, object } => {
                let hosted = self
                    .sites
                    .get(&delivery.dst)
                    .is_some_and(|site| site.runtime.object(object).is_some());
                let reply = ProtocolMsg::QueryAck { req_id, hosted };
                self.reply_to(delivery.dst, delivery.src, req_id, &reply);
            }
            reply @ (ProtocolMsg::LinkAck { .. }
            | ProtocolMsg::ExportAck { .. }
            | ProtocolMsg::InvokeResp { .. }
            | ProtocolMsg::UpdateAck { .. }
            | ProtocolMsg::MoveAck { .. }
            | ProtocolMsg::QueryAck { .. }
            | ProtocolMsg::Error { .. }) => {
                // Only replies someone is still waiting for complete an
                // operation; a duplicate of an already-consumed reply is
                // dropped here instead of leaking into `completed`.
                if self.pending.contains(&reply.req_id()) {
                    self.completed.insert(reply.req_id(), reply);
                }
            }
        }
    }

    /// Is this message a request (something that produces a reply)?
    fn is_request(msg: &ProtocolMsg) -> bool {
        matches!(
            msg,
            ProtocolMsg::LinkReq { .. }
                | ProtocolMsg::ImportReq { .. }
                | ProtocolMsg::InvokeReq { .. }
                | ProtocolMsg::UpdateReq { .. }
                | ProtocolMsg::MoveObject { .. }
                | ProtocolMsg::QueryObject { .. }
        )
    }

    /// Posts `reply` and remembers it in the replying site's dedup cache
    /// so a retransmitted request is answered without re-execution.
    fn reply_to(&mut self, at: NodeId, to: NodeId, req_id: u64, reply: &ProtocolMsg) {
        if let Some(site) = self.sites.get_mut(&at) {
            site.remember_reply(req_id, reply);
        }
        let _ = self.post(at, to, reply);
    }

    /// Parks an arriving `InvokeReq` in the destination site's inbox.
    /// A request already queued under the same id (a network duplicate
    /// or a sender retry racing the drain) is dropped — the eventual
    /// single execution answers both copies via the reply cache.
    fn enqueue_invoke(&mut self, dst: NodeId, q: QueuedInvoke) {
        let Some(site) = self.sites.get_mut(&dst) else {
            let reply = ProtocolMsg::Error {
                req_id: q.req_id,
                reason: HadasError::UnknownSite(dst).to_string(),
            };
            let _ = self.post(dst, q.src, &reply);
            return;
        };
        if site.inbox.iter().any(|p| p.req_id == q.req_id) {
            mrom_obs::fed_dedup(dst, "invoke_req");
            return;
        }
        site.inbox.push(q);
    }

    /// Flushes every site's invocation inbox; returns whether any
    /// invocation ran (i.e. whether new replies hit the wire).
    fn drain_all_inboxes(&mut self) -> bool {
        let nodes: Vec<NodeId> = self.sites.keys().copied().collect();
        let mut moved = false;
        for node in nodes {
            moved |= self.drain_inbox(node);
        }
        moved
    }

    /// Executes a site's queued invocations on the worker pool and posts
    /// their replies in arrival order (execution interleaves across
    /// threads; reply traffic stays deterministic per batch). Returns
    /// whether anything ran.
    fn drain_inbox(&mut self, node: NodeId) -> bool {
        let workers = self.site_workers;
        let Some(site) = self.sites.get_mut(&node) else {
            return false;
        };
        if site.inbox.is_empty() {
            return false;
        }
        let batch = std::mem::take(&mut site.inbox);
        let replies = run_site_batch(site.runtime.shared(), node, &batch, workers);
        for (q, reply) in batch.iter().zip(&replies) {
            self.reply_to(node, q.src, q.req_id, reply);
        }
        true
    }

    fn handle_link_req(
        &mut self,
        at: NodeId,
        from: NodeId,
        _from_ioo: ObjectId,
        req_id: u64,
    ) -> ProtocolMsg {
        let Some(site) = self.sites.get_mut(&at) else {
            return ProtocolMsg::Error {
                req_id,
                reason: format!("no site at {at}"),
            };
        };
        site.links.insert(from);
        // Build an IOO Ambassador: a small mobile object representing this
        // IOO abroad.
        let ioo = site.ioo;
        let amb = mrom_core::ObjectBuilder::new(site.runtime.ids_mut().next_id())
            .class("ioo-ambassador")
            .origin(ioo)
            .fixed_data(
                "represents_site",
                mrom_core::DataItem::public(Value::Int(at.0 as i64)),
            )
            .fixed_data(
                "represents_ioo",
                mrom_core::DataItem::public(Value::ObjectRef(ioo)),
            )
            .fixed_method(
                "site_info",
                mrom_core::Method::public(
                    mrom_core::MethodBody::script(
                        "return {\"site\": self.get(\"represents_site\"), \"ioo\": self.get(\"represents_ioo\")};",
                    )
                    .expect("site_info parses"),
                ),
            )
            .build();
        match amb.image_value().map(|v| mrom_value::wire::encode(&v)) {
            Ok(image) => ProtocolMsg::LinkAck {
                req_id,
                ioo,
                ambassador_image: image,
            },
            Err(e) => ProtocolMsg::Error {
                req_id,
                reason: e.to_string(),
            },
        }
    }

    fn handle_import_req(
        &mut self,
        at: NodeId,
        from: NodeId,
        _from_ioo: ObjectId,
        apo_name: &str,
        req_id: u64,
    ) -> ProtocolMsg {
        let deny = |reason: String| ProtocolMsg::Error { req_id, reason };
        let admission = self.admission;
        let Some(site) = self.sites.get_mut(&at) else {
            return deny(format!("no site at {at}"));
        };
        // Export phase 1: verify the requested APO is accessible to the
        // requesting IOO.
        let Some(&apo_id) = site.apos.get(apo_name) else {
            return deny(format!("no apo named {apo_name:?}"));
        };
        let allowed = match site.policies.get(apo_name).unwrap_or(&ExportPolicy::Linked) {
            ExportPolicy::Linked => site.links.contains(&from),
            ExportPolicy::Sites(set) => set.contains(&from),
            ExportPolicy::Nobody => false,
        };
        if !allowed {
            return deny(format!("export of {apo_name:?} denied to site {from}"));
        }
        // Export phase 2: instantiate the proper APO Ambassador.
        let spec = site.specs.get(apo_name).cloned().unwrap_or_default();
        let Some(apo) = site.runtime.object(apo_id) else {
            return deny(format!("apo object {apo_id} missing"));
        };
        let apo_clone = apo.clone();
        drop(apo);
        let amb_identity = site.runtime.ids_mut().next_id();
        let (ambassador, remote_methods) = match crate::ambassador::instantiate_ambassador_as(
            &apo_clone,
            apo_name,
            at,
            &spec,
            amb_identity,
            admission,
        ) {
            Ok(pair) => pair,
            Err(e) => return deny(e.to_string()),
        };
        let amb_id = ambassador.id();
        // Export phase 3: ship it as data.
        let image = match ambassador
            .image_value()
            .map(|v| mrom_value::wire::encode(&v))
        {
            Ok(bytes) => bytes,
            Err(e) => return deny(e.to_string()),
        };
        site.deployed
            .entry(apo_id)
            .or_default()
            .push((from, amb_id));
        ProtocolMsg::ExportAck {
            req_id,
            ambassador_image: image,
            origin_apo: apo_id,
            remote_methods,
        }
    }

    /// Receives a migrating object: unpack, adopt, run its `on_arrival`
    /// hook (if any) with an arrival context.
    fn handle_move(
        &mut self,
        at: NodeId,
        from: NodeId,
        image: &[u8],
    ) -> Result<ObjectId, HadasError> {
        let obj = self.admit_image(at, image)?;
        let id = obj.id();
        let now = self.net.now().as_millis();
        let site = self.sites.get_mut(&at).ok_or(HadasError::UnknownSite(at))?;
        let host_ioo = site.ioo;
        // Write-ahead: the arriving image goes to the depot before the
        // object runs, so a crash immediately after adoption still
        // restores it. The raw bytes are exactly the migration image.
        let _ = site.depot.store_mut().put(&id.to_string(), image);
        site.runtime.adopt(obj).map_err(HadasError::Model)?;
        mrom_obs::object_adopted(id, at);
        let has_hook = site
            .runtime
            .object(id)
            .is_some_and(|o| o.find_method("on_arrival").is_some());
        if has_hook {
            let context = Value::map([
                ("host_site", Value::Int(at.0 as i64)),
                ("came_from", Value::Int(from.0 as i64)),
                ("host_ioo", Value::ObjectRef(host_ioo)),
                ("arrived_at", Value::Int(now as i64)),
            ]);
            // A failing arrival hook evicts the object back into limbo
            // rather than leaving a half-installed guest.
            if let Err(e) = site.runtime.invoke(host_ioo, id, "on_arrival", &[context]) {
                let _ = site.runtime.evict(id);
                return Err(HadasError::Model(e));
            }
        }
        Ok(id)
    }

    fn apply_update(
        &mut self,
        at: NodeId,
        origin: ObjectId,
        target: ObjectId,
        ops: &[UpdateOp],
    ) -> Result<usize, HadasError> {
        let site = self.sites.get_mut(&at).ok_or(HadasError::UnknownSite(at))?;
        if !site.guests.contains_key(&target) {
            return Err(HadasError::UnknownAmbassador(target));
        }
        let obj = site
            .runtime
            .object_mut(target)
            .ok_or(HadasError::Model(MromError::NoSuchObject(target)))?;
        let mut applied = 0;
        for op in ops {
            // Each op runs with the claimed origin principal; the object's
            // own ACLs decide whether that principal is honoured, so a
            // forged origin gains nothing it could not do anyway.
            match op {
                UpdateOp::AddMethod(name, desc) => {
                    let method =
                        mrom_core::Method::from_descriptor(desc).map_err(HadasError::Model)?;
                    obj.add_method(origin, name, method)
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::SetMethod(name, desc) => {
                    obj.set_method(origin, name, desc)
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::DeleteMethod(name) => {
                    obj.delete_method(origin, name).map_err(HadasError::Model)?;
                }
                UpdateOp::AddData(name, value) => {
                    obj.add_data(origin, name, value.clone())
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::SetData(name, value) => {
                    obj.write_data(origin, name, value.clone())
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::InstallMetaInvoke(name) => {
                    obj.install_meta_invoke(origin, name)
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::UninstallMetaInvoke => {
                    obj.uninstall_meta_invoke(origin)
                        .map_err(HadasError::Model)?;
                }
            }
            applied += 1;
            // Migrated methods stop being relayed.
            if let UpdateOp::AddMethod(name, _) = op {
                if let Some(info) = site.guests.get_mut(&target) {
                    info.remote_methods.retain(|m| m != name);
                }
            }
        }
        Ok(applied)
    }

    // -- synchronous operations ----------------------------------------------

    /// Establishes a Link agreement: installs an Ambassador of `to`'s IOO
    /// in `from`'s Vicinity. "This operation is a prerequisite for any
    /// further cooperation between the two IOOs."
    ///
    /// # Errors
    ///
    /// Site errors, [`HadasError::Timeout`] under partition/loss, remote
    /// refusals.
    pub fn link(&mut self, from: NodeId, to: NodeId) -> Result<(), HadasError> {
        let from_ioo = self.ioo_id(from)?;
        self.site(to)?; // fail fast on unknown peer
        let req_id = self.fresh_req_id();
        let reply = self.request(
            from,
            to,
            ProtocolMsg::LinkReq {
                req_id,
                from,
                from_ioo,
            },
        )?;
        match reply {
            ProtocolMsg::LinkAck {
                ambassador_image, ..
            } => {
                let amb = self.admit_image(from, &ambassador_image)?;
                let amb_id = amb.id();
                let site = self.site_mut(from)?;
                site.runtime.adopt(amb).map_err(HadasError::Model)?;
                site.links.insert(to);
                let ioo = site.ioo;
                if let Some(ioo_obj) = site.runtime.object_mut(ioo) {
                    map_insert(
                        ioo_obj,
                        "vicinity",
                        &to.to_string(),
                        Value::ObjectRef(amb_id),
                    );
                }
                Ok(())
            }
            ProtocolMsg::Error { reason, .. } => Err(HadasError::Remote(reason)),
            other => Err(HadasError::BadMessage(format!(
                "unexpected reply to link: {other:?}"
            ))),
        }
    }

    /// Imports an APO from `provider`: the Import/Export handshake. The
    /// Ambassador arrives as data, is unpacked, receives an installation
    /// context, installs itself, and is registered as a guest. Returns its
    /// identity.
    ///
    /// # Errors
    ///
    /// [`HadasError::NotLinked`] without a prior [`Federation::link`];
    /// export denials; transport failures.
    pub fn import_apo(
        &mut self,
        requester: NodeId,
        provider: NodeId,
        apo_name: &str,
    ) -> Result<ObjectId, HadasError> {
        if !self.is_linked(requester, provider) {
            return Err(HadasError::NotLinked {
                from: requester,
                to: provider,
            });
        }
        let from_ioo = self.ioo_id(requester)?;
        let req_id = self.fresh_req_id();
        let reply = self.request(
            requester,
            provider,
            ProtocolMsg::ImportReq {
                req_id,
                from: requester,
                from_ioo,
                apo_name: apo_name.to_owned(),
            },
        )?;
        match reply {
            ProtocolMsg::ExportAck {
                ambassador_image,
                origin_apo,
                remote_methods,
                ..
            } => {
                // "When the Ambassador arrives (as data) the importing IOO
                // unpacks it, passes to it an installation context and
                // invokes the Ambassador, which in turn installs itself."
                let amb = self.admit_image(requester, &ambassador_image)?;
                let amb_id = amb.id();
                let now = self.net.now().as_millis();
                let site = self.site_mut(requester)?;
                let host_ioo = site.ioo;
                site.runtime.adopt(amb).map_err(HadasError::Model)?;
                let context = Value::map([
                    ("host_site", Value::Int(requester.0 as i64)),
                    ("host_ioo", Value::ObjectRef(host_ioo)),
                    ("arrived_at", Value::Int(now as i64)),
                ]);
                site.runtime
                    .invoke(host_ioo, amb_id, "install", &[context])
                    .map_err(HadasError::Model)?;
                site.guests.insert(
                    amb_id,
                    GuestInfo {
                        origin_node: provider,
                        origin_apo,
                        apo_name: apo_name.to_owned(),
                        remote_methods,
                    },
                );
                // Persist the installed guest so a crash here does not
                // silently lose it (best-effort, like any depot save).
                if let Some(guest) = site.runtime.object(amb_id) {
                    let _ = site.depot.save(&guest);
                }
                let ioo = site.ioo;
                if let Some(ioo_obj) = site.runtime.object_mut(ioo) {
                    map_insert(
                        ioo_obj,
                        "guests",
                        &amb_id.to_string(),
                        Value::ObjectRef(origin_apo),
                    );
                }
                Ok(amb_id)
            }
            ProtocolMsg::Error { reason, .. } => Err(HadasError::Remote(reason)),
            other => Err(HadasError::BadMessage(format!(
                "unexpected reply to import: {other:?}"
            ))),
        }
    }

    /// Attempts allowed for one remote invocation under the active
    /// retry policy. [`RetryPolicy::IdempotentOnly`] consults the target
    /// method's interprocedural effect signature and re-posts only when
    /// the signature *proves* idempotence — a missing object, unknown
    /// method, or unprovable body all collapse to a single attempt. (The
    /// simulator owns both sites, so the lookup reads the destination
    /// runtime directly; a distributed deployment would carry the same
    /// signatures as export metadata.) The receiver's reply-dedup cache
    /// stays in place as the dynamic backstop either way.
    fn invoke_attempt_budget(&mut self, to: NodeId, target: ObjectId, method: &str) -> u32 {
        if !self.retry.gates_on_idempotence() {
            return self.retry.max_attempts();
        }
        let proven = self
            .sites
            .get_mut(&to)
            .and_then(|site| site.runtime.object_mut(target))
            .is_some_and(|obj| obj.effects().get(method).is_some_and(|sig| sig.idempotent));
        if proven {
            self.retry.max_attempts()
        } else {
            1
        }
    }

    /// Invokes a method on an object hosted at a remote site, as `caller`.
    ///
    /// # Errors
    ///
    /// Transport failures and remote invocation errors.
    pub fn remote_invoke(
        &mut self,
        from: NodeId,
        to: NodeId,
        caller: ObjectId,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        let span = mrom_obs::fed_op_start(from, "remote_invoke");
        let result = self.remote_invoke_inner(from, to, caller, target, method, args);
        mrom_obs::fed_op_end(span, "remote_invoke", result.is_ok());
        result
    }

    fn remote_invoke_inner(
        &mut self,
        from: NodeId,
        to: NodeId,
        caller: ObjectId,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        self.site(from)?;
        self.site(to)?;
        mrom_obs::remote_invoke_requested(from, target);
        let attempts = self.invoke_attempt_budget(to, target, method);
        let req_id = self.fresh_req_id();
        let (trace, parent_span) = mrom_obs::current_trace_context();
        let reply = self.request_capped(
            from,
            to,
            ProtocolMsg::InvokeReq {
                req_id,
                caller,
                target,
                method: method.to_owned(),
                args: args.to_vec(),
                trace,
                parent_span,
            },
            attempts,
        )?;
        match reply {
            ProtocolMsg::InvokeResp { result, .. } => Ok(result),
            ProtocolMsg::Error { reason, .. } => Err(HadasError::Remote(reason)),
            other => Err(HadasError::BadMessage(format!(
                "unexpected reply to invoke: {other:?}"
            ))),
        }
    }

    /// Posts a whole batch of invocations to one site before pumping, so
    /// the receiver's inbox fills and — with [`Federation::set_site_workers`]
    /// above 1 — the batch executes concurrently on its worker pool.
    /// Returns per-call results in batch order. With one worker this is
    /// observably equivalent to calling [`Federation::remote_invoke`] in
    /// a loop.
    ///
    /// # Errors
    ///
    /// Transport failures posting or pumping the batch; per-call remote
    /// errors come back in the result vector.
    pub fn remote_invoke_batch(
        &mut self,
        from: NodeId,
        to: NodeId,
        calls: &[InvokeCall],
    ) -> Result<Vec<Result<Value, HadasError>>, HadasError> {
        self.site(from)?;
        self.site(to)?;
        let span = mrom_obs::fed_op_start(from, "remote_invoke_batch");
        let (trace, parent_span) = mrom_obs::current_trace_context();
        let mut req_ids = Vec::with_capacity(calls.len());
        for call in calls {
            mrom_obs::remote_invoke_requested(from, call.target);
            let req_id = self.fresh_req_id();
            self.pending.insert(req_id);
            req_ids.push(req_id);
            if let Err(e) = self.post(
                from,
                to,
                &ProtocolMsg::InvokeReq {
                    req_id,
                    caller: call.caller,
                    target: call.target,
                    method: call.method.clone(),
                    args: call.args.clone(),
                    trace,
                    parent_span,
                },
            ) {
                for id in &req_ids {
                    self.pending.remove(id);
                }
                mrom_obs::fed_op_end(span, "remote_invoke_batch", false);
                return Err(e);
            }
        }
        if let Err(e) = self.pump_until(&req_ids, "remote_invoke_batch") {
            for id in &req_ids {
                self.pending.remove(id);
                self.completed.remove(id);
            }
            mrom_obs::fed_op_end(span, "remote_invoke_batch", false);
            return Err(e);
        }
        let results = req_ids
            .iter()
            .map(|id| {
                self.pending.remove(id);
                let reply = self
                    .completed
                    .remove(id)
                    .expect("pump_until guarantees presence");
                match reply {
                    ProtocolMsg::InvokeResp { result, .. } => Ok(result),
                    ProtocolMsg::Error { reason, .. } => Err(HadasError::Remote(reason)),
                    other => Err(HadasError::BadMessage(format!(
                        "unexpected reply to invoke: {other:?}"
                    ))),
                }
            })
            .collect();
        mrom_obs::fed_op_end(span, "remote_invoke_batch", true);
        Ok(results)
    }

    /// Invokes through a hosted Ambassador: locally when the method has
    /// migrated with (or was later pushed to) the Ambassador, relayed to
    /// the origin APO when it stayed home.
    ///
    /// # Errors
    ///
    /// Unknown-ambassador errors, local invocation errors, relay errors,
    /// and [`HadasError::Remote`]/[`HadasError::Timeout`] on the relay
    /// path.
    pub fn call_through_ambassador(
        &mut self,
        host: NodeId,
        caller: ObjectId,
        ambassador: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        let site = self.site(host)?;
        let info = site
            .guests
            .get(&ambassador)
            .ok_or(HadasError::UnknownAmbassador(ambassador))?
            .clone();
        // The Ambassador gets first say: if the method migrated with it, it
        // serves locally, and if a meta-invoke tower is installed (e.g. the
        // maintenance notice), the tower intercepts *every* invocation —
        // even of methods that normally relay.
        let try_local = site
            .runtime
            .object(ambassador)
            .is_some_and(|obj| obj.has_method(caller, method) || !obj.tower().is_empty());
        if try_local {
            let site = self.site_mut(host)?;
            match site.runtime.invoke(caller, ambassador, method, args) {
                Ok(v) => return Ok(v),
                // The tower was installed but descended to a method the
                // Ambassador does not carry: fall through to the relay.
                Err(MromError::NoSuchMethod { .. }) => {}
                Err(e) => return Err(HadasError::Model(e)),
            }
        }
        if info.remote_methods.iter().any(|m| m == method) {
            mrom_obs::ambassador_relay(host, ambassador, method);
            return self.remote_invoke(
                host,
                info.origin_node,
                caller,
                info.origin_apo,
                method,
                args,
            );
        }
        Err(HadasError::Model(MromError::NoSuchMethod {
            object: ambassador,
            name: method.to_owned(),
        }))
    }

    /// Pushes structural updates from an origin APO to **all** of its
    /// deployed Ambassadors (the §5 dynamic-update mechanism). Returns the
    /// number of Ambassadors updated.
    ///
    /// # Errors
    ///
    /// Lookup errors, [`HadasError::Timeout`] when some host is
    /// unreachable, [`HadasError::Remote`] when a host rejected the
    /// update.
    pub fn push_update(
        &mut self,
        origin: NodeId,
        apo_name: &str,
        ops: &[UpdateOp],
    ) -> Result<usize, HadasError> {
        let apo_id = self.apo_id(origin, apo_name)?;
        let targets = self.deployed_ambassadors(origin, apo_name)?;
        let mut req_ids = Vec::with_capacity(targets.len());
        let mut posted = Ok(());
        for (host, amb) in &targets {
            let req_id = self.fresh_req_id();
            let msg = ProtocolMsg::UpdateReq {
                req_id,
                origin: apo_id,
                target: *amb,
                ops: ops.to_vec(),
            };
            // Replies only count while their id is pending.
            self.pending.insert(req_id);
            req_ids.push(req_id);
            if let Err(e) = self.post(origin, *host, &msg) {
                posted = Err(e);
                break;
            }
        }
        let pumped = posted.and_then(|()| self.pump_until(&req_ids, "push_update"));
        for req_id in &req_ids {
            self.pending.remove(req_id);
        }
        pumped?;
        let mut updated = 0;
        for req_id in req_ids {
            match self.completed.remove(&req_id) {
                Some(ProtocolMsg::UpdateAck { .. }) => updated += 1,
                Some(ProtocolMsg::Error { reason, .. }) => return Err(HadasError::Remote(reason)),
                other => {
                    return Err(HadasError::BadMessage(format!(
                        "unexpected update reply: {other:?}"
                    )))
                }
            }
        }
        Ok(updated)
    }

    /// Dispatches a whole object to another site — the itinerant-agent
    /// move of the paper's introduction. The object is evicted locally,
    /// serializes itself, travels as data, is adopted at the destination,
    /// and — if it carries an `on_arrival` method — is invoked with an
    /// arrival context so it can install itself and decide its next move.
    ///
    /// Requires a Link agreement between the sites. On transport failure
    /// the object is restored locally (it never ceases to exist).
    ///
    /// # Errors
    ///
    /// Link/lookup errors, [`MromError::NotMobile`] for objects with
    /// native bodies, transport timeouts, and remote refusals.
    pub fn dispatch_object(
        &mut self,
        from: NodeId,
        to: NodeId,
        object: ObjectId,
    ) -> Result<(), HadasError> {
        let span = mrom_obs::fed_op_start(from, "dispatch_object");
        let result = self.dispatch_object_inner(from, to, object);
        mrom_obs::fed_op_end(span, "dispatch_object", result.is_ok());
        result
    }

    /// World calls whose meaning is pinned to the hosting site: `send`
    /// resolves peer `ObjectRef`s against the *local* object table and
    /// `spawn` instantiates from the *local* class registry — neither
    /// reference travels with a migration image. Ambient services
    /// (`log`, `time`, `node`) exist identically at every site and are
    /// migration-portable.
    const SITE_LOCAL_WORLD_CALLS: [&'static str; 2] = ["send", "spawn"];

    /// Under [`AdmissionPolicy::Strict`], refuses to dispatch an object
    /// whose interprocedural effect signatures prove some method
    /// (transitively) depends on site-local world calls — the static
    /// analogue of shipping an agent whose peer references would dangle
    /// on arrival. Signatures are read from the departing object's
    /// generation-stamped cache, so repeat dispatches of an unchanged
    /// object pay no re-analysis.
    fn check_migration_safety(&mut self, from: NodeId, object: ObjectId) -> Result<(), HadasError> {
        let site = self.site_mut(from)?;
        let Some(obj) = site.runtime.object_mut(object) else {
            return Ok(()); // evict reports NoSuchObject with more context
        };
        let effects = obj.effects();
        let site_bound = |sig: &mrom_core::EffectSignature| -> Vec<String> {
            sig.world_calls
                .iter()
                .filter(|c| Self::SITE_LOCAL_WORLD_CALLS.contains(&c.as_str()))
                .cloned()
                .collect()
        };
        // Report a method that *itself* resolves to the calls (not a
        // dynamic join like the `invoke` meta-method, which absorbs
        // every method's effects and would otherwise win by name order).
        let offender = effects
            .iter()
            .filter(|(_, sig)| !sig.dynamic)
            .chain(effects.iter())
            .find_map(|(method, sig)| {
                let bound = site_bound(sig);
                (!bound.is_empty()).then(|| (method.clone(), bound))
            });
        match offender {
            Some((method, world_calls)) => Err(HadasError::MigrationRefused {
                object,
                method,
                world_calls,
            }),
            None => Ok(()),
        }
    }

    fn dispatch_object_inner(
        &mut self,
        from: NodeId,
        to: NodeId,
        object: ObjectId,
    ) -> Result<(), HadasError> {
        if !self.is_linked(from, to) {
            return Err(HadasError::NotLinked { from, to });
        }
        if matches!(self.admission, AdmissionPolicy::Strict) {
            self.check_migration_safety(from, object)?;
        }
        let site = self.site_mut(from)?;
        let obj = site.runtime.evict(object).map_err(HadasError::Model)?;
        let image = match obj.image_value().map(|v| mrom_value::wire::encode(&v)) {
            Ok(bytes) => bytes,
            Err(e) => {
                // Not mobile: put it back, report.
                site.runtime.adopt(obj).expect("just evicted");
                return Err(HadasError::Model(e));
            }
        };
        // Write-ahead: the departing image is parked in the origin depot
        // until the move is acknowledged, so neither a local crash nor a
        // lost acknowledgement can lose the object.
        let _ = site.depot.store_mut().put(&object.to_string(), &image);
        let req_id = self.fresh_req_id();
        mrom_obs::object_dispatched(object, from, to);
        let (trace, parent_span) = mrom_obs::current_trace_context();
        let outcome = self.request(
            from,
            to,
            ProtocolMsg::MoveObject {
                req_id,
                image,
                trace,
                parent_span,
            },
        );
        match outcome {
            Ok(ProtocolMsg::MoveAck { adopted, .. }) if adopted == object => {
                // The destination owns it now: drop the parked image so a
                // later restart here cannot resurrect a second copy.
                let _ = self.site_mut(from)?.depot.remove(object);
                Ok(())
            }
            Ok(ProtocolMsg::Error { reason, .. }) => {
                self.restore_after_failed_move(from, obj)?;
                Err(HadasError::Remote(reason))
            }
            Ok(other) => {
                self.restore_after_failed_move(from, obj)?;
                Err(HadasError::BadMessage(format!(
                    "unexpected reply to move: {other:?}"
                )))
            }
            Err(e @ HadasError::Timeout { .. }) if !self.retry.is_off() => {
                // Every retry was exhausted and we still do not know
                // whether the destination adopted the object. Re-adopting
                // locally could *duplicate* it, so the object is parked
                // in-doubt: its image stays in the depot and
                // [`Federation::resolve_in_doubt`] settles ownership once
                // the network heals.
                self.site_mut(from)?.in_doubt.insert(object, to);
                Err(e)
            }
            Err(e) => {
                self.restore_after_failed_move(from, obj)?;
                Err(e)
            }
        }
    }

    /// Re-adopts an object whose move definitively failed (the peer
    /// refused it, so it cannot exist remotely) and keeps its depot image
    /// in step with the live copy.
    fn restore_after_failed_move(
        &mut self,
        from: NodeId,
        obj: MromObject,
    ) -> Result<(), HadasError> {
        self.site_mut(from)?
            .runtime
            .adopt(obj)
            .expect("identity unused after failed move");
        Ok(())
    }

    // -- crash and recovery --------------------------------------------------

    /// Simulates a fail-stop crash of a site: the network drops all of
    /// its traffic, every live object vanishes from its runtime, and the
    /// volatile reply cache is wiped. The depot — the site's
    /// self-contained persistent store (paper §9) — survives and is what
    /// [`Federation::restart_site`] bootstraps from.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`] / network errors.
    pub fn crash_site(&mut self, node: NodeId) -> Result<(), HadasError> {
        self.site(node)?;
        self.net.crash_node(node)?;
        let site = self.sites.get_mut(&node).expect("checked above");
        for id in site.runtime.object_ids() {
            let _ = site.runtime.evict(id);
        }
        site.replies.clear();
        // Queued invocations die with the site; their senders retry (or
        // time out) exactly as if the requests had been lost on the wire.
        site.inbox.clear();
        mrom_obs::site_crash(node);
        Ok(())
    }

    /// Restarts a crashed site: reconnects it to the network and
    /// bootstraps every object in its depot back into the runtime — the
    /// paper's "objects write themselves to and bootstrap themselves
    /// back from persistent store" recovery model. Corrupt depot entries
    /// are quarantined rather than aborting the restart, and a lost IOO
    /// image degrades to a fresh (empty) IOO so the site stays operable.
    /// Returns `(restored, quarantined)` counts.
    ///
    /// Objects parked in-doubt by a failed migration are deliberately
    /// *not* re-adopted — their ownership is unknown until
    /// [`Federation::resolve_in_doubt`] settles it.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`] / network errors.
    pub fn restart_site(&mut self, node: NodeId) -> Result<(u64, u64), HadasError> {
        self.site(node)?;
        self.net.restart_node(node)?;
        let now = self.net.now().as_millis();
        let site = self.sites.get_mut(&node).expect("checked above");
        let (objects, failures) = site.depot.restore_all();
        let quarantined = failures.len() as u64;
        let mut restored = 0u64;
        for obj in objects {
            let id = obj.id();
            if site.in_doubt.contains_key(&id) || site.runtime.object(id).is_some() {
                continue;
            }
            if site.runtime.adopt(obj).is_ok() {
                restored += 1;
            }
        }
        if site.runtime.object(site.ioo).is_none() {
            let ioo_obj = crate::ioo::build_ioo_as(site.runtime.ids_mut().next_id(), node);
            let ioo = ioo_obj.id();
            let _ = site.depot.save(&ioo_obj);
            site.runtime.adopt(ioo_obj).map_err(HadasError::Model)?;
            site.ioo = ioo;
        }
        site.runtime.set_now(now);
        mrom_obs::site_restart(node, restored, quarantined);
        Ok((restored, quarantined))
    }

    /// Checkpoints every live *mobile* object at a site into its depot,
    /// refreshing any stale write-ahead images. Objects with native
    /// bodies cannot serialise and are skipped. Returns the number
    /// saved.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`]; [`HadasError::Persist`] on backend
    /// failures.
    pub fn checkpoint_site(&mut self, node: NodeId) -> Result<usize, HadasError> {
        let site = self.site_mut(node)?;
        let ids = site.runtime.object_ids();
        let objects = ids.iter().filter_map(|id| site.runtime.object(*id));
        let (saved, _pinned) = site
            .depot
            .checkpoint(objects)
            .map_err(|e| HadasError::Persist(e.to_string()))?;
        Ok(saved)
    }

    /// Settles every in-doubt migration parked at `node` by asking each
    /// intended destination whether the object landed: if it did, the
    /// local depot image is dropped (the destination owns it); if not,
    /// the object is bootstrapped back from the depot (we own it). A
    /// destination that is still unreachable leaves its entry parked for
    /// a later call. Returns the number of migrations resolved.
    ///
    /// # Errors
    ///
    /// Lookup errors, [`HadasError::Persist`] when a parked image cannot
    /// be restored, protocol errors.
    pub fn resolve_in_doubt(&mut self, node: NodeId) -> Result<usize, HadasError> {
        let parked: Vec<(ObjectId, NodeId)> = self
            .site(node)?
            .in_doubt
            .iter()
            .map(|(object, dest)| (*object, *dest))
            .collect();
        let mut resolved = 0;
        for (object, dest) in parked {
            let req_id = self.fresh_req_id();
            let reply = match self.request(node, dest, ProtocolMsg::QueryObject { req_id, object })
            {
                Ok(r) => r,
                Err(HadasError::Timeout { .. }) => continue,
                Err(e) => return Err(e),
            };
            match reply {
                ProtocolMsg::QueryAck { hosted: true, .. } => {
                    let site = self.site_mut(node)?;
                    let _ = site.depot.remove(object);
                    site.in_doubt.remove(&object);
                    resolved += 1;
                }
                ProtocolMsg::QueryAck { hosted: false, .. } => {
                    let site = self.site_mut(node)?;
                    let obj = site
                        .depot
                        .restore(object)
                        .map_err(|e| HadasError::Persist(e.to_string()))?;
                    site.runtime.adopt(obj).map_err(HadasError::Model)?;
                    site.in_doubt.remove(&object);
                    resolved += 1;
                }
                other => {
                    return Err(HadasError::BadMessage(format!(
                        "unexpected reply to query: {other:?}"
                    )))
                }
            }
        }
        Ok(resolved)
    }

    /// The migrations parked in-doubt at a site, as `(object, intended
    /// destination)` pairs.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn in_doubt(&self, node: NodeId) -> Result<Vec<(ObjectId, NodeId)>, HadasError> {
        Ok(self
            .site(node)?
            .in_doubt
            .iter()
            .map(|(object, dest)| (*object, *dest))
            .collect())
    }

    /// Is the site currently crashed?
    pub fn is_down(&self, node: NodeId) -> bool {
        self.net.is_down(node)
    }

    /// Messages currently on the wire (chaos invariant checks).
    pub fn in_flight(&self) -> usize {
        self.net.in_flight()
    }

    /// Installs an *interoperability program* — a coordination-level
    /// script — into a site's IOO (Figure 2's **Interop** component).
    ///
    /// The program runs on the IOO object and may reach every object
    /// hosted at the site (local APOs and guest Ambassadors alike) through
    /// `self.send(ref, method, args)`; it is how "(dynamic) control- and
    /// data-flow between (integrated, interconnected and configured)
    /// components" is specified.
    ///
    /// # Errors
    ///
    /// Site errors, script parse errors, and duplicate program names.
    pub fn install_interop_program(
        &mut self,
        node: NodeId,
        name: &str,
        source: &str,
    ) -> Result<(), HadasError> {
        let site = self.site_mut(node)?;
        let ioo = site.ioo;
        let program = mrom_core::Method::public(
            mrom_core::MethodBody::script(source).map_err(HadasError::Model)?,
        );
        site.runtime
            .object_mut(ioo)
            .ok_or(HadasError::Model(MromError::NoSuchObject(ioo)))?
            .add_method(mrom_value::ObjectId::SYSTEM, name, program)
            .map_err(HadasError::Model)
    }

    /// Runs an installed interoperability program with the system
    /// principal, returning its result.
    ///
    /// # Errors
    ///
    /// Site errors and whatever the program raises.
    pub fn run_interop(
        &mut self,
        node: NodeId,
        name: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        let site = self.site_mut(node)?;
        let ioo = site.ioo;
        site.runtime
            .invoke_as_system(ioo, name, args)
            .map_err(HadasError::Model)
    }

    /// The guest Ambassadors hosted at a site, as `(ambassador id, origin
    /// APO name)` pairs — what an interop program enumerates to find its
    /// components.
    ///
    /// # Errors
    ///
    /// Site errors.
    pub fn guests(&self, node: NodeId) -> Result<Vec<(ObjectId, String)>, HadasError> {
        Ok(self
            .site(node)?
            .guests
            .iter()
            .map(|(id, info)| (*id, info.apo_name.clone()))
            .collect())
    }

    /// Migrates a method from an APO to all of its deployed Ambassadors:
    /// "The dynamic migration of functionality (methods) and data from the
    /// APO to its ambassador ... can be done using the meta-methods."
    /// After migration the method is served locally at every hosting site.
    ///
    /// # Errors
    ///
    /// Lookup errors, non-mobile methods, transport failures.
    pub fn migrate_method(
        &mut self,
        origin: NodeId,
        apo_name: &str,
        method: &str,
    ) -> Result<usize, HadasError> {
        let apo_id = self.apo_id(origin, apo_name)?;
        // The APO reads its own method definition (full descriptor); scope
        // the object guard so the site borrow ends before push_update.
        let desc = {
            let site = self.site(origin)?;
            let apo = site
                .runtime
                .object(apo_id)
                .ok_or(HadasError::Model(MromError::NoSuchObject(apo_id)))?;
            apo.method_descriptor(apo_id, method)
                .map_err(HadasError::Model)?
        };
        // ... and pushes it to every Ambassador via addMethod.
        self.push_update(
            origin,
            apo_name,
            &[UpdateOp::AddMethod(method.to_owned(), desc)],
        )
    }

    /// Negotiates the import of one method from a provider's APO into
    /// the guest Ambassador hosted at `consumer` — the marketplace
    /// transaction: discovery via the advertised capability card,
    /// admission via the card's world-call listing, then a targeted
    /// functionality migration.
    ///
    /// The consumer first consults the Ambassador's `capability_card`
    /// data (see [`AmbassadorSpec::with_capability_card`]): under
    /// [`AdmissionPolicy::Strict`] a method whose card lists site-local
    /// world calls (`send`, `spawn` — references that would dangle away
    /// from the origin) is refused *before any bytes move*, the static
    /// [`HadasError::MigrationRefused`] contract of
    /// [`Federation::dispatch_object`] applied to functionality instead
    /// of whole objects. Otherwise the provider pushes the method
    /// descriptor to that one Ambassador (a targeted
    /// [`UpdateOp::AddMethod`]); from then on the importing site serves
    /// it locally and drops it from the relay set, and the method's
    /// effect signature is re-solved lazily *on the importing host* the
    /// first time anything asks — imported capability, local proof.
    ///
    /// Returns the guest Ambassador's identity.
    ///
    /// # Errors
    ///
    /// [`HadasError::NotLinked`] without a Link agreement;
    /// [`HadasError::UnknownApo`] when no guest of that APO is hosted at
    /// `consumer`; [`HadasError::MigrationRefused`] under `Strict` for a
    /// card-flagged method; lookup, transport, and remote errors
    /// otherwise.
    pub fn negotiate_method_import(
        &mut self,
        consumer: NodeId,
        provider: NodeId,
        apo_name: &str,
        method: &str,
    ) -> Result<ObjectId, HadasError> {
        if !self.is_linked(consumer, provider) {
            return Err(HadasError::NotLinked {
                from: consumer,
                to: provider,
            });
        }
        let amb_id = self
            .site(consumer)?
            .guests
            .iter()
            .find(|(_, info)| info.origin_node == provider && info.apo_name == apo_name)
            .map(|(id, _)| *id)
            .ok_or_else(|| HadasError::UnknownApo(apo_name.to_owned()))?;

        // Admission by advertisement: the card travelled with the guest,
        // so the refusal is a local decision — no wire round-trip.
        if matches!(self.admission, AdmissionPolicy::Strict) {
            let offending: Vec<String> = self
                .site(consumer)?
                .runtime
                .object(amb_id)
                .and_then(|amb| amb.read_data(ObjectId::SYSTEM, "capability_card").ok())
                .as_ref()
                .and_then(Value::as_map)
                .and_then(|card| card.get(method))
                .and_then(Value::as_map)
                .and_then(|entry| entry.get("world"))
                .and_then(Value::as_list)
                .into_iter()
                .flatten()
                .filter_map(Value::as_str)
                .filter(|c| Self::SITE_LOCAL_WORLD_CALLS.contains(c))
                .map(str::to_owned)
                .collect();
            if !offending.is_empty() {
                return Err(HadasError::MigrationRefused {
                    object: amb_id,
                    method: method.to_owned(),
                    world_calls: offending,
                });
            }
        }

        // The provider reads its APO's full method definition and pushes
        // it to this one Ambassador.
        let apo_id = self.apo_id(provider, apo_name)?;
        let desc = {
            let site = self.site(provider)?;
            let apo = site
                .runtime
                .object(apo_id)
                .ok_or(HadasError::Model(MromError::NoSuchObject(apo_id)))?;
            apo.method_descriptor(apo_id, method)
                .map_err(HadasError::Model)?
        };
        let req_id = self.fresh_req_id();
        let msg = ProtocolMsg::UpdateReq {
            req_id,
            origin: apo_id,
            target: amb_id,
            ops: vec![UpdateOp::AddMethod(method.to_owned(), desc)],
        };
        self.pending.insert(req_id);
        let posted = self.post(provider, consumer, &msg);
        let pumped = posted.and_then(|()| self.pump_until(&[req_id], "negotiate_method_import"));
        self.pending.remove(&req_id);
        pumped?;
        match self.completed.remove(&req_id) {
            Some(ProtocolMsg::UpdateAck { .. }) => Ok(amb_id),
            Some(ProtocolMsg::Error { reason, .. }) => Err(HadasError::Remote(reason)),
            other => Err(HadasError::BadMessage(format!(
                "unexpected import-negotiation reply: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_core::{ClassSpec, DataItem, Method, MethodBody};
    use mrom_net::LinkConfig;

    fn db_apo_class() -> ClassSpec {
        ClassSpec::new("employee-db")
            .fixed_data("rows", DataItem::public(Value::Int(3)))
            .fixed_method(
                "count",
                Method::public(MethodBody::script("return self.get(\"rows\");").unwrap()),
            )
            .fixed_method(
                "salary_of",
                Method::public(
                    MethodBody::script(
                        "param name; return {\"alice\": 100, \"bob\": 90, \"eve\": 80}[name];",
                    )
                    .unwrap(),
                ),
            )
    }

    fn two_site_federation() -> (Federation, NodeId, NodeId) {
        let cfg = NetworkConfig::new(3).with_default_link(LinkConfig::lan());
        let mut fed = Federation::new(cfg);
        let a = NodeId(1);
        let b = NodeId(2);
        fed.add_site(a).unwrap();
        fed.add_site(b).unwrap();
        (fed, a, b)
    }

    fn integrate_db(fed: &mut Federation, at: NodeId, export: &[&str]) -> ObjectId {
        let apo =
            db_apo_class().instantiate_as(fed.runtime_mut(at).unwrap().ids_mut().next_id(), None);
        let spec = AmbassadorSpec::relay_only()
            .with_methods(export.iter().copied())
            .with_data(["rows"]);
        fed.integrate_apo(at, "db", apo, spec).unwrap()
    }

    #[test]
    fn link_installs_vicinity_ambassador() {
        let (mut fed, a, b) = two_site_federation();
        assert!(!fed.is_linked(a, b));
        fed.link(a, b).unwrap();
        assert!(fed.is_linked(a, b));
        assert!(fed.is_linked(b, a), "provider records the partner too");
        // The vicinity map holds the ambassador; the object answers.
        let ioo = fed.ioo_id(a).unwrap();
        let vicinity = fed
            .runtime(a)
            .unwrap()
            .object(ioo)
            .unwrap()
            .read_data(ObjectId::SYSTEM, "vicinity")
            .unwrap();
        let amb_ref = vicinity.as_map().unwrap()["n2"].as_object_ref().unwrap();
        let info = fed
            .runtime_mut(a)
            .unwrap()
            .invoke_as_system(amb_ref, "site_info", &[])
            .unwrap();
        assert_eq!(info.as_map().unwrap()["site"], Value::Int(2));
    }

    #[test]
    fn import_requires_link() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        assert!(matches!(
            fed.import_apo(a, b, "db"),
            Err(HadasError::NotLinked { .. })
        ));
    }

    #[test]
    fn import_export_ships_a_working_ambassador() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        // Installed itself with the context.
        let caller = fed.runtime_mut(a).unwrap().ids_mut().next_id();
        let installed = fed
            .runtime(a)
            .unwrap()
            .object(amb)
            .unwrap()
            .read_data(caller, "installed")
            .unwrap();
        assert_eq!(installed, Value::Bool(true));
        // Exported method runs locally at A.
        let out = fed
            .call_through_ambassador(a, caller, amb, "count", &[])
            .unwrap();
        assert_eq!(out, Value::Int(3));
        // Non-exported method relays to the origin at B.
        let out = fed
            .call_through_ambassador(a, caller, amb, "salary_of", &[Value::from("alice")])
            .unwrap();
        assert_eq!(out, Value::Int(100));
        // Guest bookkeeping.
        let info = fed.guest_info(a, amb).unwrap();
        assert_eq!(info.origin_node, b);
        assert_eq!(info.apo_name, "db");
        assert!(info.remote_methods.contains(&"salary_of".to_owned()));
    }

    #[test]
    fn export_policy_denies_unauthorized_sites() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        fed.set_export_policy(b, "db", ExportPolicy::Nobody)
            .unwrap();
        assert!(matches!(
            fed.import_apo(a, b, "db"),
            Err(HadasError::Remote(reason)) if reason.contains("denied")
        ));
        fed.set_export_policy(b, "db", ExportPolicy::Sites([a].into()))
            .unwrap();
        assert!(fed.import_apo(a, b, "db").is_ok());
    }

    #[test]
    fn unknown_apo_import_fails_remotely() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        assert!(matches!(
            fed.import_apo(a, b, "ghost"),
            Err(HadasError::Remote(_))
        ));
    }

    #[test]
    fn migrate_method_moves_functionality_to_the_edge() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        let caller = fed.runtime_mut(a).unwrap().ids_mut().next_id();

        let before_relay = fed.net_stats().messages_sent;
        fed.call_through_ambassador(a, caller, amb, "salary_of", &[Value::from("bob")])
            .unwrap();
        assert!(
            fed.net_stats().messages_sent > before_relay,
            "relayed over the net"
        );

        // Migrate salary_of into the deployed ambassador.
        assert_eq!(fed.migrate_method(b, "db", "salary_of").unwrap(), 1);

        let before_local = fed.net_stats().messages_sent;
        let out = fed
            .call_through_ambassador(a, caller, amb, "salary_of", &[Value::from("bob")])
            .unwrap();
        assert_eq!(out, Value::Int(90));
        assert_eq!(
            fed.net_stats().messages_sent,
            before_local,
            "served locally after migration"
        );
    }

    #[test]
    fn push_update_rewrites_remote_semantics() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        let caller = fed.runtime_mut(a).unwrap().ids_mut().next_id();

        // The origin pushes a maintenance meta-invoke (the §5 example).
        let updated = fed
            .push_update(
                b,
                "db",
                &[
                    UpdateOp::AddMethod(
                        "maintenance_notice".into(),
                        Value::map([
                            (
                                "body",
                                Value::from("return \"database is down for maintenance\";"),
                            ),
                            ("invoke_acl", Value::from("public")),
                        ]),
                    ),
                    UpdateOp::InstallMetaInvoke("maintenance_notice".into()),
                ],
            )
            .unwrap();
        assert_eq!(updated, 1);
        // Every invocation on the ambassador now echoes the notice.
        let out = fed
            .call_through_ambassador(a, caller, amb, "count", &[])
            .unwrap();
        assert_eq!(out, Value::from("database is down for maintenance"));
        // Back to normal after the uninstall push.
        fed.push_update(b, "db", &[UpdateOp::UninstallMetaInvoke])
            .unwrap();
        let out = fed
            .call_through_ambassador(a, caller, amb, "count", &[])
            .unwrap();
        assert_eq!(out, Value::Int(3));
    }

    #[test]
    fn partition_times_out_cleanly() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        fed.net_config_mut().partition(a, b);
        assert!(matches!(
            fed.import_apo(a, b, "db"),
            Err(HadasError::Timeout { .. })
        ));
        fed.net_config_mut().heal(a, b);
        assert!(fed.import_apo(a, b, "db").is_ok());
    }

    #[test]
    fn hostile_host_cannot_update_a_guest_with_forged_origin() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        // Site A (the host) forges an update claiming some random origin.
        let forged = fed.runtime_mut(a).unwrap().ids_mut().next_id();
        let site_b_view = fed.apo_id(b, "db").unwrap();
        assert_ne!(forged, site_b_view);
        let err = fed
            .apply_update(
                a,
                forged,
                amb,
                &[UpdateOp::AddData("evil".into(), Value::Null)],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            HadasError::Model(MromError::AccessDenied { .. })
        ));
    }

    #[test]
    fn site_stats_reflect_topology() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        fed.import_apo(a, b, "db").unwrap();
        let sa = fed.site_stats(a).unwrap();
        let sb = fed.site_stats(b).unwrap();
        assert_eq!(sa.guests, 1);
        assert_eq!(sa.apos, 0);
        assert_eq!(sb.apos, 1);
        assert_eq!(sb.deployed, 1);
        assert_eq!(sa.links, 1);
        assert_eq!(sb.links, 1);
    }

    #[test]
    fn virtual_time_advances_with_traffic() {
        let (mut fed, a, b) = two_site_federation();
        assert_eq!(fed.now(), SimTime::ZERO);
        fed.link(a, b).unwrap();
        assert!(fed.now() > SimTime::ZERO);
    }

    /// A mobile object with a non-idempotent method: double-application
    /// is directly visible in its counter.
    fn counter_object(fed: &mut Federation, at: NodeId) -> ObjectId {
        let obj = ClassSpec::new("counter")
            .fixed_data("n", DataItem::public(Value::Int(0)))
            .fixed_method(
                "bump",
                Method::public(
                    MethodBody::script(
                        "self.set(\"n\", self.get(\"n\") + 1); return self.get(\"n\");",
                    )
                    .unwrap(),
                ),
            )
            .instantiate_as(fed.runtime_mut(at).unwrap().ids_mut().next_id(), None);
        let id = obj.id();
        fed.runtime_mut(at).unwrap().adopt(obj).unwrap();
        id
    }

    #[test]
    fn retry_recovers_operations_loss_would_fail() {
        // Same seed, same lossy link; the only variable is the policy.
        let run = |policy: crate::RetryPolicy| {
            let cfg = NetworkConfig::new(2).with_default_link(LinkConfig::lan());
            let mut fed = Federation::new(cfg);
            let (a, b) = (NodeId(1), NodeId(2));
            fed.add_site(a).unwrap();
            fed.add_site(b).unwrap();
            fed.link(a, b).unwrap();
            let id = counter_object(&mut fed, b);
            fed.set_retry_policy(policy);
            fed.net_config_mut()
                .set_symmetric_link(a, b, LinkConfig::lan().loss_probability(0.35));
            let caller = fed.ioo_id(a).unwrap();
            let mut ok = 0;
            for _ in 0..6 {
                if fed.remote_invoke(a, b, caller, id, "bump", &[]).is_ok() {
                    ok += 1;
                }
            }
            let n = fed
                .runtime(b)
                .unwrap()
                .object(id)
                .unwrap()
                .read_data(ObjectId::SYSTEM, "n")
                .unwrap()
                .as_int()
                .unwrap();
            (ok, n, fed.net_stats().messages_dropped)
        };
        let (ok_off, n_off, dropped_off) = run(crate::RetryPolicy::Off);
        let (ok_retry, n_retry, dropped_retry) = run(crate::RetryPolicy::standard());
        assert!(
            dropped_off > 0 && dropped_retry > 0,
            "the loss actually bit"
        );
        assert_eq!(ok_off, 2, "without retries most calls fail on this seed");
        assert_eq!(ok_retry, 6, "retries recover every call");
        // Exactly-once under retries: every acknowledged call applied
        // exactly once, no retransmission applied twice.
        assert_eq!(n_retry, 6);
        assert!(n_off >= i64::from(ok_off));
    }

    #[test]
    fn duplicated_delivery_cannot_double_adopt_or_double_apply() {
        let cfg = NetworkConfig::new(5).with_default_link(LinkConfig::lan());
        let mut fed = Federation::new(cfg);
        let (a, b) = (NodeId(1), NodeId(2));
        fed.add_site(a).unwrap();
        fed.add_site(b).unwrap();
        fed.link(a, b).unwrap();
        let id = counter_object(&mut fed, a);
        fed.net_config_mut()
            .set_symmetric_link(a, b, LinkConfig::lan().duplicate_probability(1.0));
        // Every MoveObject arrives twice; the second must hit the reply
        // cache, not adopt a second copy.
        fed.dispatch_object(a, b, id).unwrap();
        fed.pump_all();
        assert!(fed.runtime(a).unwrap().object(id).is_none());
        assert!(fed.runtime(b).unwrap().object(id).is_some());
        // Every InvokeReq arrives twice; bump must apply exactly once.
        let caller = fed.ioo_id(a).unwrap();
        let first = fed.remote_invoke(a, b, caller, id, "bump", &[]).unwrap();
        let second = fed.remote_invoke(a, b, caller, id, "bump", &[]).unwrap();
        assert_eq!(first, Value::Int(1));
        assert_eq!(second, Value::Int(2));
        fed.pump_all();
        assert!(fed.net_stats().messages_duplicated > 0);
        assert!(fed.net_stats().accounts_for_every_send(fed.in_flight()));
    }

    #[test]
    fn lost_acks_park_the_move_in_doubt_and_resolution_finds_it_landed() {
        let cfg = NetworkConfig::new(9).with_default_link(LinkConfig::lan());
        let mut fed = Federation::new(cfg);
        let (a, b) = (NodeId(1), NodeId(2));
        fed.add_site(a).unwrap();
        fed.add_site(b).unwrap();
        fed.link(a, b).unwrap();
        let id = counter_object(&mut fed, a);
        fed.set_retry_policy(crate::RetryPolicy::standard());
        // Forward path intact, every acknowledgement lost.
        fed.net_config_mut()
            .set_link(b, a, LinkConfig::lan().loss_probability(1.0));
        let err = fed.dispatch_object(a, b, id).unwrap_err();
        assert!(matches!(err, HadasError::Timeout { attempts: 5, .. }));
        // The move actually landed; the origin parked it instead of
        // re-adopting a duplicate.
        assert!(fed.runtime(b).unwrap().object(id).is_some());
        assert!(fed.runtime(a).unwrap().object(id).is_none());
        assert_eq!(fed.in_doubt(a).unwrap(), vec![(id, b)]);
        // After the heal, resolution discovers the destination owns it.
        fed.net_config_mut().set_link(b, a, LinkConfig::lan());
        assert_eq!(fed.resolve_in_doubt(a).unwrap(), 1);
        assert!(fed.in_doubt(a).unwrap().is_empty());
        assert!(fed.runtime(a).unwrap().object(id).is_none());
        assert!(fed.runtime(b).unwrap().object(id).is_some());
    }

    #[test]
    fn partitioned_dispatch_parks_in_doubt_and_resolution_restores_it() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        let id = counter_object(&mut fed, a);
        fed.set_retry_policy(crate::RetryPolicy::standard());
        fed.net_config_mut().partition(a, b);
        assert!(fed.dispatch_object(a, b, id).is_err());
        // Nobody hosts it, but the depot still does.
        assert!(fed.runtime(a).unwrap().object(id).is_none());
        assert!(fed.runtime(b).unwrap().object(id).is_none());
        assert_eq!(fed.in_doubt(a).unwrap(), vec![(id, b)]);
        fed.net_config_mut().heal(a, b);
        assert_eq!(fed.resolve_in_doubt(a).unwrap(), 1);
        assert!(fed.runtime(a).unwrap().object(id).is_some());
        // The resumed move completes normally.
        fed.dispatch_object(a, b, id).unwrap();
        assert!(fed.runtime(b).unwrap().object(id).is_some());
    }

    #[test]
    fn off_policy_failed_dispatch_restores_the_object_locally() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        let id = counter_object(&mut fed, a);
        assert!(fed.retry_policy().is_off(), "Off is the default");
        fed.net_config_mut().partition(a, b);
        let err = fed.dispatch_object(a, b, id).unwrap_err();
        // Single attempt, historical restore-locally behaviour.
        assert!(matches!(err, HadasError::Timeout { attempts: 1, .. }));
        assert!(fed.runtime(a).unwrap().object(id).is_some());
        assert!(fed.in_doubt(a).unwrap().is_empty());
    }

    /// Adopts a scripted object at `at` and returns its identity.
    fn scripted_object(fed: &mut Federation, at: NodeId, methods: &[(&str, &str)]) -> ObjectId {
        let mut spec = ClassSpec::new("fx").fixed_data("peer", DataItem::public(Value::Null));
        for (name, src) in methods {
            spec = spec.fixed_method(name, Method::public(MethodBody::script(src).unwrap()));
        }
        let obj = spec.instantiate_as(fed.runtime_mut(at).unwrap().ids_mut().next_id(), None);
        let id = obj.id();
        fed.runtime_mut(at).unwrap().adopt(obj).unwrap();
        id
    }

    #[test]
    fn invoke_attempt_budget_consults_signatures() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        let id = scripted_object(
            &mut fed,
            b,
            &[
                ("bump", "self.set(\"n\", self.get(\"n\") + 1); return null;"),
                ("reset", "self.set(\"n\", 0); return null;"),
                ("peek", "return self.get(\"n\");"),
            ],
        );
        fed.set_retry_policy(crate::RetryPolicy::idempotent_only(
            5,
            SimTime::from_millis(10),
            2,
            0,
        ));
        // Provably idempotent (constant write / pure read): full budget.
        assert_eq!(fed.invoke_attempt_budget(b, id, "reset"), 5);
        assert_eq!(fed.invoke_attempt_budget(b, id, "peek"), 5);
        // Read-modify-write is not idempotent: one attempt.
        assert_eq!(fed.invoke_attempt_budget(b, id, "bump"), 1);
        // Unknown method or object: nothing provable, one attempt.
        assert_eq!(fed.invoke_attempt_budget(b, id, "absent"), 1);
        let ghost = ObjectId::from_parts(b, 9_999, 1);
        assert_eq!(fed.invoke_attempt_budget(b, ghost, "reset"), 1);
        // A plain backoff policy never gates.
        fed.set_retry_policy(crate::RetryPolicy::standard());
        assert_eq!(fed.invoke_attempt_budget(b, id, "bump"), 5);
    }

    #[test]
    fn strict_admission_refuses_dispatch_of_site_bound_objects() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        let id = scripted_object(
            &mut fed,
            a,
            &[
                (
                    "relay",
                    "return self.send(self.get(\"peer\"), \"peek\", []);",
                ),
                ("note", "self.log(\"here\"); return null;"),
            ],
        );
        fed.set_admission_policy(AdmissionPolicy::Strict);
        let err = fed.dispatch_object(a, b, id).unwrap_err();
        match err {
            HadasError::MigrationRefused {
                object,
                method,
                world_calls,
            } => {
                assert_eq!(object, id);
                assert_eq!(
                    method, "relay",
                    "the concrete offender, not the invoke join"
                );
                assert_eq!(world_calls, vec!["send".to_owned()]);
            }
            other => panic!("expected MigrationRefused, got {other}"),
        }
        // Refused before eviction: the object never left.
        assert!(fed.runtime(a).unwrap().object(id).is_some());
        // Dropping back to Warn lets the same object travel.
        fed.set_admission_policy(AdmissionPolicy::Warn);
        fed.dispatch_object(a, b, id).unwrap();
        assert!(fed.runtime(b).unwrap().object(id).is_some());
    }

    #[test]
    fn strict_admission_ships_portable_objects() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        // Ambient world services (`log`, `time`, `node`) exist at every
        // site: signatures naming only those stay migration-portable.
        let id = scripted_object(
            &mut fed,
            a,
            &[(
                "stamp",
                "self.set(\"peer\", self.time()); self.log(\"moved\"); return null;",
            )],
        );
        fed.set_admission_policy(AdmissionPolicy::Strict);
        fed.dispatch_object(a, b, id).unwrap();
        assert!(fed.runtime(b).unwrap().object(id).is_some());
    }

    #[test]
    fn crash_and_restart_bootstrap_objects_from_the_depot() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        let id = counter_object(&mut fed, a);
        fed.dispatch_object(a, b, id).unwrap();
        fed.crash_site(b).unwrap();
        assert!(fed.is_down(b));
        assert!(fed.runtime(b).unwrap().object(id).is_none());
        // Traffic to the crashed site fails cleanly.
        let caller = fed.ioo_id(a).unwrap();
        assert!(matches!(
            fed.remote_invoke(a, b, caller, id, "bump", &[]),
            Err(HadasError::Timeout { .. })
        ));
        let (restored, quarantined) = fed.restart_site(b).unwrap();
        assert!(!fed.is_down(b));
        assert_eq!(quarantined, 0);
        assert!(restored >= 1, "the migrated object came back");
        assert!(fed.runtime(b).unwrap().object(id).is_some());
        // And it serves again.
        let out = fed.remote_invoke(a, b, caller, id, "bump", &[]).unwrap();
        assert_eq!(out, Value::Int(1));
    }

    #[test]
    fn checkpoint_preserves_state_across_a_crash() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        let id = counter_object(&mut fed, a);
        fed.dispatch_object(a, b, id).unwrap();
        let caller = fed.ioo_id(a).unwrap();
        fed.remote_invoke(a, b, caller, id, "bump", &[]).unwrap();
        fed.remote_invoke(a, b, caller, id, "bump", &[]).unwrap();
        // Without a checkpoint the depot still holds the arrival image;
        // checkpointing refreshes it to n = 2.
        assert!(fed.checkpoint_site(b).unwrap() >= 1);
        fed.crash_site(b).unwrap();
        fed.restart_site(b).unwrap();
        let n = fed
            .runtime(b)
            .unwrap()
            .object(id)
            .unwrap()
            .read_data(ObjectId::SYSTEM, "n")
            .unwrap();
        assert_eq!(n, Value::Int(2), "checkpointed state survived the crash");
    }

    #[test]
    fn retry_policy_off_by_default_and_swappable() {
        let (mut fed, _a, _b) = two_site_federation();
        assert!(fed.retry_policy().is_off());
        let prev = fed.set_retry_policy(crate::RetryPolicy::standard());
        assert!(prev.is_off());
        assert!(!fed.retry_policy().is_off());
    }

    /// A federation with `n` standalone db objects adopted at site `b`,
    /// for exercising batched invocation.
    fn batch_fixture(workers: usize, n: usize) -> (Federation, NodeId, NodeId, Vec<ObjectId>) {
        let (mut fed, a, b) = two_site_federation();
        fed.set_site_workers(workers);
        let mut targets = Vec::new();
        for _ in 0..n {
            let rt = fed.runtime_mut(b).unwrap();
            let id = rt.ids_mut().next_id();
            rt.adopt(db_apo_class().instantiate_as(id, None)).unwrap();
            targets.push(id);
        }
        (fed, a, b, targets)
    }

    #[test]
    fn worker_pool_defaults_off_and_clamps() {
        let (mut fed, _a, _b) = two_site_federation();
        assert_eq!(fed.site_workers(), 1);
        assert_eq!(fed.set_site_workers(0), 1);
        assert_eq!(fed.site_workers(), 1, "clamped to at least one worker");
        fed.set_site_workers(4);
        assert_eq!(fed.site_workers(), 4);
    }

    #[test]
    fn worker_pool_batch_matches_inline_results() {
        let run = |workers: usize| {
            let (mut fed, a, b, targets) = batch_fixture(workers, 6);
            let caller = fed.ioo_id(a).unwrap();
            let calls: Vec<InvokeCall> = targets
                .iter()
                .map(|t| InvokeCall::new(caller, *t, "salary_of", &[Value::from("alice")]))
                .collect();
            fed.remote_invoke_batch(a, b, &calls)
                .unwrap()
                .into_iter()
                .map(Result::unwrap)
                .collect::<Vec<Value>>()
        };
        let inline = run(1);
        assert_eq!(inline, run(4), "pool and inline paths agree");
        assert_eq!(inline, vec![Value::Int(100); 6]);
    }

    #[test]
    fn worker_pool_serves_single_invokes_via_drain() {
        let (mut fed, a, b, targets) = batch_fixture(4, 1);
        let caller = fed.ioo_id(a).unwrap();
        let v = fed
            .remote_invoke(a, b, caller, targets[0], "count", &[])
            .unwrap();
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn worker_pool_batch_reports_per_call_errors() {
        let (mut fed, a, b, targets) = batch_fixture(4, 2);
        let caller = fed.ioo_id(a).unwrap();
        let calls = vec![
            InvokeCall::new(caller, targets[0], "count", &[]),
            InvokeCall::new(caller, targets[1], "no_such_method", &[]),
        ];
        let results = fed.remote_invoke_batch(a, b, &calls).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &Value::Int(3));
        assert!(matches!(results[1], Err(HadasError::Remote(_))));
    }

    #[test]
    fn crash_discards_queued_invocations() {
        let (mut fed, a, b, targets) = batch_fixture(4, 1);
        let caller = fed.ioo_id(a).unwrap();
        let (trace, parent_span) = mrom_obs::current_trace_context();
        let req_id = fed.fresh_req_id();
        fed.pending.insert(req_id);
        fed.post(
            a,
            b,
            &ProtocolMsg::InvokeReq {
                req_id,
                caller,
                target: targets[0],
                method: "count".into(),
                args: Vec::new(),
                trace,
                parent_span,
            },
        )
        .unwrap();
        // Deliver the request (it parks in the inbox), then crash before
        // any drain point is reached.
        while let Some(d) = fed.net.step() {
            fed.handle(d);
        }
        assert_eq!(fed.sites[&b].inbox.len(), 1);
        fed.crash_site(b).unwrap();
        assert!(fed.sites[&b].inbox.is_empty(), "crash wipes the inbox");
    }
}
