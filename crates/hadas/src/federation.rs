//! The federation driver: sites, the protocol engine, and the synchronous
//! convenience operations (Link, Import/Export, remote invocation,
//! functionality migration, update push) running over the simulated
//! network.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mrom_core::{AdmissionPolicy, MromError, MromObject, Runtime};
use mrom_net::{Delivery, NetStats, NetworkConfig, SimNet, SimTime};
use mrom_value::{NodeId, ObjectId, Value};

use crate::ambassador::{instantiate_ambassador_with_policy, AmbassadorSpec, GuestInfo};
use crate::error::HadasError;
use crate::ioo::{build_ioo, map_insert};
use crate::protocol::{ProtocolMsg, UpdateOp};

/// Who may import an APO — the access check the paper's Export performs
/// ("Export verifies that the requested APO is accessible to the
/// requesting IOO").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExportPolicy {
    /// Any *linked* site may import (the default: Link is already a
    /// prerequisite for all cooperation).
    #[default]
    Linked,
    /// Only the listed sites may import.
    Sites(BTreeSet<NodeId>),
    /// Nobody may import.
    Nobody,
}

/// One logical site: a node runtime, its IOO, and the bookkeeping the
/// protocol handlers maintain.
struct Site {
    runtime: Runtime,
    ioo: ObjectId,
    /// Home: APO name → identity.
    apos: BTreeMap<String, ObjectId>,
    /// Default functionality split per APO name.
    specs: BTreeMap<String, AmbassadorSpec>,
    /// Export access policy per APO name.
    policies: BTreeMap<String, ExportPolicy>,
    /// Sites this site has a Link agreement with (either direction).
    links: BTreeSet<NodeId>,
    /// Hosted guest Ambassadors.
    guests: BTreeMap<ObjectId, GuestInfo>,
    /// Ambassadors deployed *from* this site's APOs: APO id → (host node,
    /// ambassador id) pairs.
    deployed: BTreeMap<ObjectId, Vec<(NodeId, ObjectId)>>,
}

/// A point-in-time summary of one site, used by reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// The site's node.
    pub node: NodeId,
    /// Number of integrated APOs.
    pub apos: usize,
    /// Number of link agreements.
    pub links: usize,
    /// Number of hosted guest Ambassadors.
    pub guests: usize,
    /// Number of Ambassadors deployed from here.
    pub deployed: usize,
}

/// A federation of HADAS sites over a simulated network.
///
/// # Example
///
/// ```
/// use hadas::Federation;
/// use mrom_net::NetworkConfig;
/// use mrom_value::NodeId;
///
/// # fn main() -> Result<(), hadas::HadasError> {
/// let mut fed = Federation::new(NetworkConfig::new(7));
/// fed.add_site(NodeId(1))?;
/// fed.add_site(NodeId(2))?;
/// fed.link(NodeId(1), NodeId(2))?;
/// assert!(fed.is_linked(NodeId(1), NodeId(2)));
/// # Ok(())
/// # }
/// ```
pub struct Federation {
    net: SimNet,
    sites: BTreeMap<NodeId, Site>,
    next_req: u64,
    completed: HashMap<u64, ProtocolMsg>,
    /// Safety bound on deliveries processed while waiting for one reply.
    max_pump: usize,
    /// Static admission policy every receive path applies to arriving
    /// mobile code (migrating objects, imported/linked ambassadors) and
    /// that the export path applies to ambassadors it instantiates.
    admission: AdmissionPolicy,
}

impl Federation {
    /// Creates an empty federation over a simulator with `config`.
    /// Admission starts [`AdmissionPolicy::Off`] — the pre-admission
    /// behaviour.
    pub fn new(config: NetworkConfig) -> Federation {
        Federation {
            net: SimNet::new(config),
            sites: BTreeMap::new(),
            next_req: 0,
            completed: HashMap::new(),
            max_pump: 100_000,
            admission: AdmissionPolicy::Off,
        }
    }

    /// Sets the federation-wide [`AdmissionPolicy`], returning the
    /// previous one.
    pub fn set_admission_policy(&mut self, policy: AdmissionPolicy) -> AdmissionPolicy {
        std::mem::replace(&mut self.admission, policy)
    }

    /// The federation-wide [`AdmissionPolicy`].
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.admission
    }

    /// Decodes an arriving image under the federation admission policy,
    /// converting strict rejections into [`HadasError::AdmissionRefused`]
    /// naming the receiving site.
    fn admit_image(&self, at: NodeId, image: &[u8]) -> Result<MromObject, HadasError> {
        match MromObject::from_image_with_policy(image, self.admission) {
            Ok(obj) => Ok(obj),
            Err(rejection @ MromError::AdmissionRejected { .. }) => {
                Err(HadasError::AdmissionRefused { at, rejection })
            }
            Err(e) => Err(HadasError::Model(e)),
        }
    }

    /// Adds a site at `node`, creating its runtime and IOO. Returns the
    /// IOO's identity.
    ///
    /// # Errors
    ///
    /// [`HadasError::DuplicateSite`] / network errors.
    pub fn add_site(&mut self, node: NodeId) -> Result<ObjectId, HadasError> {
        if self.sites.contains_key(&node) {
            return Err(HadasError::DuplicateSite(node));
        }
        self.net.add_node(node)?;
        let mut runtime = Runtime::new(node);
        let ioo_obj = build_ioo(runtime.ids_mut(), node);
        let ioo = ioo_obj.id();
        runtime.adopt(ioo_obj).map_err(HadasError::Model)?;
        self.sites.insert(
            node,
            Site {
                runtime,
                ioo,
                apos: BTreeMap::new(),
                specs: BTreeMap::new(),
                policies: BTreeMap::new(),
                links: BTreeSet::new(),
                guests: BTreeMap::new(),
                deployed: BTreeMap::new(),
            },
        );
        Ok(ioo)
    }

    fn site(&self, node: NodeId) -> Result<&Site, HadasError> {
        self.sites.get(&node).ok_or(HadasError::UnknownSite(node))
    }

    fn site_mut(&mut self, node: NodeId) -> Result<&mut Site, HadasError> {
        self.sites
            .get_mut(&node)
            .ok_or(HadasError::UnknownSite(node))
    }

    /// The runtime hosting a site's objects.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn runtime(&self, node: NodeId) -> Result<&Runtime, HadasError> {
        Ok(&self.site(node)?.runtime)
    }

    /// Mutable runtime access (local administration, tests).
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn runtime_mut(&mut self, node: NodeId) -> Result<&mut Runtime, HadasError> {
        Ok(&mut self.site_mut(node)?.runtime)
    }

    /// A site's IOO identity.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn ioo_id(&self, node: NodeId) -> Result<ObjectId, HadasError> {
        Ok(self.site(node)?.ioo)
    }

    /// Simulator traffic statistics.
    pub fn net_stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Mutable simulator configuration (partitions mid-run).
    pub fn net_config_mut(&mut self) -> &mut NetworkConfig {
        self.net.config_mut()
    }

    /// Per-site summary.
    ///
    /// # Errors
    ///
    /// [`HadasError::UnknownSite`].
    pub fn site_stats(&self, node: NodeId) -> Result<SiteStats, HadasError> {
        let site = self.site(node)?;
        Ok(SiteStats {
            node,
            apos: site.apos.len(),
            links: site.links.len(),
            guests: site.guests.len(),
            deployed: site.deployed.values().map(Vec::len).sum(),
        })
    }

    /// Integrates a pre-built APO object at `node` under `name`, with the
    /// default functionality split `spec` for its Ambassadors. Returns the
    /// APO's identity.
    ///
    /// # Errors
    ///
    /// Site/duplicate errors and model errors.
    pub fn integrate_apo(
        &mut self,
        node: NodeId,
        name: &str,
        apo: MromObject,
        spec: AmbassadorSpec,
    ) -> Result<ObjectId, HadasError> {
        let site = self.site_mut(node)?;
        if site.apos.contains_key(name) {
            return Err(HadasError::DuplicateApo(name.to_owned()));
        }
        let id = apo.id();
        site.runtime.adopt(apo).map_err(HadasError::Model)?;
        site.apos.insert(name.to_owned(), id);
        site.specs.insert(name.to_owned(), spec);
        site.policies
            .insert(name.to_owned(), ExportPolicy::default());
        let ioo = site.ioo;
        if let Some(ioo_obj) = site.runtime.object_mut(ioo) {
            map_insert(ioo_obj, "home", name, Value::ObjectRef(id));
        }
        Ok(id)
    }

    /// Sets the export policy for an APO.
    ///
    /// # Errors
    ///
    /// Site/APO lookup errors.
    pub fn set_export_policy(
        &mut self,
        node: NodeId,
        apo_name: &str,
        policy: ExportPolicy,
    ) -> Result<(), HadasError> {
        let site = self.site_mut(node)?;
        if !site.apos.contains_key(apo_name) {
            return Err(HadasError::UnknownApo(apo_name.to_owned()));
        }
        site.policies.insert(apo_name.to_owned(), policy);
        Ok(())
    }

    /// The identity of an APO registered at a site.
    ///
    /// # Errors
    ///
    /// Site/APO lookup errors.
    pub fn apo_id(&self, node: NodeId, name: &str) -> Result<ObjectId, HadasError> {
        self.site(node)?
            .apos
            .get(name)
            .copied()
            .ok_or_else(|| HadasError::UnknownApo(name.to_owned()))
    }

    /// Are two sites linked (in either direction)?
    pub fn is_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.sites.get(&a).is_some_and(|s| s.links.contains(&b))
    }

    /// Guest info for a hosted Ambassador.
    ///
    /// # Errors
    ///
    /// Lookup errors.
    pub fn guest_info(&self, host: NodeId, amb: ObjectId) -> Result<&GuestInfo, HadasError> {
        self.site(host)?
            .guests
            .get(&amb)
            .ok_or(HadasError::UnknownAmbassador(amb))
    }

    /// Ambassadors deployed from an APO: `(host node, ambassador id)`.
    ///
    /// # Errors
    ///
    /// Lookup errors.
    pub fn deployed_ambassadors(
        &self,
        origin: NodeId,
        apo_name: &str,
    ) -> Result<Vec<(NodeId, ObjectId)>, HadasError> {
        let site = self.site(origin)?;
        let apo = site
            .apos
            .get(apo_name)
            .ok_or_else(|| HadasError::UnknownApo(apo_name.to_owned()))?;
        Ok(site.deployed.get(apo).cloned().unwrap_or_default())
    }

    // -- protocol engine -----------------------------------------------------

    fn fresh_req_id(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    fn post(&mut self, from: NodeId, to: NodeId, msg: &ProtocolMsg) -> Result<(), HadasError> {
        let bytes = msg.encode();
        mrom_obs::fed_send(from, to, msg.kind(), bytes.len());
        self.net.send(from, to, bytes)?;
        Ok(())
    }

    /// Sends a request and pumps the network until its reply arrives.
    fn request(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: ProtocolMsg,
    ) -> Result<ProtocolMsg, HadasError> {
        let req_id = msg.req_id();
        let operation = format!("request {msg:?}");
        self.post(from, to, &msg)?;
        self.pump_until(&[req_id], &operation)?;
        Ok(self
            .completed
            .remove(&req_id)
            .expect("pump_until guarantees presence"))
    }

    /// Processes deliveries until every listed reply has arrived.
    fn pump_until(&mut self, req_ids: &[u64], operation: &str) -> Result<(), HadasError> {
        let mut steps = 0;
        while !req_ids.iter().all(|id| self.completed.contains_key(id)) {
            let Some(delivery) = self.net.step() else {
                return Err(HadasError::Timeout {
                    operation: operation.to_owned(),
                });
            };
            self.handle(delivery);
            steps += 1;
            if steps > self.max_pump {
                return Err(HadasError::Timeout {
                    operation: format!("{operation} (pump bound exceeded)"),
                });
            }
        }
        Ok(())
    }

    /// Drains every in-flight message (fire-and-forget flows, tests).
    pub fn pump_all(&mut self) {
        while let Some(delivery) = self.net.step() {
            self.handle(delivery);
        }
    }

    /// Fault injection: puts raw bytes on the wire between two sites, as a
    /// hostile or broken peer would. Undecodable traffic must be dropped
    /// by the protocol engine without disturbing real operations.
    ///
    /// # Errors
    ///
    /// Network errors for unknown endpoints.
    pub fn inject_raw(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: Vec<u8>,
    ) -> Result<(), HadasError> {
        self.net.send(from, to, bytes)?;
        Ok(())
    }

    /// Handles one delivery: requests produce replies, replies complete
    /// pending operations. Undecodable traffic is dropped (a hostile peer
    /// cannot wedge the engine).
    fn handle(&mut self, delivery: Delivery) {
        let Ok(msg) = ProtocolMsg::decode(&delivery.payload) else {
            return;
        };
        mrom_obs::fed_recv(delivery.src, delivery.dst, msg.kind());
        // Keep every site's virtual clock in step with the network.
        if let Some(site) = self.sites.get_mut(&delivery.dst) {
            site.runtime.set_now(delivery.at.as_millis());
        }
        match msg {
            ProtocolMsg::LinkReq {
                req_id,
                from,
                from_ioo,
            } => {
                let reply = self.handle_link_req(delivery.dst, from, from_ioo, req_id);
                let _ = self.post(delivery.dst, delivery.src, &reply);
            }
            ProtocolMsg::ImportReq {
                req_id,
                from,
                from_ioo,
                apo_name,
            } => {
                let reply = self.handle_import_req(delivery.dst, from, from_ioo, &apo_name, req_id);
                let _ = self.post(delivery.dst, delivery.src, &reply);
            }
            ProtocolMsg::InvokeReq {
                req_id,
                caller,
                target,
                method,
                args,
                trace,
                parent_span,
            } => {
                // Continue the sender's trace for the duration of the
                // remote invocation: both halves of the cross-site call
                // share one causally-linked timeline.
                let _scope = mrom_obs::continue_trace(trace, parent_span);
                let reply = match self
                    .sites
                    .get_mut(&delivery.dst)
                    .ok_or(HadasError::UnknownSite(delivery.dst))
                    .and_then(|site| {
                        site.runtime
                            .invoke(caller, target, &method, &args)
                            .map_err(HadasError::Model)
                    }) {
                    Ok(result) => ProtocolMsg::InvokeResp { req_id, result },
                    Err(e) => ProtocolMsg::Error {
                        req_id,
                        reason: e.to_string(),
                    },
                };
                let _ = self.post(delivery.dst, delivery.src, &reply);
            }
            ProtocolMsg::UpdateReq {
                req_id,
                origin,
                target,
                ops,
            } => {
                let reply = match self.apply_update(delivery.dst, origin, target, &ops) {
                    Ok(applied) => ProtocolMsg::UpdateAck { req_id, applied },
                    Err(e) => ProtocolMsg::Error {
                        req_id,
                        reason: e.to_string(),
                    },
                };
                let _ = self.post(delivery.dst, delivery.src, &reply);
            }
            ProtocolMsg::MoveObject {
                req_id,
                image,
                trace,
                parent_span,
            } => {
                // The migrating object's trace context travelled with it:
                // adoption and the arrival hook stay on the origin's trace.
                let _scope = mrom_obs::continue_trace(trace, parent_span);
                let reply = match self.handle_move(delivery.dst, delivery.src, &image) {
                    Ok(adopted) => ProtocolMsg::MoveAck { req_id, adopted },
                    Err(e) => ProtocolMsg::Error {
                        req_id,
                        reason: e.to_string(),
                    },
                };
                let _ = self.post(delivery.dst, delivery.src, &reply);
            }
            reply @ (ProtocolMsg::LinkAck { .. }
            | ProtocolMsg::ExportAck { .. }
            | ProtocolMsg::InvokeResp { .. }
            | ProtocolMsg::UpdateAck { .. }
            | ProtocolMsg::MoveAck { .. }
            | ProtocolMsg::Error { .. }) => {
                self.completed.insert(reply.req_id(), reply);
            }
        }
    }

    fn handle_link_req(
        &mut self,
        at: NodeId,
        from: NodeId,
        _from_ioo: ObjectId,
        req_id: u64,
    ) -> ProtocolMsg {
        let Some(site) = self.sites.get_mut(&at) else {
            return ProtocolMsg::Error {
                req_id,
                reason: format!("no site at {at}"),
            };
        };
        site.links.insert(from);
        // Build an IOO Ambassador: a small mobile object representing this
        // IOO abroad.
        let ioo = site.ioo;
        let amb = mrom_core::ObjectBuilder::new(site.runtime.ids_mut().next_id())
            .class("ioo-ambassador")
            .origin(ioo)
            .fixed_data(
                "represents_site",
                mrom_core::DataItem::public(Value::Int(at.0 as i64)),
            )
            .fixed_data(
                "represents_ioo",
                mrom_core::DataItem::public(Value::ObjectRef(ioo)),
            )
            .fixed_method(
                "site_info",
                mrom_core::Method::public(
                    mrom_core::MethodBody::script(
                        "return {\"site\": self.get(\"represents_site\"), \"ioo\": self.get(\"represents_ioo\")};",
                    )
                    .expect("site_info parses"),
                ),
            )
            .build();
        match amb.image_value().map(|v| mrom_value::wire::encode(&v)) {
            Ok(image) => ProtocolMsg::LinkAck {
                req_id,
                ioo,
                ambassador_image: image,
            },
            Err(e) => ProtocolMsg::Error {
                req_id,
                reason: e.to_string(),
            },
        }
    }

    fn handle_import_req(
        &mut self,
        at: NodeId,
        from: NodeId,
        _from_ioo: ObjectId,
        apo_name: &str,
        req_id: u64,
    ) -> ProtocolMsg {
        let deny = |reason: String| ProtocolMsg::Error { req_id, reason };
        let admission = self.admission;
        let Some(site) = self.sites.get_mut(&at) else {
            return deny(format!("no site at {at}"));
        };
        // Export phase 1: verify the requested APO is accessible to the
        // requesting IOO.
        let Some(&apo_id) = site.apos.get(apo_name) else {
            return deny(format!("no apo named {apo_name:?}"));
        };
        let allowed = match site.policies.get(apo_name).unwrap_or(&ExportPolicy::Linked) {
            ExportPolicy::Linked => site.links.contains(&from),
            ExportPolicy::Sites(set) => set.contains(&from),
            ExportPolicy::Nobody => false,
        };
        if !allowed {
            return deny(format!("export of {apo_name:?} denied to site {from}"));
        }
        // Export phase 2: instantiate the proper APO Ambassador.
        let spec = site.specs.get(apo_name).cloned().unwrap_or_default();
        let Some(apo) = site.runtime.object(apo_id) else {
            return deny(format!("apo object {apo_id} missing"));
        };
        let apo_clone = apo.clone();
        let scratch_ids = site.runtime.ids_mut();
        let (ambassador, remote_methods) = match instantiate_ambassador_with_policy(
            &apo_clone,
            apo_name,
            at,
            &spec,
            scratch_ids,
            admission,
        ) {
            Ok(pair) => pair,
            Err(e) => return deny(e.to_string()),
        };
        let amb_id = ambassador.id();
        // Export phase 3: ship it as data.
        let image = match ambassador
            .image_value()
            .map(|v| mrom_value::wire::encode(&v))
        {
            Ok(bytes) => bytes,
            Err(e) => return deny(e.to_string()),
        };
        site.deployed
            .entry(apo_id)
            .or_default()
            .push((from, amb_id));
        ProtocolMsg::ExportAck {
            req_id,
            ambassador_image: image,
            origin_apo: apo_id,
            remote_methods,
        }
    }

    /// Receives a migrating object: unpack, adopt, run its `on_arrival`
    /// hook (if any) with an arrival context.
    fn handle_move(
        &mut self,
        at: NodeId,
        from: NodeId,
        image: &[u8],
    ) -> Result<ObjectId, HadasError> {
        let obj = self.admit_image(at, image)?;
        let id = obj.id();
        let now = self.net.now().as_millis();
        let site = self.sites.get_mut(&at).ok_or(HadasError::UnknownSite(at))?;
        let host_ioo = site.ioo;
        site.runtime.adopt(obj).map_err(HadasError::Model)?;
        mrom_obs::object_adopted(id, at);
        let has_hook = site
            .runtime
            .object(id)
            .is_some_and(|o| o.find_method("on_arrival").is_some());
        if has_hook {
            let context = Value::map([
                ("host_site", Value::Int(at.0 as i64)),
                ("came_from", Value::Int(from.0 as i64)),
                ("host_ioo", Value::ObjectRef(host_ioo)),
                ("arrived_at", Value::Int(now as i64)),
            ]);
            // A failing arrival hook evicts the object back into limbo
            // rather than leaving a half-installed guest.
            if let Err(e) = site.runtime.invoke(host_ioo, id, "on_arrival", &[context]) {
                let _ = site.runtime.evict(id);
                return Err(HadasError::Model(e));
            }
        }
        Ok(id)
    }

    fn apply_update(
        &mut self,
        at: NodeId,
        origin: ObjectId,
        target: ObjectId,
        ops: &[UpdateOp],
    ) -> Result<usize, HadasError> {
        let site = self.sites.get_mut(&at).ok_or(HadasError::UnknownSite(at))?;
        if !site.guests.contains_key(&target) {
            return Err(HadasError::UnknownAmbassador(target));
        }
        let obj = site
            .runtime
            .object_mut(target)
            .ok_or(HadasError::Model(MromError::NoSuchObject(target)))?;
        let mut applied = 0;
        for op in ops {
            // Each op runs with the claimed origin principal; the object's
            // own ACLs decide whether that principal is honoured, so a
            // forged origin gains nothing it could not do anyway.
            match op {
                UpdateOp::AddMethod(name, desc) => {
                    let method =
                        mrom_core::Method::from_descriptor(desc).map_err(HadasError::Model)?;
                    obj.add_method(origin, name, method)
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::SetMethod(name, desc) => {
                    obj.set_method(origin, name, desc)
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::DeleteMethod(name) => {
                    obj.delete_method(origin, name).map_err(HadasError::Model)?;
                }
                UpdateOp::AddData(name, value) => {
                    obj.add_data(origin, name, value.clone())
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::SetData(name, value) => {
                    obj.write_data(origin, name, value.clone())
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::InstallMetaInvoke(name) => {
                    obj.install_meta_invoke(origin, name)
                        .map_err(HadasError::Model)?;
                }
                UpdateOp::UninstallMetaInvoke => {
                    obj.uninstall_meta_invoke(origin)
                        .map_err(HadasError::Model)?;
                }
            }
            applied += 1;
            // Migrated methods stop being relayed.
            if let UpdateOp::AddMethod(name, _) = op {
                if let Some(info) = site.guests.get_mut(&target) {
                    info.remote_methods.retain(|m| m != name);
                }
            }
        }
        Ok(applied)
    }

    // -- synchronous operations ----------------------------------------------

    /// Establishes a Link agreement: installs an Ambassador of `to`'s IOO
    /// in `from`'s Vicinity. "This operation is a prerequisite for any
    /// further cooperation between the two IOOs."
    ///
    /// # Errors
    ///
    /// Site errors, [`HadasError::Timeout`] under partition/loss, remote
    /// refusals.
    pub fn link(&mut self, from: NodeId, to: NodeId) -> Result<(), HadasError> {
        let from_ioo = self.ioo_id(from)?;
        self.site(to)?; // fail fast on unknown peer
        let req_id = self.fresh_req_id();
        let reply = self.request(
            from,
            to,
            ProtocolMsg::LinkReq {
                req_id,
                from,
                from_ioo,
            },
        )?;
        match reply {
            ProtocolMsg::LinkAck {
                ambassador_image, ..
            } => {
                let amb = self.admit_image(from, &ambassador_image)?;
                let amb_id = amb.id();
                let site = self.site_mut(from)?;
                site.runtime.adopt(amb).map_err(HadasError::Model)?;
                site.links.insert(to);
                let ioo = site.ioo;
                if let Some(ioo_obj) = site.runtime.object_mut(ioo) {
                    map_insert(
                        ioo_obj,
                        "vicinity",
                        &to.to_string(),
                        Value::ObjectRef(amb_id),
                    );
                }
                Ok(())
            }
            ProtocolMsg::Error { reason, .. } => Err(HadasError::Remote(reason)),
            other => Err(HadasError::BadMessage(format!(
                "unexpected reply to link: {other:?}"
            ))),
        }
    }

    /// Imports an APO from `provider`: the Import/Export handshake. The
    /// Ambassador arrives as data, is unpacked, receives an installation
    /// context, installs itself, and is registered as a guest. Returns its
    /// identity.
    ///
    /// # Errors
    ///
    /// [`HadasError::NotLinked`] without a prior [`Federation::link`];
    /// export denials; transport failures.
    pub fn import_apo(
        &mut self,
        requester: NodeId,
        provider: NodeId,
        apo_name: &str,
    ) -> Result<ObjectId, HadasError> {
        if !self.is_linked(requester, provider) {
            return Err(HadasError::NotLinked {
                from: requester,
                to: provider,
            });
        }
        let from_ioo = self.ioo_id(requester)?;
        let req_id = self.fresh_req_id();
        let reply = self.request(
            requester,
            provider,
            ProtocolMsg::ImportReq {
                req_id,
                from: requester,
                from_ioo,
                apo_name: apo_name.to_owned(),
            },
        )?;
        match reply {
            ProtocolMsg::ExportAck {
                ambassador_image,
                origin_apo,
                remote_methods,
                ..
            } => {
                // "When the Ambassador arrives (as data) the importing IOO
                // unpacks it, passes to it an installation context and
                // invokes the Ambassador, which in turn installs itself."
                let amb = self.admit_image(requester, &ambassador_image)?;
                let amb_id = amb.id();
                let now = self.net.now().as_millis();
                let site = self.site_mut(requester)?;
                let host_ioo = site.ioo;
                site.runtime.adopt(amb).map_err(HadasError::Model)?;
                let context = Value::map([
                    ("host_site", Value::Int(requester.0 as i64)),
                    ("host_ioo", Value::ObjectRef(host_ioo)),
                    ("arrived_at", Value::Int(now as i64)),
                ]);
                site.runtime
                    .invoke(host_ioo, amb_id, "install", &[context])
                    .map_err(HadasError::Model)?;
                site.guests.insert(
                    amb_id,
                    GuestInfo {
                        origin_node: provider,
                        origin_apo,
                        apo_name: apo_name.to_owned(),
                        remote_methods,
                    },
                );
                let ioo = site.ioo;
                if let Some(ioo_obj) = site.runtime.object_mut(ioo) {
                    map_insert(
                        ioo_obj,
                        "guests",
                        &amb_id.to_string(),
                        Value::ObjectRef(origin_apo),
                    );
                }
                Ok(amb_id)
            }
            ProtocolMsg::Error { reason, .. } => Err(HadasError::Remote(reason)),
            other => Err(HadasError::BadMessage(format!(
                "unexpected reply to import: {other:?}"
            ))),
        }
    }

    /// Invokes a method on an object hosted at a remote site, as `caller`.
    ///
    /// # Errors
    ///
    /// Transport failures and remote invocation errors.
    pub fn remote_invoke(
        &mut self,
        from: NodeId,
        to: NodeId,
        caller: ObjectId,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        let span = mrom_obs::fed_op_start(from, "remote_invoke");
        let result = self.remote_invoke_inner(from, to, caller, target, method, args);
        mrom_obs::fed_op_end(span, "remote_invoke", result.is_ok());
        result
    }

    fn remote_invoke_inner(
        &mut self,
        from: NodeId,
        to: NodeId,
        caller: ObjectId,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        self.site(from)?;
        self.site(to)?;
        let req_id = self.fresh_req_id();
        let (trace, parent_span) = mrom_obs::current_trace_context();
        let reply = self.request(
            from,
            to,
            ProtocolMsg::InvokeReq {
                req_id,
                caller,
                target,
                method: method.to_owned(),
                args: args.to_vec(),
                trace,
                parent_span,
            },
        )?;
        match reply {
            ProtocolMsg::InvokeResp { result, .. } => Ok(result),
            ProtocolMsg::Error { reason, .. } => Err(HadasError::Remote(reason)),
            other => Err(HadasError::BadMessage(format!(
                "unexpected reply to invoke: {other:?}"
            ))),
        }
    }

    /// Invokes through a hosted Ambassador: locally when the method has
    /// migrated with (or was later pushed to) the Ambassador, relayed to
    /// the origin APO when it stayed home.
    ///
    /// # Errors
    ///
    /// Unknown-ambassador errors, local invocation errors, relay errors,
    /// and [`HadasError::Remote`]/[`HadasError::Timeout`] on the relay
    /// path.
    pub fn call_through_ambassador(
        &mut self,
        host: NodeId,
        caller: ObjectId,
        ambassador: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        let site = self.site(host)?;
        let info = site
            .guests
            .get(&ambassador)
            .ok_or(HadasError::UnknownAmbassador(ambassador))?
            .clone();
        // The Ambassador gets first say: if the method migrated with it, it
        // serves locally, and if a meta-invoke tower is installed (e.g. the
        // maintenance notice), the tower intercepts *every* invocation —
        // even of methods that normally relay.
        let try_local = site
            .runtime
            .object(ambassador)
            .is_some_and(|obj| obj.has_method(caller, method) || !obj.tower().is_empty());
        if try_local {
            let site = self.site_mut(host)?;
            match site.runtime.invoke(caller, ambassador, method, args) {
                Ok(v) => return Ok(v),
                // The tower was installed but descended to a method the
                // Ambassador does not carry: fall through to the relay.
                Err(MromError::NoSuchMethod { .. }) => {}
                Err(e) => return Err(HadasError::Model(e)),
            }
        }
        if info.remote_methods.iter().any(|m| m == method) {
            mrom_obs::ambassador_relay(host, ambassador, method);
            return self.remote_invoke(
                host,
                info.origin_node,
                caller,
                info.origin_apo,
                method,
                args,
            );
        }
        Err(HadasError::Model(MromError::NoSuchMethod {
            object: ambassador,
            name: method.to_owned(),
        }))
    }

    /// Pushes structural updates from an origin APO to **all** of its
    /// deployed Ambassadors (the §5 dynamic-update mechanism). Returns the
    /// number of Ambassadors updated.
    ///
    /// # Errors
    ///
    /// Lookup errors, [`HadasError::Timeout`] when some host is
    /// unreachable, [`HadasError::Remote`] when a host rejected the
    /// update.
    pub fn push_update(
        &mut self,
        origin: NodeId,
        apo_name: &str,
        ops: &[UpdateOp],
    ) -> Result<usize, HadasError> {
        let apo_id = self.apo_id(origin, apo_name)?;
        let targets = self.deployed_ambassadors(origin, apo_name)?;
        let mut req_ids = Vec::with_capacity(targets.len());
        for (host, amb) in &targets {
            let req_id = self.fresh_req_id();
            let msg = ProtocolMsg::UpdateReq {
                req_id,
                origin: apo_id,
                target: *amb,
                ops: ops.to_vec(),
            };
            self.post(origin, *host, &msg)?;
            req_ids.push(req_id);
        }
        self.pump_until(&req_ids, "push_update")?;
        let mut updated = 0;
        for req_id in req_ids {
            match self.completed.remove(&req_id) {
                Some(ProtocolMsg::UpdateAck { .. }) => updated += 1,
                Some(ProtocolMsg::Error { reason, .. }) => return Err(HadasError::Remote(reason)),
                other => {
                    return Err(HadasError::BadMessage(format!(
                        "unexpected update reply: {other:?}"
                    )))
                }
            }
        }
        Ok(updated)
    }

    /// Dispatches a whole object to another site — the itinerant-agent
    /// move of the paper's introduction. The object is evicted locally,
    /// serializes itself, travels as data, is adopted at the destination,
    /// and — if it carries an `on_arrival` method — is invoked with an
    /// arrival context so it can install itself and decide its next move.
    ///
    /// Requires a Link agreement between the sites. On transport failure
    /// the object is restored locally (it never ceases to exist).
    ///
    /// # Errors
    ///
    /// Link/lookup errors, [`MromError::NotMobile`] for objects with
    /// native bodies, transport timeouts, and remote refusals.
    pub fn dispatch_object(
        &mut self,
        from: NodeId,
        to: NodeId,
        object: ObjectId,
    ) -> Result<(), HadasError> {
        let span = mrom_obs::fed_op_start(from, "dispatch_object");
        let result = self.dispatch_object_inner(from, to, object);
        mrom_obs::fed_op_end(span, "dispatch_object", result.is_ok());
        result
    }

    fn dispatch_object_inner(
        &mut self,
        from: NodeId,
        to: NodeId,
        object: ObjectId,
    ) -> Result<(), HadasError> {
        if !self.is_linked(from, to) {
            return Err(HadasError::NotLinked { from, to });
        }
        let site = self.site_mut(from)?;
        let obj = site.runtime.evict(object).map_err(HadasError::Model)?;
        let image = match obj.image_value().map(|v| mrom_value::wire::encode(&v)) {
            Ok(bytes) => bytes,
            Err(e) => {
                // Not mobile: put it back, report.
                site.runtime.adopt(obj).expect("just evicted");
                return Err(HadasError::Model(e));
            }
        };
        let req_id = self.fresh_req_id();
        mrom_obs::object_dispatched(object, from, to);
        let (trace, parent_span) = mrom_obs::current_trace_context();
        let outcome = self.request(
            from,
            to,
            ProtocolMsg::MoveObject {
                req_id,
                image,
                trace,
                parent_span,
            },
        );
        match outcome {
            Ok(ProtocolMsg::MoveAck { adopted, .. }) if adopted == object => Ok(()),
            Ok(ProtocolMsg::Error { reason, .. }) => {
                self.site_mut(from)?
                    .runtime
                    .adopt(obj)
                    .expect("identity unused after failed move");
                Err(HadasError::Remote(reason))
            }
            Ok(other) => {
                self.site_mut(from)?
                    .runtime
                    .adopt(obj)
                    .expect("identity unused after failed move");
                Err(HadasError::BadMessage(format!(
                    "unexpected reply to move: {other:?}"
                )))
            }
            Err(e) => {
                self.site_mut(from)?
                    .runtime
                    .adopt(obj)
                    .expect("identity unused after failed move");
                Err(e)
            }
        }
    }

    /// Installs an *interoperability program* — a coordination-level
    /// script — into a site's IOO (Figure 2's **Interop** component).
    ///
    /// The program runs on the IOO object and may reach every object
    /// hosted at the site (local APOs and guest Ambassadors alike) through
    /// `self.send(ref, method, args)`; it is how "(dynamic) control- and
    /// data-flow between (integrated, interconnected and configured)
    /// components" is specified.
    ///
    /// # Errors
    ///
    /// Site errors, script parse errors, and duplicate program names.
    pub fn install_interop_program(
        &mut self,
        node: NodeId,
        name: &str,
        source: &str,
    ) -> Result<(), HadasError> {
        let site = self.site_mut(node)?;
        let ioo = site.ioo;
        let program = mrom_core::Method::public(
            mrom_core::MethodBody::script(source).map_err(HadasError::Model)?,
        );
        site.runtime
            .object_mut(ioo)
            .ok_or(HadasError::Model(MromError::NoSuchObject(ioo)))?
            .add_method(mrom_value::ObjectId::SYSTEM, name, program)
            .map_err(HadasError::Model)
    }

    /// Runs an installed interoperability program with the system
    /// principal, returning its result.
    ///
    /// # Errors
    ///
    /// Site errors and whatever the program raises.
    pub fn run_interop(
        &mut self,
        node: NodeId,
        name: &str,
        args: &[Value],
    ) -> Result<Value, HadasError> {
        let site = self.site_mut(node)?;
        let ioo = site.ioo;
        site.runtime
            .invoke_as_system(ioo, name, args)
            .map_err(HadasError::Model)
    }

    /// The guest Ambassadors hosted at a site, as `(ambassador id, origin
    /// APO name)` pairs — what an interop program enumerates to find its
    /// components.
    ///
    /// # Errors
    ///
    /// Site errors.
    pub fn guests(&self, node: NodeId) -> Result<Vec<(ObjectId, String)>, HadasError> {
        Ok(self
            .site(node)?
            .guests
            .iter()
            .map(|(id, info)| (*id, info.apo_name.clone()))
            .collect())
    }

    /// Migrates a method from an APO to all of its deployed Ambassadors:
    /// "The dynamic migration of functionality (methods) and data from the
    /// APO to its ambassador ... can be done using the meta-methods."
    /// After migration the method is served locally at every hosting site.
    ///
    /// # Errors
    ///
    /// Lookup errors, non-mobile methods, transport failures.
    pub fn migrate_method(
        &mut self,
        origin: NodeId,
        apo_name: &str,
        method: &str,
    ) -> Result<usize, HadasError> {
        let apo_id = self.apo_id(origin, apo_name)?;
        let site = self.site(origin)?;
        let apo = site
            .runtime
            .object(apo_id)
            .ok_or(HadasError::Model(MromError::NoSuchObject(apo_id)))?;
        // The APO reads its own method definition (full descriptor) ...
        let desc = apo
            .method_descriptor(apo_id, method)
            .map_err(HadasError::Model)?;
        // ... and pushes it to every Ambassador via addMethod.
        self.push_update(
            origin,
            apo_name,
            &[UpdateOp::AddMethod(method.to_owned(), desc)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_core::{ClassSpec, DataItem, Method, MethodBody};
    use mrom_net::LinkConfig;

    fn db_apo_class() -> ClassSpec {
        ClassSpec::new("employee-db")
            .fixed_data("rows", DataItem::public(Value::Int(3)))
            .fixed_method(
                "count",
                Method::public(MethodBody::script("return self.get(\"rows\");").unwrap()),
            )
            .fixed_method(
                "salary_of",
                Method::public(
                    MethodBody::script(
                        "param name; return {\"alice\": 100, \"bob\": 90, \"eve\": 80}[name];",
                    )
                    .unwrap(),
                ),
            )
    }

    fn two_site_federation() -> (Federation, NodeId, NodeId) {
        let cfg = NetworkConfig::new(3).with_default_link(LinkConfig::lan());
        let mut fed = Federation::new(cfg);
        let a = NodeId(1);
        let b = NodeId(2);
        fed.add_site(a).unwrap();
        fed.add_site(b).unwrap();
        (fed, a, b)
    }

    fn integrate_db(fed: &mut Federation, at: NodeId, export: &[&str]) -> ObjectId {
        let apo = db_apo_class().instantiate(fed.runtime_mut(at).unwrap().ids_mut());
        let spec = AmbassadorSpec::relay_only()
            .with_methods(export.iter().copied())
            .with_data(["rows"]);
        fed.integrate_apo(at, "db", apo, spec).unwrap()
    }

    #[test]
    fn link_installs_vicinity_ambassador() {
        let (mut fed, a, b) = two_site_federation();
        assert!(!fed.is_linked(a, b));
        fed.link(a, b).unwrap();
        assert!(fed.is_linked(a, b));
        assert!(fed.is_linked(b, a), "provider records the partner too");
        // The vicinity map holds the ambassador; the object answers.
        let ioo = fed.ioo_id(a).unwrap();
        let vicinity = fed
            .runtime(a)
            .unwrap()
            .object(ioo)
            .unwrap()
            .read_data(ObjectId::SYSTEM, "vicinity")
            .unwrap();
        let amb_ref = vicinity.as_map().unwrap()["n2"].as_object_ref().unwrap();
        let info = fed
            .runtime_mut(a)
            .unwrap()
            .invoke_as_system(amb_ref, "site_info", &[])
            .unwrap();
        assert_eq!(info.as_map().unwrap()["site"], Value::Int(2));
    }

    #[test]
    fn import_requires_link() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        assert!(matches!(
            fed.import_apo(a, b, "db"),
            Err(HadasError::NotLinked { .. })
        ));
    }

    #[test]
    fn import_export_ships_a_working_ambassador() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        // Installed itself with the context.
        let caller = fed.runtime_mut(a).unwrap().ids_mut().next_id();
        let installed = fed
            .runtime(a)
            .unwrap()
            .object(amb)
            .unwrap()
            .read_data(caller, "installed")
            .unwrap();
        assert_eq!(installed, Value::Bool(true));
        // Exported method runs locally at A.
        let out = fed
            .call_through_ambassador(a, caller, amb, "count", &[])
            .unwrap();
        assert_eq!(out, Value::Int(3));
        // Non-exported method relays to the origin at B.
        let out = fed
            .call_through_ambassador(a, caller, amb, "salary_of", &[Value::from("alice")])
            .unwrap();
        assert_eq!(out, Value::Int(100));
        // Guest bookkeeping.
        let info = fed.guest_info(a, amb).unwrap();
        assert_eq!(info.origin_node, b);
        assert_eq!(info.apo_name, "db");
        assert!(info.remote_methods.contains(&"salary_of".to_owned()));
    }

    #[test]
    fn export_policy_denies_unauthorized_sites() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        fed.set_export_policy(b, "db", ExportPolicy::Nobody)
            .unwrap();
        assert!(matches!(
            fed.import_apo(a, b, "db"),
            Err(HadasError::Remote(reason)) if reason.contains("denied")
        ));
        fed.set_export_policy(b, "db", ExportPolicy::Sites([a].into()))
            .unwrap();
        assert!(fed.import_apo(a, b, "db").is_ok());
    }

    #[test]
    fn unknown_apo_import_fails_remotely() {
        let (mut fed, a, b) = two_site_federation();
        fed.link(a, b).unwrap();
        assert!(matches!(
            fed.import_apo(a, b, "ghost"),
            Err(HadasError::Remote(_))
        ));
    }

    #[test]
    fn migrate_method_moves_functionality_to_the_edge() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        let caller = fed.runtime_mut(a).unwrap().ids_mut().next_id();

        let before_relay = fed.net_stats().messages_sent;
        fed.call_through_ambassador(a, caller, amb, "salary_of", &[Value::from("bob")])
            .unwrap();
        assert!(
            fed.net_stats().messages_sent > before_relay,
            "relayed over the net"
        );

        // Migrate salary_of into the deployed ambassador.
        assert_eq!(fed.migrate_method(b, "db", "salary_of").unwrap(), 1);

        let before_local = fed.net_stats().messages_sent;
        let out = fed
            .call_through_ambassador(a, caller, amb, "salary_of", &[Value::from("bob")])
            .unwrap();
        assert_eq!(out, Value::Int(90));
        assert_eq!(
            fed.net_stats().messages_sent,
            before_local,
            "served locally after migration"
        );
    }

    #[test]
    fn push_update_rewrites_remote_semantics() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        let caller = fed.runtime_mut(a).unwrap().ids_mut().next_id();

        // The origin pushes a maintenance meta-invoke (the §5 example).
        let updated = fed
            .push_update(
                b,
                "db",
                &[
                    UpdateOp::AddMethod(
                        "maintenance_notice".into(),
                        Value::map([
                            (
                                "body",
                                Value::from("return \"database is down for maintenance\";"),
                            ),
                            ("invoke_acl", Value::from("public")),
                        ]),
                    ),
                    UpdateOp::InstallMetaInvoke("maintenance_notice".into()),
                ],
            )
            .unwrap();
        assert_eq!(updated, 1);
        // Every invocation on the ambassador now echoes the notice.
        let out = fed
            .call_through_ambassador(a, caller, amb, "count", &[])
            .unwrap();
        assert_eq!(out, Value::from("database is down for maintenance"));
        // Back to normal after the uninstall push.
        fed.push_update(b, "db", &[UpdateOp::UninstallMetaInvoke])
            .unwrap();
        let out = fed
            .call_through_ambassador(a, caller, amb, "count", &[])
            .unwrap();
        assert_eq!(out, Value::Int(3));
    }

    #[test]
    fn partition_times_out_cleanly() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        fed.net_config_mut().partition(a, b);
        assert!(matches!(
            fed.import_apo(a, b, "db"),
            Err(HadasError::Timeout { .. })
        ));
        fed.net_config_mut().heal(a, b);
        assert!(fed.import_apo(a, b, "db").is_ok());
    }

    #[test]
    fn hostile_host_cannot_update_a_guest_with_forged_origin() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        let amb = fed.import_apo(a, b, "db").unwrap();
        // Site A (the host) forges an update claiming some random origin.
        let forged = fed.runtime_mut(a).unwrap().ids_mut().next_id();
        let site_b_view = fed.apo_id(b, "db").unwrap();
        assert_ne!(forged, site_b_view);
        let err = fed
            .apply_update(
                a,
                forged,
                amb,
                &[UpdateOp::AddData("evil".into(), Value::Null)],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            HadasError::Model(MromError::AccessDenied { .. })
        ));
    }

    #[test]
    fn site_stats_reflect_topology() {
        let (mut fed, a, b) = two_site_federation();
        integrate_db(&mut fed, b, &["count"]);
        fed.link(a, b).unwrap();
        fed.import_apo(a, b, "db").unwrap();
        let sa = fed.site_stats(a).unwrap();
        let sb = fed.site_stats(b).unwrap();
        assert_eq!(sa.guests, 1);
        assert_eq!(sa.apos, 0);
        assert_eq!(sb.apos, 1);
        assert_eq!(sb.deployed, 1);
        assert_eq!(sa.links, 1);
        assert_eq!(sb.links, 1);
    }

    #[test]
    fn virtual_time_advances_with_traffic() {
        let (mut fed, a, b) = two_site_federation();
        assert_eq!(fed.now(), SimTime::ZERO);
        fed.link(a, b).unwrap();
        assert!(fed.now() > SimTime::ZERO);
    }
}
