//! Retry policy for synchronous federation operations.
//!
//! A [`RetryPolicy`] decides how many times a request is re-posted after
//! the network swallows it and how long the sender waits between
//! attempts. [`RetryPolicy::Off`] (the default) is byte-for-byte the
//! pre-retry behaviour — one attempt, no extra RNG draws, no extra
//! virtual time — mirroring how `AdmissionPolicy::Off` gates the
//! admission analyzer.

use mrom_net::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// When and how a federation operation retries a timed-out request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryPolicy {
    /// No retries: a lost message fails the operation immediately (the
    /// historical behaviour, and the default).
    #[default]
    Off,
    /// Re-post the request up to a bound, backing off exponentially with
    /// seeded jitter between attempts.
    Backoff {
        /// Total attempts allowed (1 behaves like `Off` but still draws
        /// jitter; use `Off` for the true zero-cost path). Clamped to at
        /// least 1 by [`RetryPolicy::backoff`].
        max_attempts: u32,
        /// Delay before the first retry.
        base: SimTime,
        /// Multiplier applied to the delay after every failed attempt
        /// (clamped to at least 1).
        multiplier: u32,
        /// Upper bound of the uniform jitter added to every delay, in
        /// microseconds (0 = deterministic backoff, no RNG draw).
        jitter_us: u64,
    },
    /// As `Backoff`, but a remote *invocation* is re-posted only when
    /// the target method's interprocedural effect signature proves it
    /// idempotent — everything else gets exactly one attempt, even
    /// though the receiver-side reply cache would dedup a re-execution.
    /// Defence in depth: the static signature keeps non-replayable work
    /// off the wire twice; the dedup cache stays as the dynamic
    /// backstop. Non-invocation operations (migration dispatch, link
    /// probes) retry as under `Backoff` — they are protocol-level
    /// idempotent already.
    IdempotentOnly {
        /// Total attempts allowed for idempotent-provable invocations.
        max_attempts: u32,
        /// Delay before the first retry.
        base: SimTime,
        /// Multiplier applied to the delay after every failed attempt
        /// (clamped to at least 1).
        multiplier: u32,
        /// Upper bound of the uniform jitter added to every delay, in
        /// microseconds (0 = deterministic backoff, no RNG draw).
        jitter_us: u64,
    },
}

impl RetryPolicy {
    /// A bounded exponential-backoff policy.
    #[must_use]
    pub fn backoff(max_attempts: u32, base: SimTime, multiplier: u32, jitter_us: u64) -> Self {
        RetryPolicy::Backoff {
            max_attempts: max_attempts.max(1),
            base,
            multiplier: multiplier.max(1),
            jitter_us,
        }
    }

    /// A sensible default for chaos runs: 5 attempts, 50 ms base delay,
    /// doubling, with up to 10 ms of jitter.
    #[must_use]
    pub fn standard() -> Self {
        RetryPolicy::backoff(5, SimTime::from_millis(50), 2, 10_000)
    }

    /// A bounded backoff policy that additionally gates invocation
    /// retries on proven idempotence (see
    /// [`RetryPolicy::IdempotentOnly`]).
    #[must_use]
    pub fn idempotent_only(
        max_attempts: u32,
        base: SimTime,
        multiplier: u32,
        jitter_us: u64,
    ) -> Self {
        RetryPolicy::IdempotentOnly {
            max_attempts: max_attempts.max(1),
            base,
            multiplier: multiplier.max(1),
            jitter_us,
        }
    }

    /// `true` when invocation retries require a proven-idempotent target
    /// method.
    #[must_use]
    pub fn gates_on_idempotence(&self) -> bool {
        matches!(self, RetryPolicy::IdempotentOnly { .. })
    }

    /// `true` for the zero-cost single-attempt policy.
    #[must_use]
    pub fn is_off(&self) -> bool {
        matches!(self, RetryPolicy::Off)
    }

    /// Total attempts this policy allows (1 for `Off`).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        match self {
            RetryPolicy::Off => 1,
            RetryPolicy::Backoff { max_attempts, .. }
            | RetryPolicy::IdempotentOnly { max_attempts, .. } => (*max_attempts).max(1),
        }
    }

    /// The delay to wait before attempt `attempt` (2 = first retry),
    /// drawing jitter from `rng` only when the policy configures any —
    /// so an `Off` or jitter-free policy consumes no randomness.
    #[must_use]
    pub fn backoff_delay(&self, attempt: u32, rng: &mut StdRng) -> SimTime {
        match self {
            RetryPolicy::Off => SimTime::ZERO,
            RetryPolicy::Backoff {
                base,
                multiplier,
                jitter_us,
                ..
            }
            | RetryPolicy::IdempotentOnly {
                base,
                multiplier,
                jitter_us,
                ..
            } => {
                // attempt 2 → base, attempt 3 → base×m, attempt 4 → base×m².
                let exponent = attempt.saturating_sub(2);
                let factor = u64::from((*multiplier).max(1)).saturating_pow(exponent);
                let mut delay = SimTime::from_micros(base.as_micros().saturating_mul(factor));
                if *jitter_us > 0 {
                    delay += SimTime::from_micros(rng.random_range(0..=*jitter_us));
                }
                delay
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn off_is_default_and_costless() {
        let policy = RetryPolicy::default();
        assert!(policy.is_off());
        assert_eq!(policy.max_attempts(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff_delay(2, &mut rng), SimTime::ZERO);
        // No RNG draws happened: a fresh rng with the same seed produces
        // the same next value.
        let mut fresh = StdRng::seed_from_u64(1);
        assert_eq!(rng.random::<f64>(), fresh.random::<f64>());
    }

    #[test]
    fn backoff_grows_exponentially_without_jitter() {
        let policy = RetryPolicy::backoff(4, SimTime::from_millis(10), 3, 0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(policy.backoff_delay(2, &mut rng), SimTime::from_millis(10));
        assert_eq!(policy.backoff_delay(3, &mut rng), SimTime::from_millis(30));
        assert_eq!(policy.backoff_delay(4, &mut rng), SimTime::from_millis(90));
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let policy = RetryPolicy::backoff(3, SimTime::from_millis(1), 2, 500);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            policy.backoff_delay(2, &mut rng)
        };
        assert_eq!(draw(7), draw(7), "same seed, same jitter");
        let d = draw(7);
        assert!(d >= SimTime::from_millis(1));
        assert!(d <= SimTime::from_micros(1_500));
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let policy = RetryPolicy::backoff(0, SimTime::from_millis(1), 0, 0);
        assert_eq!(policy.max_attempts(), 1);
        let mut rng = StdRng::seed_from_u64(3);
        // multiplier clamped to 1: constant backoff.
        assert_eq!(policy.backoff_delay(2, &mut rng), SimTime::from_millis(1));
        assert_eq!(policy.backoff_delay(5, &mut rng), SimTime::from_millis(1));
    }

    #[test]
    fn standard_retries_multiple_times() {
        let policy = RetryPolicy::standard();
        assert!(!policy.is_off());
        assert!(policy.max_attempts() >= 3);
    }

    #[test]
    fn idempotent_only_shares_backoff_shape() {
        let gated = RetryPolicy::idempotent_only(4, SimTime::from_millis(10), 3, 0);
        let plain = RetryPolicy::backoff(4, SimTime::from_millis(10), 3, 0);
        assert!(gated.gates_on_idempotence());
        assert!(!plain.gates_on_idempotence());
        assert_eq!(gated.max_attempts(), 4);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for attempt in 2..=4 {
            assert_eq!(
                gated.backoff_delay(attempt, &mut a),
                plain.backoff_delay(attempt, &mut b)
            );
        }
    }
}
