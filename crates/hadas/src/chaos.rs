//! Deterministic chaos harness for the fault-tolerant federation.
//!
//! Each [`ChaosScenario`] drives a small federation through a scripted
//! fault schedule — message loss, duplication, reordering, partitions,
//! lost acknowledgements, site crashes — with [`RetryPolicy::standard`]
//! active, then heals the network, settles every in-doubt migration, and
//! drains the wire. The outcome is a [`ChaosReport`] whose
//! [`ChaosReport::violations`] checks the global invariants the retry
//! and recovery machinery must uphold *regardless of seed*:
//!
//! 1. the itinerant object lives at **exactly one** site (no loss, no
//!    duplication by retried migrations);
//! 2. its non-idempotent `bump` method was applied **at least once per
//!    acknowledged call and at most once per attempt** (receiver-side
//!    dedup makes retries exactly-once);
//! 3. no migration is left parked in-doubt after the network heals;
//! 4. the simulator's accounting balances: every send is delivered,
//!    dropped, or still in flight — duplicates included;
//! 5. nothing remains on the wire after the final drain.
//!
//! Everything is driven by the seeded simulator, so the same scenario
//! and seed reproduce the identical [`NetStats`] byte for byte — the
//! property the chaos integration tests sweep across seeds.

use mrom_core::{ClassSpec, DataItem, Method, MethodBody};
use mrom_net::{LinkConfig, NetStats, NetworkConfig};
use mrom_value::{NodeId, ObjectId, Value};

use crate::error::HadasError;
use crate::federation::Federation;
use crate::retry::RetryPolicy;

/// A scripted fault schedule the harness can run under any seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Lossy symmetric link while a burst of non-idempotent invocations
    /// runs; retries must recover most of them without double-applying.
    LossAndRetry,
    /// Every message is duplicated in transit; dedup must keep
    /// invocations exactly-once and migrations single-copy.
    DuplicateDelivery,
    /// Messages overtake each other on the wire; the synchronous engine
    /// must still match every reply to its request.
    Reordering,
    /// The link partitions before a migration; the object parks in-doubt
    /// and is recovered from the depot after the heal.
    PartitionDuringDispatch,
    /// The forward path works but every acknowledgement is lost: the
    /// destination adopts the object, the origin cannot know, and
    /// resolution must discover the move actually landed.
    LostAcks,
    /// The destination site is down while a migration retries, then
    /// crashes again after the object settles; the depot bootstraps it
    /// back both times.
    CrashMidMigration,
    /// Loss, duplication, reordering *and* a mid-run partition at once,
    /// then a full heal-and-resume cycle.
    HealAndResume,
}

impl ChaosScenario {
    /// Every scenario, in a stable order (the sweep matrix).
    pub const ALL: [ChaosScenario; 7] = [
        ChaosScenario::LossAndRetry,
        ChaosScenario::DuplicateDelivery,
        ChaosScenario::Reordering,
        ChaosScenario::PartitionDuringDispatch,
        ChaosScenario::LostAcks,
        ChaosScenario::CrashMidMigration,
        ChaosScenario::HealAndResume,
    ];

    /// A stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::LossAndRetry => "loss-and-retry",
            ChaosScenario::DuplicateDelivery => "duplicate-delivery",
            ChaosScenario::Reordering => "reordering",
            ChaosScenario::PartitionDuringDispatch => "partition-during-dispatch",
            ChaosScenario::LostAcks => "lost-acks",
            ChaosScenario::CrashMidMigration => "crash-mid-migration",
            ChaosScenario::HealAndResume => "heal-and-resume",
        }
    }
}

/// The outcome of one scenario run: final state plus the raw simulator
/// counters, which double as the determinism witness (same seed → same
/// stats, field for field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Which scenario ran.
    pub scenario: &'static str,
    /// The seed it ran under.
    pub seed: u64,
    /// Simulator counters at the end of the run.
    pub stats: NetStats,
    /// Messages still on the wire after the final drain.
    pub in_flight: usize,
    /// Live copies of the itinerant parcel across all sites.
    pub live_copies: usize,
    /// Migrations still parked in-doubt across all sites.
    pub parked_in_doubt: usize,
    /// `bump` invocations that returned success.
    pub ops_ok: u32,
    /// `bump` invocations that failed (timeout after every retry).
    pub ops_failed: u32,
    /// The parcel's final counter value.
    pub final_count: i64,
    /// Where the parcel ended up (when it is live somewhere).
    pub final_host: Option<NodeId>,
}

impl ChaosReport {
    /// Checks every global invariant, returning a human-readable list of
    /// violations (empty = the run upheld all of them).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.live_copies != 1 {
            out.push(format!(
                "object must live at exactly one site, found {} copies",
                self.live_copies
            ));
        }
        if self.parked_in_doubt != 0 {
            out.push(format!(
                "{} migration(s) still in doubt after heal",
                self.parked_in_doubt
            ));
        }
        if self.in_flight != 0 {
            out.push(format!(
                "{} message(s) still in flight after drain",
                self.in_flight
            ));
        }
        if !self.stats.accounts_for_every_send(self.in_flight) {
            out.push(format!(
                "stats do not balance: delivered {} + dropped {} + in-flight {} \
                 != sent {} + duplicated {}",
                self.stats.messages_delivered,
                self.stats.messages_dropped,
                self.in_flight,
                self.stats.messages_sent,
                self.stats.messages_duplicated,
            ));
        }
        // Exactly-once window: every acknowledged call applied exactly
        // once; a timed-out call applied at most once (the request may or
        // may not have reached the peer, but dedup forbids twice).
        let min = i64::from(self.ops_ok);
        let max = i64::from(self.ops_ok) + i64::from(self.ops_failed);
        if self.final_count < min || self.final_count > max {
            out.push(format!(
                "counter {} outside exactly-once window [{min}, {max}]",
                self.final_count
            ));
        }
        out
    }

    /// Panics with the full violation list if any invariant failed.
    pub fn assert_invariants(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "chaos invariants violated ({} seed {}):\n  {}",
            self.scenario,
            self.seed,
            violations.join("\n  ")
        );
    }
}

/// The itinerant parcel: a mobile object with one non-idempotent method,
/// so a double-applied invocation is directly visible in its counter.
fn parcel_class() -> ClassSpec {
    ClassSpec::new("chaos-parcel")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "bump",
            Method::public(
                MethodBody::script(
                    "self.set(\"count\", self.get(\"count\") + 1); return self.get(\"count\");",
                )
                .expect("bump parses"),
            ),
        )
}

/// A clean two-site federation (nodes 1 and 2) with retries on and the
/// parcel integrated at node 1. Setup happens on a fault-free network so
/// every scenario injects its faults from a known-good baseline.
fn fixture(seed: u64) -> Result<(Federation, NodeId, NodeId, ObjectId), HadasError> {
    let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    let a = NodeId(1);
    let b = NodeId(2);
    fed.add_site(a)?;
    fed.add_site(b)?;
    fed.set_retry_policy(RetryPolicy::standard());
    fed.link(a, b)?;
    let parcel = parcel_class().instantiate_as(fed.runtime_mut(a)?.ids_mut().next_id(), None);
    let id = parcel.id();
    fed.runtime_mut(a)?.adopt(parcel)?;
    Ok((fed, a, b, id))
}

/// Counts live copies of `id` across every site.
fn live_copies(fed: &Federation, id: ObjectId) -> usize {
    fed.site_nodes()
        .into_iter()
        .filter(|&n| fed.runtime(n).is_ok_and(|rt| rt.object(id).is_some()))
        .count()
}

/// The node currently hosting `id`, if exactly one does.
fn host_of(fed: &Federation, id: ObjectId) -> Option<NodeId> {
    let hosts: Vec<NodeId> = fed
        .site_nodes()
        .into_iter()
        .filter(|&n| fed.runtime(n).is_ok_and(|rt| rt.object(id).is_some()))
        .collect();
    match hosts.as_slice() {
        [one] => Some(*one),
        _ => None,
    }
}

/// Reads the parcel's counter wherever it lives (0 if it is lost —
/// which the copy invariant reports separately).
fn read_count(fed: &Federation, id: ObjectId) -> i64 {
    host_of(fed, id)
        .and_then(|n| fed.runtime(n).ok())
        .and_then(|rt| rt.object(id))
        .and_then(|obj| obj.read_data(ObjectId::SYSTEM, "count").ok())
        .and_then(|v| v.as_int())
        .unwrap_or(0)
}

/// Invokes `bump` remotely and tallies the outcome.
fn bump(
    fed: &mut Federation,
    from: NodeId,
    to: NodeId,
    id: ObjectId,
    ok: &mut u32,
    failed: &mut u32,
) -> Result<(), HadasError> {
    let caller = fed.ioo_id(from)?;
    match fed.remote_invoke(from, to, caller, id, "bump", &[]) {
        Ok(_) => *ok += 1,
        Err(HadasError::Timeout { .. }) => *failed += 1,
        Err(e) => return Err(e),
    }
    Ok(())
}

/// Heals every parked migration at every site, retrying a few passes in
/// case the first query races residual traffic.
fn settle_in_doubt(fed: &mut Federation) -> Result<(), HadasError> {
    for _ in 0..3 {
        let mut parked = 0;
        for node in fed.site_nodes() {
            parked += fed.in_doubt(node)?.len();
            fed.resolve_in_doubt(node)?;
        }
        if parked == 0 {
            return Ok(());
        }
    }
    Ok(())
}

/// Total in-doubt entries across the federation.
fn parked_total(fed: &Federation) -> usize {
    fed.site_nodes()
        .into_iter()
        .filter_map(|n| fed.in_doubt(n).ok())
        .map(|v| v.len())
        .sum()
}

/// Runs one scenario under one seed and reports the final state. The
/// run itself never asserts; callers check [`ChaosReport::violations`]
/// so a failing seed reports *what* broke instead of where it panicked.
///
/// # Errors
///
/// Setup failures and non-fault protocol errors (a fault-induced
/// timeout is an expected outcome, not an error).
pub fn run_scenario(scenario: ChaosScenario, seed: u64) -> Result<ChaosReport, HadasError> {
    run_scenario_with_site_workers(scenario, seed, 1)
}

/// The ConcurrentSite harness: [`run_scenario`] with every site draining
/// its invocation inbox on a `workers`-thread pool (see
/// [`Federation::set_site_workers`]). `workers == 1` is exactly the
/// classic single-threaded run. Every fault schedule and every
/// [`ChaosReport`] invariant is unchanged — concurrency must not weaken
/// exactly-once delivery, single-copy migration, or recovery.
///
/// # Errors
///
/// Setup failures and non-fault protocol errors (a fault-induced
/// timeout is an expected outcome, not an error).
pub fn run_scenario_with_site_workers(
    scenario: ChaosScenario,
    seed: u64,
    workers: usize,
) -> Result<ChaosReport, HadasError> {
    let (mut fed, a, b, id) = fixture(seed)?;
    fed.set_site_workers(workers);
    let mut ops_ok = 0u32;
    let mut ops_failed = 0u32;

    match scenario {
        ChaosScenario::LossAndRetry => {
            fed.dispatch_object(a, b, id)?;
            let lossy = LinkConfig::lan().loss_probability(0.25);
            fed.net_config_mut().set_symmetric_link(a, b, lossy);
            for _ in 0..8 {
                bump(&mut fed, a, b, id, &mut ops_ok, &mut ops_failed)?;
            }
            fed.net_config_mut()
                .set_symmetric_link(a, b, LinkConfig::lan());
        }
        ChaosScenario::DuplicateDelivery => {
            let doubling = LinkConfig::lan().duplicate_probability(1.0);
            fed.net_config_mut().set_symmetric_link(a, b, doubling);
            // A retried/duplicated MoveObject must not double-adopt.
            if fed.dispatch_object(a, b, id).is_err() {
                ops_failed += 1;
            }
            for _ in 0..6 {
                bump(&mut fed, a, b, id, &mut ops_ok, &mut ops_failed)?;
            }
            fed.net_config_mut()
                .set_symmetric_link(a, b, LinkConfig::lan());
        }
        ChaosScenario::Reordering => {
            let scrambled = LinkConfig::lan().reorder_probability(0.5);
            fed.net_config_mut().set_symmetric_link(a, b, scrambled);
            if fed.dispatch_object(a, b, id).is_err() {
                ops_failed += 1;
            }
            for _ in 0..6 {
                bump(&mut fed, a, b, id, &mut ops_ok, &mut ops_failed)?;
            }
            fed.net_config_mut()
                .set_symmetric_link(a, b, LinkConfig::lan());
        }
        ChaosScenario::PartitionDuringDispatch => {
            fed.net_config_mut().partition(a, b);
            // Every attempt is dropped; the parcel parks in-doubt.
            if fed.dispatch_object(a, b, id).is_err() {
                ops_failed += 1;
            }
            fed.net_config_mut().heal(a, b);
            settle_in_doubt(&mut fed)?;
            // Recovered from the depot at the origin; resume the move.
            fed.dispatch_object(a, b, id)?;
            bump(&mut fed, a, b, id, &mut ops_ok, &mut ops_failed)?;
        }
        ChaosScenario::LostAcks => {
            // Forward path fine, every acknowledgement lost: the move
            // lands but the origin cannot know.
            let black_hole = LinkConfig::lan().loss_probability(1.0);
            fed.net_config_mut().set_link(b, a, black_hole);
            if fed.dispatch_object(a, b, id).is_err() {
                ops_failed += 1;
            }
            fed.net_config_mut().set_link(b, a, LinkConfig::lan());
            // Resolution must discover the destination owns the object.
            settle_in_doubt(&mut fed)?;
            for _ in 0..3 {
                bump(&mut fed, a, b, id, &mut ops_ok, &mut ops_failed)?;
            }
        }
        ChaosScenario::CrashMidMigration => {
            fed.crash_site(b)?;
            if fed.dispatch_object(a, b, id).is_err() {
                ops_failed += 1;
            }
            fed.restart_site(b)?;
            settle_in_doubt(&mut fed)?;
            fed.dispatch_object(a, b, id)?;
            bump(&mut fed, a, b, id, &mut ops_ok, &mut ops_failed)?;
            // Persist the parcel's *current* state, then crash the host:
            // restart must bootstrap it back, counter intact.
            fed.checkpoint_site(b)?;
            fed.crash_site(b)?;
            fed.restart_site(b)?;
        }
        ChaosScenario::HealAndResume => {
            let storm = LinkConfig::lan()
                .loss_probability(0.2)
                .duplicate_probability(0.2)
                .reorder_probability(0.2);
            fed.net_config_mut().set_symmetric_link(a, b, storm);
            if fed.dispatch_object(a, b, id).is_err() {
                ops_failed += 1;
            }
            for _ in 0..4 {
                bump(&mut fed, a, b, id, &mut ops_ok, &mut ops_failed)?;
            }
            fed.net_config_mut().partition(a, b);
            // The parcel may be at either side when the partition hits;
            // try to move it from wherever it lives.
            if let Some(host) = host_of(&fed, id) {
                let other = if host == a { b } else { a };
                if fed.dispatch_object(host, other, id).is_err() {
                    ops_failed += 1;
                }
            }
            fed.net_config_mut().heal(a, b);
            fed.net_config_mut()
                .set_symmetric_link(a, b, LinkConfig::lan());
            settle_in_doubt(&mut fed)?;
            for _ in 0..2 {
                if let Some(host) = host_of(&fed, id) {
                    let from = if host == a { b } else { a };
                    bump(&mut fed, from, host, id, &mut ops_ok, &mut ops_failed)?;
                }
            }
        }
    }

    // Final drain: nothing may stay on the wire, nothing in doubt.
    fed.pump_all();
    settle_in_doubt(&mut fed)?;
    fed.pump_all();

    Ok(ChaosReport {
        scenario: scenario.name(),
        seed,
        stats: fed.net_stats().clone(),
        in_flight: fed.in_flight(),
        live_copies: live_copies(&fed, id),
        parked_in_doubt: parked_total(&fed),
        ops_ok,
        ops_failed,
        final_count: read_count(&fed, id),
        final_host: host_of(&fed, id),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_upholds_invariants_on_a_smoke_seed() {
        for scenario in ChaosScenario::ALL {
            let report = run_scenario(scenario, 42).expect("scenario runs");
            report.assert_invariants();
        }
    }

    #[test]
    fn same_seed_reproduces_identical_stats() {
        for scenario in [ChaosScenario::LossAndRetry, ChaosScenario::HealAndResume] {
            let first = run_scenario(scenario, 7).unwrap();
            let second = run_scenario(scenario, 7).unwrap();
            assert_eq!(first, second, "{} must be deterministic", scenario.name());
        }
    }

    #[test]
    fn concurrent_site_upholds_invariants_on_a_smoke_seed() {
        for scenario in ChaosScenario::ALL {
            let report = run_scenario_with_site_workers(scenario, 42, 4).expect("scenario runs");
            report.assert_invariants();
        }
    }

    #[test]
    fn concurrent_site_is_deterministic_per_seed() {
        for scenario in [
            ChaosScenario::LossAndRetry,
            ChaosScenario::DuplicateDelivery,
        ] {
            let first = run_scenario_with_site_workers(scenario, 7, 4).unwrap();
            let second = run_scenario_with_site_workers(scenario, 7, 4).unwrap();
            assert_eq!(first, second, "{} must be deterministic", scenario.name());
        }
    }

    #[test]
    fn single_worker_pool_matches_classic_run() {
        for scenario in ChaosScenario::ALL {
            let classic = run_scenario(scenario, 11).unwrap();
            let pooled = run_scenario_with_site_workers(scenario, 11, 1).unwrap();
            assert_eq!(classic, pooled, "workers=1 is byte-for-byte classic");
        }
    }

    #[test]
    fn scenario_names_are_stable_and_unique() {
        let names: std::collections::BTreeSet<&str> =
            ChaosScenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ChaosScenario::ALL.len());
    }
}
