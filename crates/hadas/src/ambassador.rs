//! Ambassador instantiation — the mobile face of an APO.
//!
//! "An Ambassador is an object that has been instantiated in the origin
//! APO and has been deployed in a 'foreign (IOO) territory', but is owned
//! and maintained by its origin APO." (§5)
//!
//! [`AmbassadorSpec`] decides the *functionality split*: which of the
//! APO's methods travel with the Ambassador (served locally at the foreign
//! site) and which stay home (relayed back to the origin). Because split
//! decisions are data, they can be revisited at runtime — see
//! [`crate::Federation::migrate_method`].

use mrom_core::{
    Acl, AdmissionPolicy, DataItem, Method, MromError, MromObject, ObjectBuilder, Severity,
};
use mrom_value::{IdGenerator, NodeId, ObjectId, Value};

use crate::error::HadasError;

/// Default `install` body: record the installation context handed over by
/// the importing IOO and flip the installed flag — the paper's "passes to
/// it an installation context and invokes the Ambassador, which in turn
/// installs itself in the new environment".
const DEFAULT_INSTALL: &str = r#"
param context;
self.set("install_context", context);
self.set("installed", true);
return true;
"#;

/// How to derive an Ambassador from an APO.
#[derive(Debug, Clone, Default)]
pub struct AmbassadorSpec {
    /// Methods copied into the Ambassador (served locally after import).
    pub exported_methods: Vec<String>,
    /// Data items whose current values are copied (public-read snapshots).
    pub copied_data: Vec<String>,
    /// Custom `install` body (script source); `None` uses the default.
    pub install_script: Option<String>,
    /// Attach a capability card: the admission analyzer's
    /// [`HostManifest`](mrom_core::HostManifest) for every public method,
    /// advertised as read-only public data (`capability_card`) so foreign
    /// sites can inspect what a method touches *before* negotiating its
    /// import — the agent-marketplace discovery handshake.
    pub advertise_card: bool,
}

impl AmbassadorSpec {
    /// An empty spec: a pure relay Ambassador (every call goes home).
    pub fn relay_only() -> AmbassadorSpec {
        AmbassadorSpec::default()
    }

    /// Exports the given methods.
    pub fn with_methods<I, S>(mut self, names: I) -> AmbassadorSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.exported_methods
            .extend(names.into_iter().map(Into::into));
        self
    }

    /// Copies the given data items.
    pub fn with_data<I, S>(mut self, names: I) -> AmbassadorSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.copied_data.extend(names.into_iter().map(Into::into));
        self
    }

    /// Uses a custom install script.
    pub fn with_install(mut self, source: &str) -> AmbassadorSpec {
        self.install_script = Some(source.to_owned());
        self
    }

    /// Advertises the APO's per-method [`HostManifest`](mrom_core::HostManifest)
    /// on the Ambassador as the `capability_card` data item.
    pub fn with_capability_card(mut self) -> AmbassadorSpec {
        self.advertise_card = true;
        self
    }
}

/// The capability card advertised by a card-carrying Ambassador: a map
/// from each of the APO's publicly invocable methods to its analyzer
/// manifest — what it reads, writes, invokes, and which world calls it
/// leans on. Native bodies the analyzer cannot see are marked `opaque`.
///
/// The card is *data*: it travels with the Ambassador, any site can read
/// it, and [`crate::Federation::negotiate_method_import`] consults it
/// before agreeing to pull a method across the wire.
#[must_use]
pub fn capability_card(apo: &MromObject) -> Value {
    let apo_id = apo.id();
    // The public view: what an arbitrary stranger could invoke.
    let stranger = ObjectId::from_parts(apo_id.node(), apo_id.seq(), !apo_id.entropy());
    let mut card: Vec<(String, Value)> = Vec::new();
    for (name, _) in apo.list_methods(stranger) {
        if mrom_core::MetaOp::from_method_name(&name).is_some() {
            continue;
        }
        let Ok(desc) = apo.method_descriptor(apo_id, &name) else {
            continue;
        };
        let Ok(method) = Method::from_descriptor(&desc) else {
            continue;
        };
        let entry = match method.body() {
            mrom_core::MethodBody::Script(program) => {
                manifest_value(&mrom_core::analyze_program(program).manifest)
            }
            mrom_core::MethodBody::Native(_) => Value::map([("opaque", Value::Bool(true))]),
            mrom_core::MethodBody::Meta(_) => continue,
        };
        card.push((name, entry));
    }
    Value::map(card)
}

/// Serializes a [`HostManifest`](mrom_core::HostManifest) as a stable
/// value tree (sorted lists, integer/boolean scalars).
fn manifest_value(m: &mrom_core::HostManifest) -> Value {
    let strs = |set: &std::collections::BTreeSet<String>| {
        Value::List(set.iter().map(|s| Value::from(s.as_str())).collect())
    };
    Value::map([
        ("reads", strs(&m.data_read)),
        ("writes", strs(&m.data_written)),
        ("creates", strs(&m.data_created)),
        ("deletes", strs(&m.data_deleted)),
        ("invokes", strs(&m.methods_invoked)),
        ("world", strs(&m.world_calls)),
        ("call_sites", Value::Int(m.host_call_sites as i64)),
        ("dynamic", Value::Bool(m.dynamic_data || m.dynamic_methods)),
        ("pure", Value::Bool(m.is_pure())),
    ])
}

/// What a hosting site records about a guest Ambassador.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestInfo {
    /// Site of the origin APO.
    pub origin_node: NodeId,
    /// Identity of the origin APO.
    pub origin_apo: ObjectId,
    /// The APO's registered name at its home site.
    pub apo_name: String,
    /// Public methods that did not migrate and are relayed to the origin.
    pub remote_methods: Vec<String>,
}

/// Instantiates an Ambassador for `apo` according to `spec`.
///
/// Returns the Ambassador object plus the list of the APO's public methods
/// that did **not** migrate (the relay set). The Ambassador's `origin`
/// principal is the APO — the host IOO can neither read its meta-methods
/// nor mutate it, while the remote APO can (the encapsulation/security
/// duality of §5).
///
/// # Errors
///
/// [`HadasError::Model`] when a named method/data item does not exist or
/// is not mobile; [`HadasError::AdmissionRefused`] when the process-wide
/// default admission policy is strict and a copied body fails static
/// analysis against the ambassador.
pub fn instantiate_ambassador(
    apo: &MromObject,
    apo_name: &str,
    origin_node: NodeId,
    spec: &AmbassadorSpec,
    ids: &mut IdGenerator,
) -> Result<(MromObject, Vec<String>), HadasError> {
    instantiate_ambassador_with_policy(
        apo,
        apo_name,
        origin_node,
        spec,
        ids,
        mrom_core::default_admission_policy(),
    )
}

/// [`instantiate_ambassador`] under an explicit [`AdmissionPolicy`]: the
/// exporting site verifies the ambassador it is about to ship — methods
/// sliced out of the APO may reference data or peers that did not travel
/// with them, and `Strict` refuses to ship such an ambassador.
///
/// # Errors
///
/// As [`instantiate_ambassador`]; admission failures surface as
/// [`HadasError::AdmissionRefused`] naming `origin_node`.
pub fn instantiate_ambassador_with_policy(
    apo: &MromObject,
    apo_name: &str,
    origin_node: NodeId,
    spec: &AmbassadorSpec,
    ids: &mut IdGenerator,
    policy: AdmissionPolicy,
) -> Result<(MromObject, Vec<String>), HadasError> {
    instantiate_ambassador_as(apo, apo_name, origin_node, spec, ids.next_id(), policy)
}

/// [`instantiate_ambassador_with_policy`] with a pre-minted identity (the
/// shared-runtime path, where ids are minted through `&self`).
///
/// # Errors
///
/// As [`instantiate_ambassador`].
pub fn instantiate_ambassador_as(
    apo: &MromObject,
    apo_name: &str,
    origin_node: NodeId,
    spec: &AmbassadorSpec,
    id: ObjectId,
    policy: AdmissionPolicy,
) -> Result<(MromObject, Vec<String>), HadasError> {
    let apo_id = apo.id();
    let mut builder = ObjectBuilder::new(id)
        .class(&format!("ambassador:{}", apo.class_name()))
        .origin(apo_id)
        // Structural mutation is reserved for the origin APO.
        .meta_acl(Acl::Origin)
        .fixed_data(
            "origin_ref",
            DataItem::public(Value::ObjectRef(apo_id)).with_write_acl(Acl::Nobody),
        )
        .fixed_data(
            "origin_site",
            DataItem::public(Value::Int(origin_node.0 as i64)).with_write_acl(Acl::Nobody),
        )
        .fixed_data(
            "apo_name",
            DataItem::public(Value::from(apo_name)).with_write_acl(Acl::Nobody),
        );

    // The marketplace handshake: a card-carrying Ambassador advertises
    // what every public method of its APO touches.
    if spec.advertise_card {
        builder = builder.fixed_data(
            "capability_card",
            DataItem::public(capability_card(apo)).with_write_acl(Acl::Nobody),
        );
    }

    // The mutable installation state lives in the extensible section: the
    // ambassador itself (and its origin) manage it.
    builder = builder
        .ext_data("installed", DataItem::public(Value::Bool(false)))
        .ext_data("install_context", DataItem::public(Value::Null));

    // Copy exported methods with their full definitions (pre/post, ACLs).
    for name in &spec.exported_methods {
        let desc = apo
            .method_descriptor(apo_id, name)
            .map_err(HadasError::Model)?;
        let method = Method::from_descriptor(&desc).map_err(HadasError::Model)?;
        if !method.is_mobile() {
            return Err(HadasError::Model(MromError::NotMobile {
                object: apo_id,
                item: name.clone(),
            }));
        }
        builder = builder.ext_method(name, method);
    }

    // Snapshot copied data.
    for name in &spec.copied_data {
        let value = apo.read_data(apo_id, name).map_err(HadasError::Model)?;
        builder = builder.ext_data(name, DataItem::public(value));
    }

    // The install method.
    let install_src = spec.install_script.as_deref().unwrap_or(DEFAULT_INSTALL);
    let install =
        Method::public(mrom_core::MethodBody::script(install_src).map_err(HadasError::Model)?);
    builder = builder.ext_method("install", install);

    let ambassador = builder.build();

    match policy {
        AdmissionPolicy::Off => {}
        AdmissionPolicy::Warn => {
            let _ = ambassador.analyze();
        }
        AdmissionPolicy::Strict => {
            let diagnostics = ambassador.analyze();
            if diagnostics.iter().any(|d| d.severity == Severity::Error) {
                return Err(HadasError::AdmissionRefused {
                    at: origin_node,
                    rejection: MromError::AdmissionRejected {
                        object: ambassador.id(),
                        context: "instantiate_ambassador".to_owned(),
                        diagnostics,
                    },
                });
            }
        }
    }

    // The relay set: the APO's publicly invocable methods that did not
    // migrate (meta-methods excluded — they must never be relayed to the
    // origin on a stranger's behalf).
    let exported: Vec<&str> = spec.exported_methods.iter().map(String::as_str).collect();
    // An arbitrary stranger principal for the public view: derived from the
    // ambassador's identity with flipped entropy, so it can collide with no
    // real object (every hosted object has a distinct (node, seq) pair).
    let stranger = ObjectId::from_parts(id.node(), id.seq(), !id.entropy());
    let remote_methods: Vec<String> = apo
        .list_methods(stranger)
        .into_iter()
        .map(|(n, _)| n)
        .filter(|n| {
            !exported.contains(&n.as_str()) && mrom_core::MetaOp::from_method_name(n).is_none()
        })
        .collect();

    Ok((ambassador, remote_methods))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_core::{invoke, ClassSpec, MethodBody, NoWorld};
    use mrom_value::NodeId;

    fn gen() -> IdGenerator {
        IdGenerator::new(NodeId(40))
    }

    fn sample_apo(ids: &mut IdGenerator) -> MromObject {
        ClassSpec::new("db")
            .fixed_data("rows", DataItem::public(Value::Int(100)))
            .fixed_method(
                "query",
                Method::public(MethodBody::script("return self.get(\"rows\");").unwrap()),
            )
            .fixed_method(
                "stats",
                Method::public(MethodBody::script("return \"ok\";").unwrap()),
            )
            .instantiate(ids)
    }

    #[test]
    fn exported_methods_run_locally_in_the_ambassador() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let spec = AmbassadorSpec::relay_only()
            .with_methods(["query"])
            .with_data(["rows"]);
        let (mut amb, remote) =
            instantiate_ambassador(&apo, "db", NodeId(40), &spec, &mut ids).unwrap();
        assert_eq!(amb.origin(), apo.id());
        assert_eq!(remote, vec!["stats".to_owned()]);
        let mut world = NoWorld;
        let caller = ids.next_id();
        assert_eq!(
            invoke(&mut amb, &mut world, caller, "query", &[]).unwrap(),
            Value::Int(100)
        );
    }

    #[test]
    fn install_records_context() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let (mut amb, _) = instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only(),
            &mut ids,
        )
        .unwrap();
        let mut world = NoWorld;
        let host = ids.next_id();
        let ctx = Value::map([("host_site", Value::Int(9))]);
        assert_eq!(
            invoke(
                &mut amb,
                &mut world,
                host,
                "install",
                std::slice::from_ref(&ctx)
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(amb.read_data(host, "installed").unwrap(), Value::Bool(true));
        assert_eq!(amb.read_data(host, "install_context").unwrap(), ctx);
    }

    #[test]
    fn host_cannot_mutate_but_origin_can() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let (mut amb, _) = instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_methods(["query"]),
            &mut ids,
        )
        .unwrap();
        let host = ids.next_id();
        // Host IOO: no structural access.
        assert!(amb.add_data(host, "spy", Value::Null).is_err());
        assert!(amb
            .set_method(
                host,
                "query",
                &Value::map([("body", Value::from("return 0;"))])
            )
            .is_err());
        // The origin APO: full control, remotely.
        let origin = apo.id();
        amb.set_method(
            origin,
            "query",
            &Value::map([("body", Value::from("return \"updated\";"))]),
        )
        .unwrap();
        let mut world = NoWorld;
        assert_eq!(
            invoke(&mut amb, &mut world, host, "query", &[]).unwrap(),
            Value::from("updated")
        );
    }

    #[test]
    fn ambassadors_are_mobile_by_construction() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let (amb, _) = instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_methods(["query", "stats"]),
            &mut ids,
        )
        .unwrap();
        // The origin can export it (the meta principal).
        let image = amb.migration_image(apo.id()).unwrap();
        let back = MromObject::from_image(&image).unwrap();
        assert_eq!(back, amb);
    }

    #[test]
    fn unknown_exports_fail() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        assert!(instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_methods(["ghost"]),
            &mut ids,
        )
        .is_err());
        assert!(instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_data(["ghost"]),
            &mut ids,
        )
        .is_err());
    }

    #[test]
    fn capability_card_lists_every_public_method_surface() {
        let mut ids = gen();
        let apo = ClassSpec::new("svc")
            .fixed_data("rows", DataItem::public(Value::Int(1)))
            .fixed_method(
                "query",
                Method::public(MethodBody::script("return self.get(\"rows\");").unwrap()),
            )
            .fixed_method(
                "beacon",
                Method::public(
                    MethodBody::script("return self.send(self.get(\"rows\"), \"ping\");").unwrap(),
                ),
            )
            .instantiate(&mut ids);
        let card = capability_card(&apo);
        let card = card.as_map().unwrap();
        let query = card["query"].as_map().unwrap();
        assert_eq!(
            query["reads"].as_list().unwrap(),
            &[Value::from("rows")],
            "query reads rows"
        );
        assert_eq!(query["world"].as_list().unwrap(), &[] as &[Value]);
        assert_eq!(query["pure"], Value::Bool(false), "a host read is not pure");
        let beacon = card["beacon"].as_map().unwrap();
        assert_eq!(beacon["world"].as_list().unwrap(), &[Value::from("send")]);

        // A card-carrying spec attaches it as read-only public data.
        let spec = AmbassadorSpec::relay_only().with_capability_card();
        let (amb, _) = instantiate_ambassador(&apo, "svc", NodeId(40), &spec, &mut ids).unwrap();
        let advertised = amb
            .read_data(ids.next_id(), "capability_card")
            .expect("any principal can read the card");
        assert_eq!(advertised.as_map().unwrap().len(), card.len());
        // ... and a plain spec does not.
        let (plain, _) = instantiate_ambassador(
            &apo,
            "svc",
            NodeId(40),
            &AmbassadorSpec::relay_only(),
            &mut ids,
        )
        .unwrap();
        assert!(plain.read_data(ids.next_id(), "capability_card").is_err());
    }

    #[test]
    fn custom_install_scripts() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let spec = AmbassadorSpec::relay_only()
            .with_install("param ctx; self.set(\"installed\", true); return \"custom\";");
        let (mut amb, _) = instantiate_ambassador(&apo, "db", NodeId(40), &spec, &mut ids).unwrap();
        let mut world = NoWorld;
        let host = ids.next_id();
        assert_eq!(
            invoke(&mut amb, &mut world, host, "install", &[Value::Null]).unwrap(),
            Value::from("custom")
        );
    }
}
