//! Ambassador instantiation — the mobile face of an APO.
//!
//! "An Ambassador is an object that has been instantiated in the origin
//! APO and has been deployed in a 'foreign (IOO) territory', but is owned
//! and maintained by its origin APO." (§5)
//!
//! [`AmbassadorSpec`] decides the *functionality split*: which of the
//! APO's methods travel with the Ambassador (served locally at the foreign
//! site) and which stay home (relayed back to the origin). Because split
//! decisions are data, they can be revisited at runtime — see
//! [`crate::Federation::migrate_method`].

use mrom_core::{
    Acl, AdmissionPolicy, DataItem, Method, MromError, MromObject, ObjectBuilder, Severity,
};
use mrom_value::{IdGenerator, NodeId, ObjectId, Value};

use crate::error::HadasError;

/// Default `install` body: record the installation context handed over by
/// the importing IOO and flip the installed flag — the paper's "passes to
/// it an installation context and invokes the Ambassador, which in turn
/// installs itself in the new environment".
const DEFAULT_INSTALL: &str = r#"
param context;
self.set("install_context", context);
self.set("installed", true);
return true;
"#;

/// How to derive an Ambassador from an APO.
#[derive(Debug, Clone, Default)]
pub struct AmbassadorSpec {
    /// Methods copied into the Ambassador (served locally after import).
    pub exported_methods: Vec<String>,
    /// Data items whose current values are copied (public-read snapshots).
    pub copied_data: Vec<String>,
    /// Custom `install` body (script source); `None` uses the default.
    pub install_script: Option<String>,
}

impl AmbassadorSpec {
    /// An empty spec: a pure relay Ambassador (every call goes home).
    pub fn relay_only() -> AmbassadorSpec {
        AmbassadorSpec::default()
    }

    /// Exports the given methods.
    pub fn with_methods<I, S>(mut self, names: I) -> AmbassadorSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.exported_methods
            .extend(names.into_iter().map(Into::into));
        self
    }

    /// Copies the given data items.
    pub fn with_data<I, S>(mut self, names: I) -> AmbassadorSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.copied_data.extend(names.into_iter().map(Into::into));
        self
    }

    /// Uses a custom install script.
    pub fn with_install(mut self, source: &str) -> AmbassadorSpec {
        self.install_script = Some(source.to_owned());
        self
    }
}

/// What a hosting site records about a guest Ambassador.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestInfo {
    /// Site of the origin APO.
    pub origin_node: NodeId,
    /// Identity of the origin APO.
    pub origin_apo: ObjectId,
    /// The APO's registered name at its home site.
    pub apo_name: String,
    /// Public methods that did not migrate and are relayed to the origin.
    pub remote_methods: Vec<String>,
}

/// Instantiates an Ambassador for `apo` according to `spec`.
///
/// Returns the Ambassador object plus the list of the APO's public methods
/// that did **not** migrate (the relay set). The Ambassador's `origin`
/// principal is the APO — the host IOO can neither read its meta-methods
/// nor mutate it, while the remote APO can (the encapsulation/security
/// duality of §5).
///
/// # Errors
///
/// [`HadasError::Model`] when a named method/data item does not exist or
/// is not mobile; [`HadasError::AdmissionRefused`] when the process-wide
/// default admission policy is strict and a copied body fails static
/// analysis against the ambassador.
pub fn instantiate_ambassador(
    apo: &MromObject,
    apo_name: &str,
    origin_node: NodeId,
    spec: &AmbassadorSpec,
    ids: &mut IdGenerator,
) -> Result<(MromObject, Vec<String>), HadasError> {
    instantiate_ambassador_with_policy(
        apo,
        apo_name,
        origin_node,
        spec,
        ids,
        mrom_core::default_admission_policy(),
    )
}

/// [`instantiate_ambassador`] under an explicit [`AdmissionPolicy`]: the
/// exporting site verifies the ambassador it is about to ship — methods
/// sliced out of the APO may reference data or peers that did not travel
/// with them, and `Strict` refuses to ship such an ambassador.
///
/// # Errors
///
/// As [`instantiate_ambassador`]; admission failures surface as
/// [`HadasError::AdmissionRefused`] naming `origin_node`.
pub fn instantiate_ambassador_with_policy(
    apo: &MromObject,
    apo_name: &str,
    origin_node: NodeId,
    spec: &AmbassadorSpec,
    ids: &mut IdGenerator,
    policy: AdmissionPolicy,
) -> Result<(MromObject, Vec<String>), HadasError> {
    instantiate_ambassador_as(apo, apo_name, origin_node, spec, ids.next_id(), policy)
}

/// [`instantiate_ambassador_with_policy`] with a pre-minted identity (the
/// shared-runtime path, where ids are minted through `&self`).
///
/// # Errors
///
/// As [`instantiate_ambassador`].
pub fn instantiate_ambassador_as(
    apo: &MromObject,
    apo_name: &str,
    origin_node: NodeId,
    spec: &AmbassadorSpec,
    id: ObjectId,
    policy: AdmissionPolicy,
) -> Result<(MromObject, Vec<String>), HadasError> {
    let apo_id = apo.id();
    let mut builder = ObjectBuilder::new(id)
        .class(&format!("ambassador:{}", apo.class_name()))
        .origin(apo_id)
        // Structural mutation is reserved for the origin APO.
        .meta_acl(Acl::Origin)
        .fixed_data(
            "origin_ref",
            DataItem::public(Value::ObjectRef(apo_id)).with_write_acl(Acl::Nobody),
        )
        .fixed_data(
            "origin_site",
            DataItem::public(Value::Int(origin_node.0 as i64)).with_write_acl(Acl::Nobody),
        )
        .fixed_data(
            "apo_name",
            DataItem::public(Value::from(apo_name)).with_write_acl(Acl::Nobody),
        );

    // The mutable installation state lives in the extensible section: the
    // ambassador itself (and its origin) manage it.
    builder = builder
        .ext_data("installed", DataItem::public(Value::Bool(false)))
        .ext_data("install_context", DataItem::public(Value::Null));

    // Copy exported methods with their full definitions (pre/post, ACLs).
    for name in &spec.exported_methods {
        let desc = apo
            .method_descriptor(apo_id, name)
            .map_err(HadasError::Model)?;
        let method = Method::from_descriptor(&desc).map_err(HadasError::Model)?;
        if !method.is_mobile() {
            return Err(HadasError::Model(MromError::NotMobile {
                object: apo_id,
                item: name.clone(),
            }));
        }
        builder = builder.ext_method(name, method);
    }

    // Snapshot copied data.
    for name in &spec.copied_data {
        let value = apo.read_data(apo_id, name).map_err(HadasError::Model)?;
        builder = builder.ext_data(name, DataItem::public(value));
    }

    // The install method.
    let install_src = spec.install_script.as_deref().unwrap_or(DEFAULT_INSTALL);
    let install =
        Method::public(mrom_core::MethodBody::script(install_src).map_err(HadasError::Model)?);
    builder = builder.ext_method("install", install);

    let ambassador = builder.build();

    match policy {
        AdmissionPolicy::Off => {}
        AdmissionPolicy::Warn => {
            let _ = ambassador.analyze();
        }
        AdmissionPolicy::Strict => {
            let diagnostics = ambassador.analyze();
            if diagnostics.iter().any(|d| d.severity == Severity::Error) {
                return Err(HadasError::AdmissionRefused {
                    at: origin_node,
                    rejection: MromError::AdmissionRejected {
                        object: ambassador.id(),
                        context: "instantiate_ambassador".to_owned(),
                        diagnostics,
                    },
                });
            }
        }
    }

    // The relay set: the APO's publicly invocable methods that did not
    // migrate (meta-methods excluded — they must never be relayed to the
    // origin on a stranger's behalf).
    let exported: Vec<&str> = spec.exported_methods.iter().map(String::as_str).collect();
    // An arbitrary stranger principal for the public view: derived from the
    // ambassador's identity with flipped entropy, so it can collide with no
    // real object (every hosted object has a distinct (node, seq) pair).
    let stranger = ObjectId::from_parts(id.node(), id.seq(), !id.entropy());
    let remote_methods: Vec<String> = apo
        .list_methods(stranger)
        .into_iter()
        .map(|(n, _)| n)
        .filter(|n| {
            !exported.contains(&n.as_str()) && mrom_core::MetaOp::from_method_name(n).is_none()
        })
        .collect();

    Ok((ambassador, remote_methods))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_core::{invoke, ClassSpec, MethodBody, NoWorld};
    use mrom_value::NodeId;

    fn gen() -> IdGenerator {
        IdGenerator::new(NodeId(40))
    }

    fn sample_apo(ids: &mut IdGenerator) -> MromObject {
        ClassSpec::new("db")
            .fixed_data("rows", DataItem::public(Value::Int(100)))
            .fixed_method(
                "query",
                Method::public(MethodBody::script("return self.get(\"rows\");").unwrap()),
            )
            .fixed_method(
                "stats",
                Method::public(MethodBody::script("return \"ok\";").unwrap()),
            )
            .instantiate(ids)
    }

    #[test]
    fn exported_methods_run_locally_in_the_ambassador() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let spec = AmbassadorSpec::relay_only()
            .with_methods(["query"])
            .with_data(["rows"]);
        let (mut amb, remote) =
            instantiate_ambassador(&apo, "db", NodeId(40), &spec, &mut ids).unwrap();
        assert_eq!(amb.origin(), apo.id());
        assert_eq!(remote, vec!["stats".to_owned()]);
        let mut world = NoWorld;
        let caller = ids.next_id();
        assert_eq!(
            invoke(&mut amb, &mut world, caller, "query", &[]).unwrap(),
            Value::Int(100)
        );
    }

    #[test]
    fn install_records_context() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let (mut amb, _) = instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only(),
            &mut ids,
        )
        .unwrap();
        let mut world = NoWorld;
        let host = ids.next_id();
        let ctx = Value::map([("host_site", Value::Int(9))]);
        assert_eq!(
            invoke(
                &mut amb,
                &mut world,
                host,
                "install",
                std::slice::from_ref(&ctx)
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(amb.read_data(host, "installed").unwrap(), Value::Bool(true));
        assert_eq!(amb.read_data(host, "install_context").unwrap(), ctx);
    }

    #[test]
    fn host_cannot_mutate_but_origin_can() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let (mut amb, _) = instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_methods(["query"]),
            &mut ids,
        )
        .unwrap();
        let host = ids.next_id();
        // Host IOO: no structural access.
        assert!(amb.add_data(host, "spy", Value::Null).is_err());
        assert!(amb
            .set_method(
                host,
                "query",
                &Value::map([("body", Value::from("return 0;"))])
            )
            .is_err());
        // The origin APO: full control, remotely.
        let origin = apo.id();
        amb.set_method(
            origin,
            "query",
            &Value::map([("body", Value::from("return \"updated\";"))]),
        )
        .unwrap();
        let mut world = NoWorld;
        assert_eq!(
            invoke(&mut amb, &mut world, host, "query", &[]).unwrap(),
            Value::from("updated")
        );
    }

    #[test]
    fn ambassadors_are_mobile_by_construction() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let (amb, _) = instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_methods(["query", "stats"]),
            &mut ids,
        )
        .unwrap();
        // The origin can export it (the meta principal).
        let image = amb.migration_image(apo.id()).unwrap();
        let back = MromObject::from_image(&image).unwrap();
        assert_eq!(back, amb);
    }

    #[test]
    fn unknown_exports_fail() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        assert!(instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_methods(["ghost"]),
            &mut ids,
        )
        .is_err());
        assert!(instantiate_ambassador(
            &apo,
            "db",
            NodeId(40),
            &AmbassadorSpec::relay_only().with_data(["ghost"]),
            &mut ids,
        )
        .is_err());
    }

    #[test]
    fn custom_install_scripts() {
        let mut ids = gen();
        let apo = sample_apo(&mut ids);
        let spec = AmbassadorSpec::relay_only()
            .with_install("param ctx; self.set(\"installed\", true); return \"custom\";");
        let (mut amb, _) = instantiate_ambassador(&apo, "db", NodeId(40), &spec, &mut ids).unwrap();
        let mut world = NoWorld;
        let host = ids.next_id();
        assert_eq!(
            invoke(&mut amb, &mut world, host, "install", &[Value::Null]).unwrap(),
            Value::from("custom")
        );
    }
}
