//! The InterOperability Object (IOO) — Figure 2's per-site root object.
//!
//! The IOO is itself an MROM object: its *Home* and *Vicinity* components
//! are data items holding name→reference maps, and *Interop* programs are
//! methods added to its extensible section at runtime. The federation
//! driver updates Home/Vicinity with the system principal as the protocol
//! handlers run.

use mrom_core::{Acl, DataItem, Method, MethodBody, MromObject, ObjectBuilder};
use mrom_value::{IdGenerator, NodeId, ObjectId, Value};

/// Builds a fresh IOO for `node`.
///
/// Layout:
///
/// * `site` — the node id (fixed, public read);
/// * `home` — map of APO name → object ref (fixed item, mutable value);
/// * `vicinity` — map of remote node id (as string) → IOO-Ambassador
///   object ref;
/// * `guests` — map of hosted APO-Ambassador id → origin APO ref;
/// * `describe_site` — a fixed introspection method any newcomer may call.
///
/// Interop programs (coordination level) are added later via `addMethod`.
pub fn build_ioo(ids: &mut IdGenerator, node: NodeId) -> MromObject {
    build_ioo_as(ids.next_id(), node)
}

/// [`build_ioo`] with a pre-minted identity (the shared-runtime path,
/// where ids are minted through `&self`).
pub fn build_ioo_as(id: ObjectId, node: NodeId) -> MromObject {
    let system_writable = Acl::only([ObjectId::SYSTEM]);
    ObjectBuilder::new(id)
        .class("ioo")
        .meta_acl(Acl::only([ObjectId::SYSTEM]))
        .fixed_data(
            "site",
            DataItem::public(Value::Int(node.0 as i64)).with_write_acl(Acl::Nobody),
        )
        .fixed_data(
            "home",
            DataItem::public(Value::map::<String, _>([])).with_write_acl(system_writable.clone()),
        )
        .fixed_data(
            "vicinity",
            DataItem::public(Value::map::<String, _>([])).with_write_acl(system_writable.clone()),
        )
        .fixed_data(
            "guests",
            DataItem::public(Value::map::<String, _>([])).with_write_acl(system_writable),
        )
        .fixed_method(
            "describe_site",
            Method::public(
                MethodBody::script(
                    r#"
                    return {
                        "site": self.get("site"),
                        "home": keys(self.get("home")),
                        "vicinity": keys(self.get("vicinity")),
                        "guests": len(self.get("guests"))
                    };
                    "#,
                )
                .expect("describe_site script parses"),
            ),
        )
        .build()
}

/// Inserts `name → reference` into one of the IOO's map items with the
/// system principal.
pub(crate) fn map_insert(ioo: &mut MromObject, item: &str, key: &str, reference: Value) {
    let mut map = ioo
        .read_data(ObjectId::SYSTEM, item)
        .expect("ioo map item exists");
    if let Some(m) = map.as_map_mut() {
        m.insert(key.to_owned(), reference);
    }
    ioo.write_data(ObjectId::SYSTEM, item, map)
        .expect("system may write ioo maps");
}

/// Removes `key` from one of the IOO's map items.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn map_remove(ioo: &mut MromObject, item: &str, key: &str) {
    let mut map = ioo
        .read_data(ObjectId::SYSTEM, item)
        .expect("ioo map item exists");
    if let Some(m) = map.as_map_mut() {
        m.remove(key);
    }
    ioo.write_data(ObjectId::SYSTEM, item, map)
        .expect("system may write ioo maps");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_core::{invoke, NoWorld};

    #[test]
    fn ioo_exposes_its_components() {
        let mut ids = IdGenerator::new(NodeId(50));
        let mut ioo = build_ioo(&mut ids, NodeId(50));
        let newcomer = ids.next_id();
        let mut world = NoWorld;
        let desc = invoke(&mut ioo, &mut world, newcomer, "describe_site", &[]).unwrap();
        let m = desc.as_map().unwrap();
        assert_eq!(m["site"], Value::Int(50));
        assert_eq!(m["home"], Value::list([]));
        assert_eq!(m["guests"], Value::Int(0));
    }

    #[test]
    fn system_updates_maps_strangers_cannot() {
        let mut ids = IdGenerator::new(NodeId(51));
        let mut ioo = build_ioo(&mut ids, NodeId(51));
        let apo_ref = Value::ObjectRef(ids.next_id());
        map_insert(&mut ioo, "home", "db", apo_ref.clone());
        let stranger = ids.next_id();
        let home = ioo.read_data(stranger, "home").unwrap();
        assert_eq!(home.as_map().unwrap()["db"], apo_ref);
        // Strangers cannot write the maps.
        assert!(ioo
            .write_data(stranger, "home", Value::map::<String, _>([]))
            .is_err());
        map_remove(&mut ioo, "home", "db");
        let home = ioo.read_data(stranger, "home").unwrap();
        assert!(home.as_map().unwrap().is_empty());
    }

    #[test]
    fn interop_programs_attach_at_runtime() {
        let mut ids = IdGenerator::new(NodeId(52));
        let mut ioo = build_ioo(&mut ids, NodeId(52));
        // The federation (system principal) installs a coordination
        // program into the extensible section.
        ioo.add_method(
            ObjectId::SYSTEM,
            "count_partners",
            Method::public(MethodBody::script("return len(self.get(\"vicinity\"));").unwrap()),
        )
        .unwrap();
        map_insert(&mut ioo, "vicinity", "n60", Value::ObjectRef(ids.next_id()));
        let mut world = NoWorld;
        let caller = ids.next_id();
        assert_eq!(
            invoke(&mut ioo, &mut world, caller, "count_partners", &[]).unwrap(),
            Value::Int(1)
        );
    }
}
