//! The self-tuning **Advisor**: reflection-driven placement policy.
//!
//! §6 of the paper sketches the payoff of a reflective object model:
//! because the system can *observe itself* (the `getTelemetry` surface,
//! the effect system, the network accounting), a policy layer can steer
//! placement without cooperation from application code. The Advisor is
//! that layer. Once per virtual-time epoch a site (or the fleet driver
//! acting for all sites) feeds it:
//!
//! * a [`TelemetrySnapshot`] — hot-object rankings, the per-object
//!   remote-caller histogram (recorded when the window is configured
//!   with [`WindowConfig::with_callers`](mrom_obs::WindowConfig)),
//!   the site-to-site call matrix, and per-link delivery windows;
//! * [`NetStats`] — the simulator's cumulative per-link accounting,
//!   the fallback degradation signal when no window is configured;
//! * a candidate table derived from the effect system: for every
//!   advisable object, where it lives, whether **every** method is
//!   migration-safe, how idempotent-heavy its method set is, and
//!   whether it is currently checked out (Busy) or Poisoned.
//!
//! It answers with a list of [`AdvisorDecision`]s — migrate an object
//! toward its dominant remote caller, refresh an ambassador across a
//! degraded link, shed load at an overloaded site — which the caller
//! executes through the ordinary federation machinery
//! ([`Federation::dispatch_object`](crate::Federation::dispatch_object),
//! [`Federation::import_apo`](crate::Federation::import_apo), admission
//! policy). The Advisor itself never touches a socket or an object:
//! [`Advisor::decide`] is a **pure function** of `(snapshot, stats,
//! candidates, config, accumulated state)` — no randomness, no clocks,
//! no I/O — so the same inputs always yield byte-identical decision
//! lists, which is what the E19 convergence battery sweeps.
//!
//! ## Hysteresis
//!
//! Naive "chase the hottest caller" policies thrash: two sites that
//! alternate as dominant caller would bounce the object every epoch,
//! paying migration latency forever. Three mechanisms damp this:
//!
//! * **dwell** — an object that moved less than
//!   [`dwell_epochs`](AdvisorConfig::dwell_epochs) ago is not moved
//!   again; the suppressed move counts as a *thrash abort*;
//! * **per-epoch budget** — at most
//!   [`max_migrations_per_epoch`](AdvisorConfig::max_migrations_per_epoch)
//!   moves per pass, highest-evidence first;
//! * **lifetime budget** — at most
//!   [`max_total_migrations`](AdvisorConfig::max_total_migrations)
//!   moves ever, so a pathological workload converges to silence
//!   instead of oscillation.
//!
//! Evidence is *pending-accumulated*: caller counts observed since the
//! object last moved. Moving an object clears its ledger, so the next
//! move must be justified by traffic observed **after** the move —
//! stale pre-move affinity cannot ping-pong the object back.

use std::collections::BTreeMap;

use mrom_net::NetStats;
use mrom_obs::TelemetrySnapshot;
use mrom_value::{NodeId, ObjectId};

/// Tuning knobs for the [`Advisor`]. All-integer and `Copy`, so a
/// config embeds in byte-deterministic reports and compares exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvisorConfig {
    /// Master switch: a disabled Advisor decides nothing, ever. The
    /// fleet harness keeps this `false` by default so advisor-off runs
    /// reproduce pre-advisor artifacts byte-for-byte.
    pub enabled: bool,
    /// Virtual microseconds between advisory passes.
    pub epoch_us: u64,
    /// How many of the hottest objects each pass examines.
    pub hot_k: usize,
    /// Minimum accumulated remote-caller evidence (requests since the
    /// object last moved) before a migration is even considered.
    pub min_invocations: u64,
    /// The dominant caller must account for at least this many permille
    /// of the object's accumulated remote evidence (e.g. 500 = a strict
    /// majority) for a move toward it to be proposed.
    pub dominance_permille: u64,
    /// Epochs an object must dwell at a site before moving again.
    /// Suppressed moves count as thrash aborts.
    pub dwell_epochs: u64,
    /// Migration budget per advisory pass; excess proposals are
    /// suppressed (highest evidence first survives) and counted as
    /// thrash aborts.
    pub max_migrations_per_epoch: u64,
    /// Lifetime migration budget across the whole run.
    pub max_total_migrations: u64,
    /// A link whose windowed delivery ratio falls below this many
    /// permille triggers an ambassador refresh across it.
    pub degraded_delivery_permille: u64,
    /// Links carrying fewer messages than this are never branded
    /// degraded (a single early drop is not a signal).
    pub min_link_attempts: u64,
    /// A site executing more than this many permille of the fleet's
    /// diagonal load is asked to shed (0 disables shedding).
    pub shed_load_permille: u64,
}

impl AdvisorConfig {
    /// The do-nothing config: advisor disabled, every knob zero. This
    /// is the fleet default — advisor-off runs must be byte-identical
    /// to builds that predate the Advisor entirely.
    #[must_use]
    pub fn off() -> AdvisorConfig {
        AdvisorConfig {
            enabled: false,
            epoch_us: 0,
            hot_k: 0,
            min_invocations: 0,
            dominance_permille: 0,
            dwell_epochs: 0,
            max_migrations_per_epoch: 0,
            max_total_migrations: 0,
            degraded_delivery_permille: 0,
            min_link_attempts: 0,
            shed_load_permille: 0,
        }
    }

    /// The standard tuning the E19 battery sweeps: half-second epochs,
    /// majority dominance, two-epoch dwell, eight moves per epoch.
    #[must_use]
    pub fn standard() -> AdvisorConfig {
        AdvisorConfig {
            enabled: true,
            epoch_us: 500_000,
            hot_k: 64,
            min_invocations: 2,
            dominance_permille: 500,
            dwell_epochs: 2,
            max_migrations_per_epoch: 8,
            max_total_migrations: 256,
            degraded_delivery_permille: 900,
            min_link_attempts: 20,
            shed_load_permille: 0,
        }
    }
}

/// What the effect system and the runtime know about one advisable
/// object — the per-object row of the [`AdvisorInput`] candidate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Site currently hosting the object.
    pub host: NodeId,
    /// `true` iff **every** method's [`EffectSignature`] is
    /// migration-safe (no site-local world calls anywhere). Objects
    /// failing this are never named in a decision: `Strict` dispatch
    /// would refuse them and the attempt would burn an epoch.
    ///
    /// [`EffectSignature`]: mrom_core::EffectSignature
    pub migration_safe: bool,
    /// Permille of the object's methods whose signatures are
    /// idempotent. Under a tight migration budget, idempotent-heavy
    /// objects move first: they retry safely mid-flight, so moving
    /// them is cheapest if the move races an invocation.
    pub idempotent_permille: u64,
    /// `true` when the object is checked out (Busy) or Poisoned right
    /// now; such objects are never named in a decision.
    pub busy: bool,
}

/// One epoch's worth of observations handed to [`Advisor::decide`].
#[derive(Debug, Clone)]
pub struct AdvisorInput<'a> {
    /// Monotone advisory-epoch counter (not virtual time; the caller
    /// ticks it once per pass).
    pub epoch: u64,
    /// The fleet-level telemetry fold for this epoch.
    pub telemetry: &'a TelemetrySnapshot,
    /// Cumulative network accounting (degradation fallback when the
    /// snapshot carries no link windows).
    pub stats: &'a NetStats,
    /// Advisable objects, keyed by identity. Objects absent from this
    /// table are invisible to the Advisor regardless of how hot the
    /// telemetry says they are.
    pub candidates: BTreeMap<ObjectId, Candidate>,
}

/// One placement action the Advisor recommends. The Advisor never
/// executes anything itself; the driver maps each decision onto the
/// ordinary federation machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdvisorDecision {
    /// Move `object` from `from` to `to` (its dominant remote caller)
    /// via `dispatch_object`, linking the pair first if needed.
    Migrate {
        /// Object to move.
        object: ObjectId,
        /// Site currently hosting it.
        from: NodeId,
        /// Destination: the dominant remote caller.
        to: NodeId,
    },
    /// Deploy or refresh an ambassador of `origin`'s APO at `host`,
    /// because the `host → origin` link is degraded: calls served by a
    /// local ambassador stop crossing the lossy link.
    RefreshAmbassador {
        /// Site whose APO the ambassador represents.
        origin: NodeId,
        /// Site that should host the (refreshed) ambassador.
        host: NodeId,
    },
    /// `site` is executing an outsized share of fleet load; the driver
    /// should tighten its admission policy until the share recedes.
    Shed {
        /// The overloaded site.
        site: NodeId,
    },
}

/// The result of one advisory pass: the decisions plus how many
/// candidate moves hysteresis suppressed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdvisorPass {
    /// Epoch this pass was computed for (echoed from the input).
    pub epoch: u64,
    /// Ordered decisions: migrations first (idempotent-heavy before
    /// the rest, then by evidence), then ambassador refreshes, then
    /// sheds. The order is total and deterministic.
    pub decisions: Vec<AdvisorDecision>,
    /// Candidate migrations suppressed this pass by dwell time or by
    /// the per-epoch / lifetime budgets — the no-thrash counter the
    /// fleet report surfaces.
    pub thrash_aborts: u64,
}

impl AdvisorPass {
    /// How many of this pass's decisions are migrations.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.decisions
            .iter()
            .filter(|d| matches!(d, AdvisorDecision::Migrate { .. }))
            .count() as u64
    }
}

/// A migration the evidence supports, before hysteresis is applied.
#[derive(Debug, Clone, Copy)]
struct Proposal {
    object: ObjectId,
    from: NodeId,
    to: NodeId,
    weight: u64,
    idempotent_permille: u64,
}

/// Per-site self-tuning policy. Holds only *derived* bookkeeping
/// (evidence ledgers, dwell stamps, budget counters); all observation
/// arrives through [`AdvisorInput`] and all action leaves as
/// [`AdvisorDecision`]s, so the Advisor composes with any driver —
/// the fleet harness, a live federation, or a unit test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Advisor {
    config: AdvisorConfig,
    /// Cumulative remote-caller counters as of the last committed pass,
    /// per object — the baseline for per-epoch deltas.
    prev: BTreeMap<ObjectId, BTreeMap<NodeId, u64>>,
    /// Evidence accumulated since each object last migrated (cleared on
    /// move, so stale affinity cannot justify a bounce-back).
    pending: BTreeMap<ObjectId, BTreeMap<NodeId, u64>>,
    /// Epoch each object last migrated in (absent = never moved).
    last_move: BTreeMap<ObjectId, u64>,
    total_migrations: u64,
    thrash_aborts: u64,
}

impl Advisor {
    /// A fresh Advisor with no accumulated evidence.
    #[must_use]
    pub fn new(config: AdvisorConfig) -> Advisor {
        Advisor {
            config,
            prev: BTreeMap::new(),
            pending: BTreeMap::new(),
            last_move: BTreeMap::new(),
            total_migrations: 0,
            thrash_aborts: 0,
        }
    }

    /// The config this Advisor was built with.
    #[must_use]
    pub fn config(&self) -> AdvisorConfig {
        self.config
    }

    /// Migrations committed across the Advisor's lifetime.
    #[must_use]
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Thrash aborts committed across the Advisor's lifetime.
    #[must_use]
    pub fn total_thrash_aborts(&self) -> u64 {
        self.thrash_aborts
    }

    /// Remote-caller evidence for `object` as of this pass: everything
    /// pending since its last move, plus the delta between the
    /// snapshot's cumulative counters and the last committed baseline.
    fn evidence(
        &self,
        object: ObjectId,
        cumulative: &BTreeMap<NodeId, u64>,
    ) -> BTreeMap<NodeId, u64> {
        let mut ev = self.pending.get(&object).cloned().unwrap_or_default();
        let baseline = self.prev.get(&object);
        for (site, n) in cumulative {
            let before = baseline.and_then(|m| m.get(site)).copied().unwrap_or(0);
            let delta = n.saturating_sub(before);
            if delta > 0 {
                *ev.entry(*site).or_insert(0) += delta;
            }
        }
        ev
    }

    /// Compute one advisory pass. Pure: no mutation, no randomness, no
    /// clock reads — calling it any number of times with equal inputs
    /// yields equal passes (the property test shuffles 1000 invocations
    /// to pin this down). Apply the result with [`Advisor::commit`].
    #[must_use]
    pub fn decide(&self, input: &AdvisorInput<'_>) -> AdvisorPass {
        let cfg = &self.config;
        let mut pass = AdvisorPass {
            epoch: input.epoch,
            ..AdvisorPass::default()
        };
        if !cfg.enabled {
            return pass;
        }

        // Phase 1 — migrations toward dominant remote callers.
        let mut proposals: Vec<Proposal> = Vec::new();
        for (object, profile) in input.telemetry.hot_objects(cfg.hot_k) {
            let Some(cand) = input.candidates.get(&object) else {
                continue;
            };
            if !cand.migration_safe || cand.busy {
                continue;
            }
            let evidence = self.evidence(object, &profile.remote_callers);
            let total: u64 = evidence.values().sum();
            if total < cfg.min_invocations.max(1) {
                continue;
            }
            // Dominant caller, ties toward the lower site id (total order).
            let Some((site, weight)) = evidence
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(s, n)| (*s, *n))
            else {
                continue;
            };
            if site == cand.host || weight.saturating_mul(1000) < cfg.dominance_permille * total {
                continue;
            }
            proposals.push(Proposal {
                object,
                from: cand.host,
                to: site,
                weight: total,
                idempotent_permille: cand.idempotent_permille,
            });
        }
        // Idempotent-heavy objects first (cheapest to move mid-flight),
        // then by evidence weight, then object identity for totality.
        proposals.sort_by(|a, b| {
            b.idempotent_permille
                .cmp(&a.idempotent_permille)
                .then(b.weight.cmp(&a.weight))
                .then(a.object.cmp(&b.object))
        });
        let budget = cfg.max_migrations_per_epoch.min(
            cfg.max_total_migrations
                .saturating_sub(self.total_migrations),
        );
        let mut granted = 0u64;
        for p in proposals {
            let dwelling = self
                .last_move
                .get(&p.object)
                .is_some_and(|moved| input.epoch.saturating_sub(*moved) < cfg.dwell_epochs);
            if dwelling || granted >= budget {
                pass.thrash_aborts += 1;
                continue;
            }
            granted += 1;
            pass.decisions.push(AdvisorDecision::Migrate {
                object: p.object,
                from: p.from,
                to: p.to,
            });
        }

        // Phase 2 — ambassador refreshes across degraded links. Prefer
        // the windowed signal; fall back to cumulative accounting when
        // the snapshot carries no link windows.
        let degraded = if input.telemetry.links.is_empty() {
            input
                .stats
                .degraded_links(cfg.degraded_delivery_permille, cfg.min_link_attempts)
        } else {
            input
                .telemetry
                .degraded_links(cfg.degraded_delivery_permille, cfg.min_link_attempts)
        };
        for ((src, dst), _ratio) in degraded {
            pass.decisions.push(AdvisorDecision::RefreshAmbassador {
                origin: dst,
                host: src,
            });
        }

        // Phase 3 — shed overloaded sites (diagonal of the call matrix).
        if cfg.shed_load_permille > 0 {
            let diagonal: Vec<(NodeId, u64)> = input
                .telemetry
                .calls
                .iter()
                .filter(|((s, d), _)| s == d)
                .map(|((s, _), n)| (*s, *n))
                .collect();
            let total: u64 = diagonal.iter().map(|(_, n)| n).sum();
            if diagonal.len() > 1 && total > 0 {
                for (site, load) in diagonal {
                    if load.saturating_mul(1000) > cfg.shed_load_permille * total {
                        pass.decisions.push(AdvisorDecision::Shed { site });
                    }
                }
            }
        }
        pass
    }

    /// Fold a decided pass back into the Advisor's state: advance the
    /// cumulative baselines, accumulate pending evidence for objects
    /// that did not move, clear ledgers and stamp dwell times for
    /// objects that did, and charge the budgets. Call exactly once per
    /// [`Advisor::decide`], with the same input.
    pub fn commit(&mut self, input: &AdvisorInput<'_>, pass: &AdvisorPass) {
        let moved: Vec<ObjectId> = pass
            .decisions
            .iter()
            .filter_map(|d| match d {
                AdvisorDecision::Migrate { object, .. } => Some(*object),
                _ => None,
            })
            .collect();
        for (object, profile) in &input.telemetry.objects {
            let ev = self.evidence(*object, &profile.remote_callers);
            if !ev.is_empty() {
                self.pending.insert(*object, ev);
            }
            if !profile.remote_callers.is_empty() {
                self.prev.insert(*object, profile.remote_callers.clone());
            }
        }
        for object in moved {
            self.pending.remove(&object);
            self.last_move.insert(object, pass.epoch);
            self.total_migrations += 1;
        }
        self.thrash_aborts += pass.thrash_aborts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_obs::ObjectProfile;

    fn oid(n: u32) -> ObjectId {
        ObjectId::from_parts(NodeId(9), n, 0)
    }

    fn snapshot(entries: &[(ObjectId, &[(NodeId, u64)])]) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        for (id, callers) in entries {
            let mut p = ObjectProfile::default();
            for (site, n) in *callers {
                p.remote_callers.insert(*site, *n);
                p.invocations += n;
            }
            snap.objects.insert(*id, p);
        }
        snap
    }

    fn candidate(host: NodeId) -> Candidate {
        Candidate {
            host,
            migration_safe: true,
            idempotent_permille: 1000,
            busy: false,
        }
    }

    #[test]
    fn disabled_advisor_decides_nothing() {
        let adv = Advisor::new(AdvisorConfig::off());
        let snap = snapshot(&[(oid(1), &[(NodeId(2), 100)])]);
        let stats = NetStats::default();
        let input = AdvisorInput {
            epoch: 0,
            telemetry: &snap,
            stats: &stats,
            candidates: BTreeMap::from([(oid(1), candidate(NodeId(1)))]),
        };
        assert_eq!(adv.decide(&input), AdvisorPass::default());
    }

    #[test]
    fn migrates_toward_dominant_caller() {
        let adv = Advisor::new(AdvisorConfig::standard());
        let snap = snapshot(&[(oid(1), &[(NodeId(2), 9), (NodeId(3), 1)])]);
        let stats = NetStats::default();
        let input = AdvisorInput {
            epoch: 0,
            telemetry: &snap,
            stats: &stats,
            candidates: BTreeMap::from([(oid(1), candidate(NodeId(1)))]),
        };
        let pass = adv.decide(&input);
        assert_eq!(
            pass.decisions,
            vec![AdvisorDecision::Migrate {
                object: oid(1),
                from: NodeId(1),
                to: NodeId(2),
            }]
        );
        assert_eq!(pass.thrash_aborts, 0);
    }

    #[test]
    fn unsafe_and_busy_objects_are_never_named() {
        let adv = Advisor::new(AdvisorConfig::standard());
        let snap = snapshot(&[(oid(1), &[(NodeId(2), 50)]), (oid(2), &[(NodeId(2), 50)])]);
        let stats = NetStats::default();
        let mut unsafe_cand = candidate(NodeId(1));
        unsafe_cand.migration_safe = false;
        let mut busy_cand = candidate(NodeId(1));
        busy_cand.busy = true;
        let input = AdvisorInput {
            epoch: 0,
            telemetry: &snap,
            stats: &stats,
            candidates: BTreeMap::from([(oid(1), unsafe_cand), (oid(2), busy_cand)]),
        };
        assert!(adv.decide(&input).decisions.is_empty());
    }

    #[test]
    fn dwell_suppresses_bounce_back_and_counts_thrash() {
        let mut adv = Advisor::new(AdvisorConfig::standard());
        let stats = NetStats::default();
        // Epoch 0: site 2 dominates → migrate 1 → 2.
        let snap0 = snapshot(&[(oid(1), &[(NodeId(2), 10)])]);
        let input0 = AdvisorInput {
            epoch: 0,
            telemetry: &snap0,
            stats: &stats,
            candidates: BTreeMap::from([(oid(1), candidate(NodeId(1)))]),
        };
        let pass0 = adv.decide(&input0);
        assert_eq!(pass0.migrations(), 1);
        adv.commit(&input0, &pass0);
        // Epoch 1: site 1 now dominates the *fresh* evidence, but the
        // object moved last epoch — dwell suppresses the bounce.
        let snap1 = snapshot(&[(oid(1), &[(NodeId(1), 30), (NodeId(2), 10)])]);
        let input1 = AdvisorInput {
            epoch: 1,
            telemetry: &snap1,
            stats: &stats,
            candidates: BTreeMap::from([(oid(1), candidate(NodeId(2)))]),
        };
        let pass1 = adv.decide(&input1);
        assert!(pass1.decisions.is_empty());
        assert_eq!(pass1.thrash_aborts, 1);
        adv.commit(&input1, &pass1);
        assert_eq!(adv.total_migrations(), 1);
        assert_eq!(adv.total_thrash_aborts(), 1);
    }

    #[test]
    fn evidence_clears_on_move_so_stale_affinity_cannot_bounce() {
        let mut adv = Advisor::new(AdvisorConfig {
            dwell_epochs: 0,
            ..AdvisorConfig::standard()
        });
        let stats = NetStats::default();
        let snap0 = snapshot(&[(oid(1), &[(NodeId(2), 10)])]);
        let input0 = AdvisorInput {
            epoch: 0,
            telemetry: &snap0,
            stats: &stats,
            candidates: BTreeMap::from([(oid(1), candidate(NodeId(1)))]),
        };
        let pass0 = adv.decide(&input0);
        adv.commit(&input0, &pass0);
        // Same cumulative counters next epoch: no *new* evidence, so
        // even with dwell disabled nothing justifies another move.
        let input1 = AdvisorInput {
            epoch: 1,
            telemetry: &snap0,
            stats: &stats,
            candidates: BTreeMap::from([(oid(1), candidate(NodeId(2)))]),
        };
        assert!(adv.decide(&input1).decisions.is_empty());
    }

    #[test]
    fn budgets_cap_migrations_per_epoch_and_lifetime() {
        let cfg = AdvisorConfig {
            max_migrations_per_epoch: 1,
            max_total_migrations: 1,
            dwell_epochs: 0,
            ..AdvisorConfig::standard()
        };
        let mut adv = Advisor::new(cfg);
        let stats = NetStats::default();
        let snap = snapshot(&[(oid(1), &[(NodeId(2), 10)]), (oid(2), &[(NodeId(3), 10)])]);
        let input = AdvisorInput {
            epoch: 0,
            telemetry: &snap,
            stats: &stats,
            candidates: BTreeMap::from([
                (oid(1), candidate(NodeId(1))),
                (oid(2), candidate(NodeId(1))),
            ]),
        };
        let pass = adv.decide(&input);
        assert_eq!(pass.migrations(), 1);
        assert_eq!(pass.thrash_aborts, 1);
        adv.commit(&input, &pass);
        // Lifetime budget exhausted: fresh evidence cannot buy a move.
        let snap2 = snapshot(&[(oid(1), &[(NodeId(2), 20)]), (oid(2), &[(NodeId(3), 20)])]);
        let input2 = AdvisorInput {
            epoch: 1,
            telemetry: &snap2,
            stats: &stats,
            candidates: input.candidates.clone(),
        };
        let pass2 = adv.decide(&input2);
        assert_eq!(pass2.migrations(), 0);
        assert!(pass2.thrash_aborts >= 1);
    }

    #[test]
    fn degraded_links_trigger_ambassador_refresh() {
        let adv = Advisor::new(AdvisorConfig::standard());
        let snap = TelemetrySnapshot::default();
        let mut stats = NetStats::default();
        // 1→2: 20 delivered, 10 dropped → 666‰ < 900‰ threshold.
        stats.per_link.insert((NodeId(1), NodeId(2)), (20, 160));
        stats.per_link_dropped.insert((NodeId(1), NodeId(2)), 10);
        let input = AdvisorInput {
            epoch: 0,
            telemetry: &snap,
            stats: &stats,
            candidates: BTreeMap::new(),
        };
        assert_eq!(
            adv.decide(&input).decisions,
            vec![AdvisorDecision::RefreshAmbassador {
                origin: NodeId(2),
                host: NodeId(1),
            }]
        );
    }

    #[test]
    fn shed_fires_only_on_outsized_diagonal_share() {
        let cfg = AdvisorConfig {
            shed_load_permille: 600,
            ..AdvisorConfig::standard()
        };
        let adv = Advisor::new(cfg);
        let mut snap = TelemetrySnapshot::default();
        snap.calls.insert((NodeId(1), NodeId(1)), 90);
        snap.calls.insert((NodeId(2), NodeId(2)), 10);
        snap.calls.insert((NodeId(1), NodeId(2)), 500); // off-diagonal: ignored
        let stats = NetStats::default();
        let input = AdvisorInput {
            epoch: 0,
            telemetry: &snap,
            stats: &stats,
            candidates: BTreeMap::new(),
        };
        assert_eq!(
            adv.decide(&input).decisions,
            vec![AdvisorDecision::Shed { site: NodeId(1) }]
        );
    }

    #[test]
    fn decide_is_pure_and_repeatable() {
        let adv = Advisor::new(AdvisorConfig::standard());
        let snap = snapshot(&[
            (oid(1), &[(NodeId(2), 9), (NodeId(3), 1)]),
            (oid(2), &[(NodeId(4), 7)]),
        ]);
        let stats = NetStats::default();
        let input = AdvisorInput {
            epoch: 3,
            telemetry: &snap,
            stats: &stats,
            candidates: BTreeMap::from([
                (oid(1), candidate(NodeId(1))),
                (oid(2), candidate(NodeId(1))),
            ]),
        };
        let first = adv.decide(&input);
        for _ in 0..100 {
            assert_eq!(adv.decide(&input), first);
        }
    }
}
