//! # hadas
//!
//! A reproduction of **HADAS** (Heterogeneous, Autonomous, Distributed
//! Abstraction System) — the interoperability framework §5 of the paper
//! builds on top of MROM — running over the deterministic network
//! simulator instead of Java RMI.
//!
//! ## The architecture (Figure 2)
//!
//! Each logical site is an **IOO** (InterOperability Object) holding:
//!
//! * **Home** — APplication Objects (**APO**s) integrated at this site;
//! * **Vicinity** — *IOO Ambassadors* of remote sites a cooperation
//!   agreement exists with;
//! * **Interop** — coordination-level programs.
//!
//! APOs deploy **Ambassadors** into foreign IOO territory: mobile MROM
//! objects owned and maintained by their origin APO (`origin` principal =
//! the APO), carrying a chosen subset of the APO's methods and data. The
//! split between APO and Ambassador is dynamic: methods and data migrate
//! in either direction at runtime via the MROM meta-methods
//! ([`Federation::migrate_method`]), and the origin can rewrite deployed
//! Ambassadors' semantics remotely ([`Federation::push_update`]) — the
//! paper's database-maintenance example.
//!
//! ## Protocol operations
//!
//! * [`Federation::link`] — IOO↔IOO handshake installing an IOO Ambassador
//!   in the requester's Vicinity (prerequisite for everything else);
//! * [`Federation::import_apo`] — Import/Export: the exporting site
//!   verifies access, instantiates an APO Ambassador, ships it as data;
//!   the importing site unpacks it, passes an installation context, and
//!   invokes its `install` method;
//! * [`Federation::remote_invoke`] — invoke a method on a remote object;
//! * [`Federation::call_through_ambassador`] — invoke locally when the
//!   method has migrated, relay to the origin APO otherwise.
//!
//! All cross-site traffic rides [`mrom_net::SimNet`]; every byte is
//! accounted in the simulator's stats, which is what the E6/E7/E9
//! experiments measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
mod ambassador;
pub mod chaos;
mod error;
mod federation;
mod ioo;
mod protocol;
mod retry;
pub mod scenarios;

pub use advisor::{Advisor, AdvisorConfig, AdvisorDecision, AdvisorInput, AdvisorPass, Candidate};
pub use ambassador::{
    capability_card, instantiate_ambassador, instantiate_ambassador_with_policy, AmbassadorSpec,
    GuestInfo,
};
pub use error::HadasError;
pub use federation::{ExportPolicy, Federation, InvokeCall, SiteStats};
pub use ioo::build_ioo;
pub use protocol::{ProtocolMsg, UpdateOp};
pub use retry::RetryPolicy;

/// Crate-local result alias over [`HadasError`].
pub type Result<T> = std::result::Result<T, HadasError>;
