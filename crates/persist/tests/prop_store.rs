//! Model-based property tests: the file store must behave exactly like a
//! simple in-memory map under arbitrary operation sequences, including
//! across reopen (crash/restart) boundaries and compactions.

use std::collections::BTreeMap;

use mrom_persist::{BlobStore, FileStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(String, Vec<u8>),
    Delete(String),
    Reopen,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = "[a-d]{1,2}"; // small key space to force collisions
    prop_oneof![
        4 => (key, prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        2 => key.prop_map(Op::Delete),
        1 => Just(Op::Reopen),
        1 => Just(Op::Compact),
    ]
}

fn fresh_path(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mrom-prop-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(format!("log-{tag}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The file store agrees with a map model under arbitrary op
    /// sequences with interleaved reopens and compactions.
    #[test]
    fn file_store_matches_model(ops in prop::collection::vec(arb_op(), 0..40), tag in any::<u64>()) {
        let path = fresh_path(tag);
        let _ = std::fs::remove_file(&path);
        let mut store = FileStore::open(&path).expect("open");
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(k, v).expect("put");
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    let existed = store.delete(k).expect("delete");
                    prop_assert_eq!(existed, model.remove(k).is_some());
                }
                Op::Reopen => {
                    drop(store);
                    store = FileStore::open(&path).expect("reopen");
                }
                Op::Compact => {
                    store.compact().expect("compact");
                    prop_assert_eq!(store.garbage_bytes(), 0);
                }
            }
            // Full-state agreement after every step.
            prop_assert_eq!(store.keys(), model.keys().cloned().collect::<Vec<_>>());
            for (k, v) in &model {
                let stored = store.get(k).expect("get");
                prop_assert_eq!(stored.as_deref(), Some(v.as_slice()));
            }
        }
        drop(store);
        // One final restart must recover the exact model.
        let store = FileStore::open(&path).expect("final reopen");
        prop_assert_eq!(store.keys(), model.keys().cloned().collect::<Vec<_>>());
        let _ = std::fs::remove_file(&path);
    }

    /// Chopping any number of bytes off the log tail never breaks earlier
    /// records: the store recovers a prefix of the model history.
    #[test]
    fn torn_tails_recover_a_prefix(
        puts in prop::collection::vec((("k[0-9]"), prop::collection::vec(any::<u8>(), 1..32)), 1..10),
        chop in 1usize..40,
        tag in any::<u64>(),
    ) {
        let path = fresh_path(tag.wrapping_add(1));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileStore::open(&path).expect("open");
            for (k, v) in &puts {
                store.put(k, v).expect("put");
            }
        }
        let len = std::fs::metadata(&path).expect("meta").len();
        let new_len = len.saturating_sub(chop as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open for chop");
        f.set_len(new_len).expect("truncate");
        drop(f);

        // Recovery must not panic, and every surviving key maps to a value
        // it held at *some* point in history (prefix consistency).
        let store = FileStore::open(&path).expect("recover");
        for key in store.keys() {
            let got = store.get(&key).expect("get").expect("present");
            let held: Vec<&Vec<u8>> = puts
                .iter()
                .filter(|(k, _)| *k == key)
                .map(|(_, v)| v)
                .collect();
            prop_assert!(
                held.iter().any(|v| **v == got),
                "key {} recovered to a value never written",
                key
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
