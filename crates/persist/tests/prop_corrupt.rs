//! Depot corruption properties: a damaged image must surface as a
//! structured error and never panic, and `restore_all` must quarantine
//! the damaged entries while every healthy object still bootstraps —
//! the graceful-degradation contract crash recovery relies on.

use mrom_core::{DataItem, Method, MethodBody, MromObject, ObjectBuilder};
use mrom_persist::{BlobStore, Depot, MemStore, PersistError};
use mrom_value::{IdGenerator, NodeId, Value};
use proptest::prelude::*;

fn persistent_object(gen: &mut IdGenerator, marker: i64) -> MromObject {
    ObjectBuilder::new(gen.next_id())
        .class("persistent")
        .fixed_data("marker", DataItem::public(Value::Int(marker)))
        .fixed_method(
            "marker",
            Method::public(MethodBody::script("return self.get(\"marker\");").unwrap()),
        )
        .build()
}

/// A depot holding `count` healthy objects; returns the objects too.
fn seeded_depot(count: i64) -> (Depot<MemStore>, Vec<MromObject>) {
    let mut gen = IdGenerator::new(NodeId(31));
    let mut depot = Depot::new(MemStore::new());
    let objects: Vec<MromObject> = (0..count)
        .map(|marker| {
            let obj = persistent_object(&mut gen, marker);
            depot.save(&obj).expect("mobile object saves");
            obj
        })
        .collect();
    (depot, objects)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict truncation of a stored image cuts mid-structure: the
    /// restore must fail with a structured error, never panic.
    #[test]
    fn truncated_images_fail_structurally(keep_fraction in 0.0f64..1.0) {
        let (mut depot, objects) = seeded_depot(1);
        let victim = objects[0].id();
        let key = victim.to_string();
        let bytes = depot.store().get(&key).unwrap().expect("stored");
        prop_assume!(!bytes.is_empty());
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let keep = ((bytes.len() as f64) * keep_fraction) as usize;
        let keep = keep.min(bytes.len() - 1);
        depot.store_mut().put(&key, &bytes[..keep]).unwrap();

        match depot.restore(victim) {
            Err(PersistError::Model(_) | PersistError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            Ok(_) => prop_assert!(false, "a truncated image must not decode"),
        }
    }

    /// Flipping one bit anywhere in a stored image never panics: the
    /// restore either fails structurally or decodes to *some* object,
    /// and `restore_all` still bootstraps every untouched object.
    #[test]
    fn bit_flips_degrade_gracefully(byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let (mut depot, objects) = seeded_depot(4);
        let victim = objects[0].id();
        let key = victim.to_string();
        let mut bytes = depot.store().get(&key).unwrap().expect("stored");
        prop_assume!(!bytes.is_empty());
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = (((bytes.len() - 1) as f64) * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        depot.store_mut().put(&key, &bytes).unwrap();

        // Point restore: structured outcome either way.
        let single = depot.restore(victim);
        if let Err(e) = &single {
            prop_assert!(
                matches!(e, PersistError::Model(_) | PersistError::Corrupt { .. }),
                "unexpected error class: {e}"
            );
        }

        // Bulk bootstrap: accounts for every key, healthy objects intact.
        let (restored, quarantined) = depot.restore_all();
        prop_assert_eq!(restored.len() + quarantined.len(), 4);
        for healthy in &objects[1..] {
            prop_assert!(
                restored.iter().any(|o| o == healthy),
                "untouched object {} must survive a neighbour's corruption",
                healthy.id()
            );
        }
        match single {
            Ok(_) => prop_assert!(quarantined.is_empty()),
            Err(_) => {
                prop_assert_eq!(quarantined.len(), 1);
                prop_assert_eq!(quarantined[0].0.clone(), key);
            }
        }
    }

    /// Rewriting the image's leading wire tag (a "tag swap") must fail
    /// structurally: whatever the bytes now claim to be, they cannot
    /// validate as an object image.
    #[test]
    fn tag_swaps_fail_structurally(tag in any::<u8>()) {
        let (mut depot, objects) = seeded_depot(2);
        let victim = objects[0].id();
        let key = victim.to_string();
        let mut bytes = depot.store().get(&key).unwrap().expect("stored");
        prop_assume!(!bytes.is_empty());
        prop_assume!(bytes[0] != tag);
        bytes[0] = tag;
        depot.store_mut().put(&key, &bytes).unwrap();

        match depot.restore(victim) {
            Err(PersistError::Model(_) | PersistError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            Ok(_) => prop_assert!(false, "a retagged image must not validate"),
        }
        // The undamaged neighbour still bootstraps.
        let (restored, quarantined) = depot.restore_all();
        prop_assert_eq!(restored.len(), 1);
        prop_assert_eq!(quarantined.len(), 1);
        prop_assert!(restored[0] == objects[1]);
    }
}
