//! Persistence errors.

use std::fmt;
use std::sync::Arc;

use mrom_core::MromError;
use mrom_value::ObjectId;

/// Errors from the store layer and the self-persistence protocol.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PersistError {
    /// No image is stored for this object.
    NotFound(ObjectId),
    /// A stored record failed its CRC or framing checks.
    Corrupt {
        /// The store key involved.
        key: String,
        /// Explanation.
        detail: String,
    },
    /// The model layer refused (not mobile, ACL, bad image).
    Model(MromError),
    /// An I/O failure from the file backend. `Arc` keeps the error
    /// cloneable for retry loops.
    Io(Arc<std::io::Error>),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::NotFound(id) => write!(f, "no stored image for object {id}"),
            PersistError::Corrupt { key, detail } => {
                write!(f, "corrupt record for key {key:?}: {detail}")
            }
            PersistError::Model(e) => write!(f, "model error: {e}"),
            PersistError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Model(e) => Some(e),
            PersistError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<MromError> for PersistError {
    fn from(e: MromError) -> Self {
        PersistError::Model(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PersistError::from(std::io::Error::other("disk on fire"));
        assert!(e.to_string().contains("disk on fire"));
        assert!(e.source().is_some());
        let e = PersistError::Corrupt {
            key: "k".into(),
            detail: "bad crc".into(),
        };
        assert!(e.to_string().contains("bad crc"));
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone + 'static>() {}
        assert_traits::<PersistError>();
    }
}
