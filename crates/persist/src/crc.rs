//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Hand-rolled because the store format — like everything a mobile object
//! depends on — must be self-contained and byte-stable across hosts.

/// Computes the CRC-32 checksum of `data` (IEEE polynomial, reflected,
/// initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — the same
/// parameters as zlib).
///
/// # Example
///
/// ```
/// // The classic check value for "123456789".
/// assert_eq!(mrom_persist::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// The lookup table for the reflected IEEE polynomial `0xEDB8_8320`.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"some payload worth protecting".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn is_order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
