//! The self-persistence protocol: objects write themselves into
//! host-allocated space; hosts bootstrap them back.

use mrom_core::MromObject;
use mrom_value::ObjectId;

use crate::error::PersistError;
use crate::store::BlobStore;

/// Binds a [`BlobStore`] to the object self-persistence protocol.
///
/// `save` asks the *object* to serialize itself (its migration image) and
/// stores the bytes under the object's identity; `restore` is the paper's
/// "bootstrap procedure initiated by the host environment": the host
/// fetches the bytes and the object's own deserializer rebuilds it.
#[derive(Debug)]
pub struct Depot<S> {
    store: S,
}

impl<S: BlobStore> Depot<S> {
    /// Wraps a store.
    pub fn new(store: S) -> Depot<S> {
        Depot { store }
    }

    /// Access to the underlying store (inspection, maintenance).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consumes the depot, returning the store.
    pub fn into_inner(self) -> S {
        self.store
    }

    /// Persists `obj`: the object serializes itself and the image is
    /// stored under its identity.
    ///
    /// # Errors
    ///
    /// [`PersistError::Model`] when the object is not mobile (native
    /// bodies) and backend I/O failures.
    pub fn save(&mut self, obj: &MromObject) -> Result<(), PersistError> {
        // The object acts with its own authority when persisting itself.
        let image = obj.migration_image(obj.id())?;
        mrom_obs::depot_save(obj.id(), image.len());
        self.store.put(&obj.id().to_string(), &image)
    }

    /// `true` when an image for `id` is stored.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.store.keys().iter().any(|k| k == &id.to_string())
    }

    /// Bootstraps the object stored under `id`.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotFound`], [`PersistError::Corrupt`], or image
    /// validation failures.
    pub fn restore(&self, id: ObjectId) -> Result<MromObject, PersistError> {
        let result = self.restore_inner(id);
        let corrupt = matches!(result, Err(PersistError::Corrupt { .. }));
        mrom_obs::depot_restore(result.is_ok(), corrupt);
        result
    }

    fn restore_inner(&self, id: ObjectId) -> Result<MromObject, PersistError> {
        let bytes = self
            .store
            .get(&id.to_string())?
            .ok_or(PersistError::NotFound(id))?;
        Ok(MromObject::from_image(&bytes)?)
    }

    /// Removes the stored image for `id`; `true` if one existed.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn remove(&mut self, id: ObjectId) -> Result<bool, PersistError> {
        self.store.delete(&id.to_string())
    }

    /// Checkpoints every mobile object a node hosts: each object writes
    /// itself; objects the model layer refuses to image — native bodies,
    /// or a meta ACL that withholds the object's own migration image
    /// (system ambassadors do this) — are reported (not persisted) so
    /// the host can decide what to do about them. Returns the number of
    /// objects persisted.
    ///
    /// # Errors
    ///
    /// Backend I/O failures abort the checkpoint (already-written objects
    /// remain stored — the log is append-only, so a partial checkpoint is
    /// still a consistent set of images).
    pub fn checkpoint<I>(&mut self, objects: I) -> Result<(usize, Vec<ObjectId>), PersistError>
    where
        I: IntoIterator,
        I::Item: std::ops::Deref<Target = MromObject>,
    {
        let mut saved = 0;
        let mut pinned = Vec::new();
        for obj in objects {
            if !obj.is_mobile() {
                pinned.push(obj.id());
                continue;
            }
            match self.save(&obj) {
                Ok(()) => saved += 1,
                Err(PersistError::Model(_)) => pinned.push(obj.id()),
                Err(e) => return Err(e),
            }
        }
        Ok((saved, pinned))
    }

    /// Bootstraps every stored object (node restart). Corrupt or invalid
    /// images are returned separately so a host can quarantine them
    /// without losing healthy objects.
    pub fn restore_all(&self) -> (Vec<MromObject>, Vec<(String, PersistError)>) {
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        for key in self.store.keys() {
            match self.store.get(&key).and_then(|bytes| match bytes {
                Some(b) => MromObject::from_image(&b).map_err(PersistError::from),
                None => Err(PersistError::Corrupt {
                    key: key.clone(),
                    detail: "key vanished during restore".into(),
                }),
            }) {
                Ok(obj) => {
                    mrom_obs::depot_restore(true, false);
                    ok.push(obj);
                }
                Err(e) => {
                    mrom_obs::depot_restore(false, matches!(e, PersistError::Corrupt { .. }));
                    failed.push((key, e));
                }
            }
        }
        (ok, failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use mrom_core::{DataItem, Method, MethodBody, ObjectBuilder};
    use mrom_value::{IdGenerator, NodeId, Value};

    fn ids() -> IdGenerator {
        IdGenerator::new(NodeId(15))
    }

    fn persistent_object(gen: &mut IdGenerator, marker: i64) -> MromObject {
        ObjectBuilder::new(gen.next_id())
            .class("persistent")
            .fixed_data("marker", DataItem::public(Value::Int(marker)))
            .fixed_method(
                "marker",
                Method::public(MethodBody::script("return self.get(\"marker\");").unwrap()),
            )
            .build()
    }

    #[test]
    fn save_restore_round_trip() {
        let mut gen = ids();
        let obj = persistent_object(&mut gen, 1);
        let mut depot = Depot::new(MemStore::new());
        assert!(!depot.contains(obj.id()));
        depot.save(&obj).unwrap();
        assert!(depot.contains(obj.id()));
        let back = depot.restore(obj.id()).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn restore_missing_is_not_found() {
        let mut gen = ids();
        let depot = Depot::new(MemStore::new());
        let ghost = gen.next_id();
        assert!(matches!(
            depot.restore(ghost),
            Err(PersistError::NotFound(id)) if id == ghost
        ));
    }

    #[test]
    fn non_mobile_objects_refuse_to_persist() {
        let mut gen = ids();
        let mut obj = persistent_object(&mut gen, 2);
        let me = obj.id();
        obj.add_method(
            me,
            "rooted",
            Method::new(MethodBody::native(|_, _| Ok(Value::Null))),
        )
        .unwrap();
        let mut depot = Depot::new(MemStore::new());
        assert!(matches!(
            depot.save(&obj),
            Err(PersistError::Model(mrom_core::MromError::NotMobile { .. }))
        ));
    }

    #[test]
    fn corrupted_image_is_reported_not_loaded() {
        let mut gen = ids();
        let obj = persistent_object(&mut gen, 3);
        let mut depot = Depot::new(MemStore::new());
        depot.save(&obj).unwrap();
        depot.store_mut().corrupt(&obj.id().to_string(), 40);
        assert!(matches!(
            depot.restore(obj.id()),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn restore_all_quarantines_bad_images() {
        let mut gen = ids();
        let good_a = persistent_object(&mut gen, 10);
        let good_b = persistent_object(&mut gen, 11);
        let bad = persistent_object(&mut gen, 12);
        let mut depot = Depot::new(MemStore::new());
        depot.save(&good_a).unwrap();
        depot.save(&good_b).unwrap();
        depot.save(&bad).unwrap();
        depot.store_mut().corrupt(&bad.id().to_string(), 10);

        let (ok, failed) = depot.restore_all();
        assert_eq!(ok.len(), 2);
        assert_eq!(failed.len(), 1);
        assert!(failed[0].0.contains(&bad.id().to_string()));
        let restored: Vec<_> = ok.iter().map(MromObject::id).collect();
        assert!(restored.contains(&good_a.id()));
        assert!(restored.contains(&good_b.id()));
    }

    #[test]
    fn remove_then_restore_fails() {
        let mut gen = ids();
        let obj = persistent_object(&mut gen, 5);
        let mut depot = Depot::new(MemStore::new());
        depot.save(&obj).unwrap();
        assert!(depot.remove(obj.id()).unwrap());
        assert!(!depot.remove(obj.id()).unwrap());
        assert!(matches!(
            depot.restore(obj.id()),
            Err(PersistError::NotFound(_))
        ));
    }

    #[test]
    fn mutated_state_survives_persistence() {
        let mut gen = ids();
        let mut obj = persistent_object(&mut gen, 0);
        let me = obj.id();
        obj.add_data(me, "journey", Value::list([Value::from("created")]))
            .unwrap();
        obj.write_data(me, "marker", Value::Int(99)).unwrap();
        let mut depot = Depot::new(MemStore::new());
        depot.save(&obj).unwrap();
        let back = depot.restore(me).unwrap();
        assert_eq!(back.read_data(me, "marker").unwrap(), Value::Int(99));
        assert_eq!(
            back.read_data(me, "journey").unwrap(),
            Value::list([Value::from("created")])
        );
    }
}
