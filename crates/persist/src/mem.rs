//! In-memory store (tests, benches, volatile hosts).

use std::collections::BTreeMap;

use crate::crc::crc32;
use crate::error::PersistError;
use crate::store::BlobStore;

/// A [`BlobStore`] held in process memory.
///
/// Checksums are kept alongside the data so corruption *injected by tests*
/// (via [`MemStore::corrupt`]) is detected exactly like on-disk rot.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    blobs: BTreeMap<String, (u32, Vec<u8>)>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Test hook: flips a bit in the stored blob, simulating medium rot.
    /// Returns `false` when the key is absent or empty.
    pub fn corrupt(&mut self, key: &str, byte_index: usize) -> bool {
        match self.blobs.get_mut(key) {
            Some((_, data)) if !data.is_empty() => {
                let i = byte_index % data.len();
                data[i] ^= 0x01;
                true
            }
            _ => false,
        }
    }
}

impl BlobStore for MemStore {
    fn put(&mut self, key: &str, data: &[u8]) -> Result<(), PersistError> {
        self.blobs
            .insert(key.to_owned(), (crc32(data), data.to_vec()));
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, PersistError> {
        match self.blobs.get(key) {
            None => Ok(None),
            Some((stored_crc, data)) => {
                if crc32(data) != *stored_crc {
                    return Err(PersistError::Corrupt {
                        key: key.to_owned(),
                        detail: "crc mismatch".into(),
                    });
                }
                Ok(Some(data.clone()))
            }
        }
    }

    fn delete(&mut self, key: &str) -> Result<bool, PersistError> {
        Ok(self.blobs.remove(key).is_some())
    }

    fn keys(&self) -> Vec<String> {
        self.blobs.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut s = MemStore::new();
        assert!(s.is_empty());
        s.put("a", b"one").unwrap();
        s.put("b", b"two").unwrap();
        assert_eq!(s.get("a").unwrap().unwrap(), b"one");
        assert_eq!(s.get("missing").unwrap(), None);
        assert_eq!(s.keys(), ["a", "b"]);
        assert_eq!(s.len(), 2);
        assert!(s.delete("a").unwrap());
        assert!(!s.delete("a").unwrap());
        assert_eq!(s.get("a").unwrap(), None);
    }

    #[test]
    fn replace_overwrites() {
        let mut s = MemStore::new();
        s.put("k", b"v1").unwrap();
        s.put("k", b"v2").unwrap();
        assert_eq!(s.get("k").unwrap().unwrap(), b"v2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn corruption_is_detected_on_read() {
        let mut s = MemStore::new();
        s.put("k", b"precious bytes").unwrap();
        assert!(s.corrupt("k", 3));
        assert!(matches!(s.get("k"), Err(PersistError::Corrupt { .. })));
        // Other keys unaffected.
        s.put("ok", b"fine").unwrap();
        assert_eq!(s.get("ok").unwrap().unwrap(), b"fine");
        // Corrupting nothing.
        assert!(!s.corrupt("missing", 0));
    }
}
