//! Log-structured file store.
//!
//! ## Record format
//!
//! The log is a sequence of records, each:
//!
//! ```text
//! magic   2 bytes   "MP"
//! version 1 byte    1
//! kind    1 byte    1 = put, 2 = tombstone
//! key_len 4 bytes   BE u32
//! data_len 4 bytes  BE u32 (0 for tombstones)
//! crc     4 bytes   BE u32 over key bytes ++ data bytes
//! key     key_len bytes (UTF-8)
//! data    data_len bytes
//! ```
//!
//! ## Recovery
//!
//! [`FileStore::open`] scans from the start, rebuilding the in-memory
//! index. The first malformed or CRC-failing record ends the scan and the
//! file is truncated there — a torn final write (crash mid-append) loses
//! only that write, never earlier ones.
//!
//! ## Compaction
//!
//! Deletes append tombstones and replaced records stay in the log until
//! [`FileStore::compact`] rewrites live records to a fresh file and
//! atomically renames it over the old one.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::PersistError;
use crate::store::BlobStore;

const MAGIC: [u8; 2] = *b"MP";
const VERSION: u8 = 1;
const KIND_PUT: u8 = 1;
const KIND_TOMBSTONE: u8 = 2;
const HEADER_LEN: usize = 2 + 1 + 1 + 4 + 4 + 4;

/// A crash-recoverable, log-structured [`BlobStore`] backed by one file.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
    file: File,
    /// key → (offset of the record's data section, data length).
    index: BTreeMap<String, (u64, u32)>,
    /// Bytes occupied by dead records (replaced or tombstoned).
    garbage_bytes: u64,
    tail: u64,
}

impl FileStore {
    /// Opens (or creates) the store at `path`, recovering the index by
    /// scanning the log. A trailing torn record is truncated away.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<FileStore, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut raw)?;

        let mut index = BTreeMap::new();
        let mut garbage_bytes = 0u64;
        let mut pos = 0usize;
        let mut valid_end = 0usize;
        while raw.len() - pos >= HEADER_LEN {
            let head = &raw[pos..pos + HEADER_LEN];
            if head[0..2] != MAGIC || head[2] != VERSION {
                break;
            }
            let kind = head[3];
            if kind != KIND_PUT && kind != KIND_TOMBSTONE {
                break;
            }
            let key_len = u32::from_be_bytes(head[4..8].try_into().expect("4 bytes")) as usize;
            let data_len = u32::from_be_bytes(head[8..12].try_into().expect("4 bytes")) as usize;
            let stored_crc = u32::from_be_bytes(head[12..16].try_into().expect("4 bytes"));
            let body_start = pos + HEADER_LEN;
            let Some(body_end) = body_start.checked_add(key_len + data_len) else {
                break;
            };
            if body_end > raw.len() {
                break;
            }
            let key_bytes = &raw[body_start..body_start + key_len];
            let data_bytes = &raw[body_start + key_len..body_end];
            let mut crc_input = Vec::with_capacity(key_len + data_len);
            crc_input.extend_from_slice(key_bytes);
            crc_input.extend_from_slice(data_bytes);
            if crc32(&crc_input) != stored_crc {
                break;
            }
            let Ok(key) = std::str::from_utf8(key_bytes) else {
                break;
            };
            let record_len = (HEADER_LEN + key_len + data_len) as u64;
            match kind {
                KIND_PUT => {
                    if let Some((_, old_len)) = index.insert(
                        key.to_owned(),
                        ((body_start + key_len) as u64, data_len as u32),
                    ) {
                        garbage_bytes += u64::from(old_len) + HEADER_LEN as u64;
                    }
                }
                KIND_TOMBSTONE => {
                    if let Some((_, old_len)) = index.remove(key) {
                        garbage_bytes += u64::from(old_len) + HEADER_LEN as u64;
                    }
                    garbage_bytes += record_len;
                }
                _ => unreachable!("kind validated"),
            }
            pos = body_end;
            valid_end = pos;
        }

        if valid_end < raw.len() {
            // Torn or corrupt tail: truncate it away.
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(FileStore {
            path,
            file,
            index,
            garbage_bytes,
            tail: valid_end as u64,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes occupied by dead records; the signal for compaction.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage_bytes
    }

    /// Total log length in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.tail
    }

    fn append_record(&mut self, kind: u8, key: &str, data: &[u8]) -> Result<u64, PersistError> {
        let mut rec = Vec::with_capacity(HEADER_LEN + key.len() + data.len());
        rec.extend_from_slice(&MAGIC);
        rec.push(VERSION);
        rec.push(kind);
        rec.extend_from_slice(&(key.len() as u32).to_be_bytes());
        rec.extend_from_slice(&(data.len() as u32).to_be_bytes());
        let mut crc_input = Vec::with_capacity(key.len() + data.len());
        crc_input.extend_from_slice(key.as_bytes());
        crc_input.extend_from_slice(data);
        rec.extend_from_slice(&crc32(&crc_input).to_be_bytes());
        rec.extend_from_slice(key.as_bytes());
        rec.extend_from_slice(data);
        let offset = self.tail;
        self.file.write_all(&rec)?;
        self.file.flush()?;
        self.tail += rec.len() as u64;
        Ok(offset)
    }

    /// Rewrites the log with only live records, reclaiming garbage.
    ///
    /// # Errors
    ///
    /// I/O failures; on failure the original log is left untouched.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        let tmp_path = self.path.with_extension("compact");
        {
            let mut tmp = FileStore::open(&tmp_path)?;
            for key in self.keys() {
                let data = self
                    .get(&key)?
                    .expect("indexed key must be present during compaction");
                tmp.put(&key, &data)?;
            }
            tmp.file.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        let fresh = FileStore::open(&self.path)?;
        *self = fresh;
        Ok(())
    }
}

impl BlobStore for FileStore {
    fn put(&mut self, key: &str, data: &[u8]) -> Result<(), PersistError> {
        let offset = self.append_record(KIND_PUT, key, data)?;
        let data_offset = offset + HEADER_LEN as u64 + key.len() as u64;
        if let Some((_, old_len)) = self
            .index
            .insert(key.to_owned(), (data_offset, data.len() as u32))
        {
            self.garbage_bytes += u64::from(old_len) + HEADER_LEN as u64;
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, PersistError> {
        let Some((offset, len)) = self.index.get(key) else {
            return Ok(None);
        };
        let mut out = vec![0u8; *len as usize];
        // Positioned read through a cloned handle keeps &self semantics.
        let mut handle = self.file.try_clone()?;
        handle.seek(SeekFrom::Start(*offset))?;
        handle.read_exact(&mut out)?;
        Ok(Some(out))
    }

    fn delete(&mut self, key: &str) -> Result<bool, PersistError> {
        if !self.index.contains_key(key) {
            return Ok(false);
        }
        let record_start = self.tail;
        self.append_record(KIND_TOMBSTONE, key, &[])?;
        if let Some((_, old_len)) = self.index.remove(key) {
            self.garbage_bytes += u64::from(old_len) + HEADER_LEN as u64;
        }
        self.garbage_bytes += self.tail - record_start;
        Ok(true)
    }

    fn keys(&self) -> Vec<String> {
        self.index.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir()
                .join(format!("mrom-persist-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn basic_put_get_delete() {
        let dir = TempDir::new("basic");
        let mut s = FileStore::open(dir.file("log")).unwrap();
        s.put("a", b"alpha").unwrap();
        s.put("b", b"beta").unwrap();
        assert_eq!(s.get("a").unwrap().unwrap(), b"alpha");
        assert_eq!(s.get("c").unwrap(), None);
        assert!(s.delete("a").unwrap());
        assert!(!s.delete("a").unwrap());
        assert_eq!(s.get("a").unwrap(), None);
        assert_eq!(s.keys(), ["b"]);
    }

    #[test]
    fn reopen_recovers_index() {
        let dir = TempDir::new("reopen");
        let path = dir.file("log");
        {
            let mut s = FileStore::open(&path).unwrap();
            s.put("x", b"1").unwrap();
            s.put("y", b"22").unwrap();
            s.put("x", b"333").unwrap(); // replacement
            s.delete("y").unwrap();
        }
        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.get("x").unwrap().unwrap(), b"333");
        assert_eq!(s.get("y").unwrap(), None);
        assert_eq!(s.keys(), ["x"]);
        assert!(s.garbage_bytes() > 0);
    }

    #[test]
    fn torn_tail_is_truncated_earlier_records_survive() {
        let dir = TempDir::new("torn");
        let path = dir.file("log");
        {
            let mut s = FileStore::open(&path).unwrap();
            s.put("keep", b"safe data").unwrap();
            s.put("casualty", b"this record will be torn").unwrap();
        }
        // Tear the last record by chopping bytes off the end.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.get("keep").unwrap().unwrap(), b"safe data");
        assert_eq!(s.get("casualty").unwrap(), None);
        assert_eq!(s.keys(), ["keep"]);
    }

    #[test]
    fn mid_log_corruption_keeps_earlier_records() {
        let dir = TempDir::new("rot");
        let path = dir.file("log");
        let second_offset;
        {
            let mut s = FileStore::open(&path).unwrap();
            s.put("first", b"good").unwrap();
            second_offset = s.log_bytes();
            s.put("second", b"doomed").unwrap();
            s.put("third", b"unreachable after rot").unwrap();
        }
        // Flip a data byte inside the second record.
        let mut raw = std::fs::read(&path).unwrap();
        raw[second_offset as usize + HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.get("first").unwrap().unwrap(), b"good");
        // Scan stopped at the corruption: later records are gone too
        // (prefix-consistency, like a real log).
        assert_eq!(s.keys(), ["first"]);
    }

    #[test]
    fn compaction_reclaims_garbage_and_preserves_data() {
        let dir = TempDir::new("compact");
        let path = dir.file("log");
        let mut s = FileStore::open(&path).unwrap();
        for i in 0..20 {
            s.put("churn", format!("version {i}").as_bytes()).unwrap();
        }
        s.put("stable", b"kept").unwrap();
        s.put("gone", b"deleted later").unwrap();
        s.delete("gone").unwrap();
        let before = s.log_bytes();
        assert!(s.garbage_bytes() > 0);

        s.compact().unwrap();
        assert!(s.log_bytes() < before);
        assert_eq!(s.garbage_bytes(), 0);
        assert_eq!(s.get("churn").unwrap().unwrap(), b"version 19");
        assert_eq!(s.get("stable").unwrap().unwrap(), b"kept");
        assert_eq!(s.get("gone").unwrap(), None);

        // And the compacted log reopens cleanly.
        drop(s);
        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.keys(), ["churn", "stable"]);
    }

    #[test]
    fn empty_and_unicode_keys() {
        let dir = TempDir::new("keys");
        let mut s = FileStore::open(dir.file("log")).unwrap();
        s.put("", b"empty key").unwrap();
        s.put("ключ✨", b"unicode").unwrap();
        s.put("data", b"").unwrap(); // empty payload
        assert_eq!(s.get("").unwrap().unwrap(), b"empty key");
        assert_eq!(s.get("ключ✨").unwrap().unwrap(), b"unicode");
        assert_eq!(s.get("data").unwrap().unwrap(), b"");
    }

    #[test]
    fn large_payload_round_trip() {
        let dir = TempDir::new("large");
        let mut s = FileStore::open(dir.file("log")).unwrap();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        s.put("big", &big).unwrap();
        assert_eq!(s.get("big").unwrap().unwrap(), big);
    }
}
