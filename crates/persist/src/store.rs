//! The host-side storage abstraction.

use crate::error::PersistError;

/// Raw keyed blob storage allocated by a host environment.
///
/// This is all a host offers a mobile object: space. The host never
/// interprets the bytes — the object's own serializer produces them and
/// the object's own deserializer consumes them (self-containment).
///
/// Implementations must be durable within their own medium ([`crate::MemStore`]
/// for the process lifetime, [`crate::FileStore`] across crashes) and must
/// detect corruption on read rather than return damaged bytes.
pub trait BlobStore {
    /// Writes (or replaces) the blob under `key`.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    fn put(&mut self, key: &str, data: &[u8]) -> Result<(), PersistError>;

    /// Reads the blob under `key`, `None` when absent.
    ///
    /// # Errors
    ///
    /// Backend I/O failures or [`PersistError::Corrupt`] when the stored
    /// record fails validation.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, PersistError>;

    /// Deletes the blob under `key`; `true` if it existed.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    fn delete(&mut self, key: &str) -> Result<bool, PersistError>;

    /// All live keys, sorted.
    fn keys(&self) -> Vec<String>;

    /// Number of live blobs.
    fn len(&self) -> usize {
        self.keys().len()
    }

    /// `true` when no blobs are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
