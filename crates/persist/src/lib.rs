//! # mrom-persist
//!
//! The self-contained persistence substrate: log-structured blob stores
//! into which MROM objects write *themselves*.
//!
//! The paper's requirement: "a long-lived persistent mobile object should
//! contain its own persistence scheme and be able to write itself to disk
//! on a space allocated for it by the host environment, as well as read
//! itself into memory following some bootstrap procedure initiated by the
//! host environment." The division of labour here is exactly that:
//!
//! * the **host** provides a [`BlobStore`] (memory or file backed) — raw
//!   space, keyed by object identity, with no knowledge of object
//!   internals;
//! * the **object** provides the bytes — its own migration image, produced
//!   by its own serializer ([`mrom_core::MromObject::migration_image`]);
//! * [`Depot`] wires the two together and runs the bootstrap procedure
//!   ([`Depot::restore`] / [`Depot::restore_all`]).
//!
//! The [`FileStore`] is an append-only log with per-record CRC32, crash
//! recovery by scan-and-truncate, and compaction.
//!
//! ## Example
//!
//! ```
//! use mrom_persist::{Depot, MemStore};
//! use mrom_core::{DataItem, ObjectBuilder};
//! use mrom_value::{IdGenerator, NodeId, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ids = IdGenerator::new(NodeId(1));
//! let obj = ObjectBuilder::new(ids.next_id())
//!     .fixed_data("x", DataItem::public(Value::Int(9)))
//!     .build();
//!
//! let mut depot = Depot::new(MemStore::new());
//! depot.save(&obj)?;                       // the object writes itself
//! let back = depot.restore(obj.id())?;     // host-initiated bootstrap
//! assert_eq!(back, obj);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod depot;
mod error;
mod file;
mod mem;
mod store;

pub use crc::crc32;
pub use depot::Depot;
pub use error::PersistError;
pub use file::FileStore;
pub use mem::MemStore;
pub use store::BlobStore;

/// Crate-local result alias over [`PersistError`].
pub type Result<T> = std::result::Result<T, PersistError>;
