//! # mrom — facade crate
//!
//! Re-exports the whole MROM reproduction under one roof: the mutable
//! reflective object model ([`core`]), its value system ([`value`]), the
//! mobile scripting language ([`script`]), the network simulator ([`net`]),
//! the self-contained persistence substrate ([`persist`]), the comparator
//! object models ([`baselines`]), the HADAS interoperability framework
//! ([`hadas`]), and the observability layer ([`obs`]).
//!
//! See the repository `README.md` for a guided tour and `DESIGN.md` for the
//! paper-to-crate mapping.

#![forbid(unsafe_code)]

pub use hadas;
pub use mrom_baselines as baselines;
pub use mrom_core as core;
pub use mrom_fleet as fleet;
pub use mrom_net as net;
pub use mrom_obs as obs;
pub use mrom_persist as persist;
pub use mrom_script as script;
pub use mrom_value as value;
