//! `mrom-lint` — the admission analyzer as a standalone tool.
//!
//! Runs the same multi-pass static analysis the runtime applies at trust
//! boundaries (scope/def-use, host-call manifest, object cross-check,
//! resource shape) over script files or whole object images, and prints
//! every diagnostic:
//!
//! ```text
//! mrom-lint <file>...                  analyze script sources (.mrs) and/or object images
//! mrom-lint --dump-bytecode <file>...  also disassemble each script body's register bytecode
//! mrom-lint --effects <file>...        also print interprocedural effect signatures
//! mrom-lint --json <file>...           machine-readable output, one JSON object per line
//! ```
//!
//! A file that decodes as a wire buffer is analyzed as a migration image
//! (every method body cross-checked against the object that carries it);
//! anything else is treated as script source and analyzed in isolation.
//!
//! `--dump-bytecode` prints the compiled form the VM executes at admission
//! time — the instruction stream, per-block fuel charges, constant pool and
//! name pool — so a host operator can audit exactly what an admitted body
//! will run.
//!
//! `--effects` prints the effect signature of every method (for images:
//! the interprocedural fixpoint over the object's call graph; for loose
//! scripts: the body analyzed as a single-method object) — reads, writes,
//! world calls, and the purity/idempotence/migration-safety verdicts the
//! runtime's retry and dispatch policies consult.
//!
//! `--json` replaces the human-readable report with newline-delimited
//! JSON: each diagnostic is one object with stable `kind` strings (the
//! same kebab-case names `DiagnosticKind::as_str` defines), inputs that
//! cannot be analyzed at all surface as a single `input-error` record,
//! and `--effects` adds one `effects` record per file. CI greps this
//! stream instead of parsing prose.
//!
//! Exit code 0 when everything is clean or carries only warnings, 1 when
//! any file is unreadable/unparsable or any error-severity diagnostic
//! fires, 2 on usage errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

use mrom::core::{Diagnostic, MethodBody, MromObject, Severity};
use mrom::obs::to_json;
use mrom::script::analyze::analyze_program;
use mrom::script::{solve_effects, EffectSignature, LocalEffects, Program};
use mrom::value::{wire, Value};

/// Command-line switches (everything that is not a file path).
#[derive(Clone, Copy, Default)]
struct Options {
    dump: bool,
    json: bool,
    effects: bool,
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = Options {
        dump: args.iter().any(|a| a == "--dump-bytecode"),
        json: args.iter().any(|a| a == "--json"),
        effects: args.iter().any(|a| a == "--effects"),
    };
    args.retain(|a| !matches!(a.as_str(), "--dump-bytecode" | "--json" | "--effects"));
    if args.is_empty() || args.iter().any(|a| a.starts_with("--")) {
        eprintln!("usage: mrom-lint [--dump-bytecode] [--effects] [--json] <file>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &args {
        let outcome = match std::fs::read(path) {
            Ok(bytes) => lint_bytes(&bytes, opts),
            Err(e) => Outcome::Unreadable(format!("cannot read: {e}")),
        };
        failed |= print_outcome(path, &outcome, opts);
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Everything one input produced.
enum Outcome {
    Report {
        diagnostics: Vec<Diagnostic>,
        /// Bytecode disassembly lines (`--dump-bytecode`).
        extra: Vec<String>,
        /// Per-method signatures (`--effects`).
        effects: Option<BTreeMap<String, EffectSignature>>,
    },
    /// The input could not be analyzed at all (unreadable, unparsable,
    /// or a malformed image).
    Unreadable(String),
}

/// Prints one file's outcome in the selected format; returns `true` when
/// the file fails the lint (any error-severity diagnostic, or no
/// analysis at all).
fn print_outcome(path: &str, outcome: &Outcome, opts: Options) -> bool {
    match outcome {
        Outcome::Report {
            diagnostics,
            extra,
            effects,
        } => {
            if opts.json {
                for d in diagnostics {
                    println!("{}", to_json(&diagnostic_value(path, d)));
                }
                if let Some(table) = effects {
                    let record = Value::map([
                        ("record", Value::from("effects")),
                        ("path", Value::from(path)),
                        ("methods", mrom::core::effects_value(table)),
                    ]);
                    println!("{}", to_json(&record));
                }
            } else {
                for d in diagnostics {
                    println!("{path}: {d}");
                }
                for line in extra {
                    println!("{path}: {line}");
                }
                if let Some(table) = effects {
                    for (name, sig) in table {
                        println!("{path}: effects of {name:?}: {}", to_json(&sig.to_value()));
                    }
                }
                if diagnostics.is_empty() {
                    println!("{path}: clean");
                }
            }
            diagnostics.iter().any(|d| d.severity == Severity::Error)
        }
        Outcome::Unreadable(msg) => {
            if opts.json {
                let record = Value::map([
                    ("record", Value::from("diagnostic")),
                    ("path", Value::from(path)),
                    ("kind", Value::from("input-error")),
                    ("severity", Value::from("error")),
                    ("message", Value::from(msg.as_str())),
                ]);
                println!("{}", to_json(&record));
            } else {
                eprintln!("mrom-lint: {path}: {msg}");
            }
            true
        }
    }
}

/// Lowers one diagnostic to the stable JSON record shape.
fn diagnostic_value(path: &str, d: &Diagnostic) -> Value {
    Value::map([
        ("record", Value::from("diagnostic")),
        ("path", Value::from(path)),
        ("kind", Value::from(d.kind.as_str())),
        ("severity", Value::from(d.severity.to_string())),
        ("at", Value::from(d.path.as_str())),
        ("message", Value::from(d.message.as_str())),
    ])
}

/// Analyzes one input under `opts`, producing diagnostics plus the
/// requested extras.
fn lint_bytes(bytes: &[u8], opts: Options) -> Outcome {
    // A framed wire buffer is an object image; anything else is script.
    if let Ok(v) = wire::decode(bytes) {
        return match MromObject::from_image_value(&v) {
            Ok(obj) => {
                let mut extra = Vec::new();
                if opts.dump {
                    for (name, method) in obj.all_methods() {
                        if let MethodBody::Script(p) = method.body() {
                            extra.push(format!("bytecode of method {name:?}:"));
                            push_disassembly(&mut extra, p);
                        }
                    }
                }
                Outcome::Report {
                    diagnostics: obj.analyze(),
                    extra,
                    effects: opts.effects.then(|| mrom::core::object_effects(&obj)),
                }
            }
            Err(e) => Outcome::Unreadable(format!("not a valid object image: {e}")),
        };
    }
    let Ok(source) = std::str::from_utf8(bytes) else {
        return Outcome::Unreadable("neither a wire buffer nor UTF-8 script source".to_owned());
    };
    match Program::parse(source) {
        Ok(p) => {
            let mut extra = Vec::new();
            if opts.dump {
                push_disassembly(&mut extra, &p);
            }
            let effects = opts.effects.then(|| {
                // A loose script is a single-method object: solve the
                // one-entry graph so the verdict fields are filled in.
                let locals = BTreeMap::from([("script".to_owned(), LocalEffects::of_program(&p))]);
                solve_effects(&locals)
            });
            Outcome::Report {
                diagnostics: analyze_program(&p).diagnostics,
                extra,
                effects,
            }
        }
        Err(e) => Outcome::Unreadable(format!("parse failed: {e}")),
    }
}

fn push_disassembly(lines: &mut Vec<String>, p: &Program) {
    for line in p.compiled().disassemble().lines() {
        lines.push(line.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom::core::{Acl, DataItem, Method, MethodBody, ObjectBuilder};
    use mrom::value::{IdGenerator, NodeId, Value};

    fn lint(bytes: &[u8], opts: Options) -> (Vec<String>, Result<usize, String>) {
        match lint_bytes(bytes, opts) {
            Outcome::Report {
                diagnostics,
                mut extra,
                effects,
            } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                let mut lines: Vec<String> =
                    diagnostics.iter().map(Diagnostic::to_string).collect();
                lines.append(&mut extra);
                if let Some(table) = effects {
                    for (name, sig) in &table {
                        lines.push(format!("effects of {name:?}: {}", to_json(&sig.to_value())));
                    }
                }
                (lines, Ok(errors))
            }
            Outcome::Unreadable(msg) => (Vec::new(), Err(msg)),
        }
    }

    fn dump() -> Options {
        Options {
            dump: true,
            ..Options::default()
        }
    }

    fn effects() -> Options {
        Options {
            effects: true,
            ..Options::default()
        }
    }

    #[test]
    fn clean_script_is_clean() {
        let (lines, errors) = lint(b"param a; return a + 1;", Options::default());
        assert!(lines.is_empty());
        assert_eq!(errors, Ok(0));
    }

    #[test]
    fn script_defects_are_reported() {
        let (lines, errors) = lint(b"return ghost;", Options::default());
        assert_eq!(errors, Ok(1));
        assert!(lines[0].contains("undefined-variable"));
        // Warnings do not count as errors.
        let (lines, errors) = lint(b"param spare; return 1;", Options::default());
        assert_eq!(errors, Ok(0));
        assert!(lines[0].contains("unused-param"));
    }

    #[test]
    fn unparsable_input_is_an_error() {
        assert!(lint(b"return (;", Options::default()).1.is_err());
        assert!(lint(&[0xff, 0xfe, 0x00], Options::default()).1.is_err());
    }

    #[test]
    fn dump_bytecode_appends_disassembly() {
        let (lines, errors) = lint(b"param a; return a + 1;", dump());
        assert_eq!(errors, Ok(0));
        assert!(lines.iter().any(|l| l.contains("instrs")));
        assert!(lines.iter().any(|l| l.contains("return")));
    }

    #[test]
    fn dump_bytecode_covers_image_method_bodies() {
        let mut ids = IdGenerator::new(NodeId(6));
        let mut obj = ObjectBuilder::new(ids.next_id()).class("probe").build();
        let me = obj.id();
        obj.add_method(
            me,
            "work",
            Method::public(MethodBody::script("return 2 * 3;").unwrap()),
        )
        .unwrap();
        let image = obj.migration_image(me).unwrap();
        let (lines, errors) = lint(&image, dump());
        assert_eq!(errors, Ok(0));
        assert!(lines
            .iter()
            .any(|l| l.contains("bytecode of method \"work\"")));
        assert!(lines.iter().any(|l| l.contains("instrs")));
    }

    #[test]
    fn images_are_cross_checked() {
        let mut ids = IdGenerator::new(NodeId(5));
        let mut obj = ObjectBuilder::new(ids.next_id())
            .class("shady")
            .fixed_data("present", DataItem::public(Value::Int(1)))
            .fixed_data(
                "sealed",
                DataItem::public(Value::Int(2)).with_read_acl(Acl::Nobody),
            )
            .build();
        let me = obj.id();
        obj.add_method(
            me,
            "bad",
            Method::public(
                MethodBody::script("return self.get(\"absent\") + self.get(\"sealed\");").unwrap(),
            ),
        )
        .unwrap();
        let image = obj.migration_image(me).unwrap();
        let (lines, errors) = lint(&image, Options::default());
        assert_eq!(errors, Ok(2));
        assert!(lines.iter().any(|l| l.contains("dangling-data-item")));
        assert!(lines.iter().any(|l| l.contains("acl-unsatisfiable")));
        assert!(lines.iter().all(|l| l.contains("bad.body")));
    }

    #[test]
    fn effects_flag_reports_signatures_for_scripts_and_images() {
        let (lines, errors) = lint(b"return self.get(\"x\");", effects());
        assert_eq!(errors, Ok(0));
        assert!(
            lines
                .iter()
                .any(|l| l.contains("effects of \"script\"") && l.contains("\"pure\":true")),
            "{lines:?}"
        );

        let mut ids = IdGenerator::new(NodeId(8));
        let mut obj = ObjectBuilder::new(ids.next_id())
            .class("fx")
            .fixed_data("x", DataItem::public(Value::Int(0)))
            .build();
        let me = obj.id();
        obj.add_method(
            me,
            "poke",
            Method::public(MethodBody::script("self.set(\"x\", 1); return null;").unwrap()),
        )
        .unwrap();
        let image = obj.migration_image(me).unwrap();
        let (lines, errors) = lint(&image, effects());
        assert_eq!(errors, Ok(0));
        assert!(
            lines
                .iter()
                .any(|l| l.contains("effects of \"poke\"") && l.contains("\"idempotent\":true")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("effects of \"invoke\"")));
    }

    #[test]
    fn json_records_carry_stable_kinds() {
        let v = diagnostic_value(
            "probe.mrs",
            &Diagnostic::new(
                mrom::core::DiagnosticKind::UndefinedVariable,
                "body[0]",
                "x is undefined",
            ),
        );
        let line = to_json(&v);
        assert!(line.contains("\"kind\":\"undefined-variable\""));
        assert!(line.contains("\"severity\":\"error\""));
        assert!(line.contains("\"path\":\"probe.mrs\""));
        assert!(line.contains("\"at\":\"body[0]\""));
    }
}
