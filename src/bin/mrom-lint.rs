//! `mrom-lint` — the admission analyzer as a standalone tool.
//!
//! Runs the same multi-pass static analysis the runtime applies at trust
//! boundaries (scope/def-use, host-call manifest, object cross-check,
//! resource shape) over script files or whole object images, and prints
//! every diagnostic:
//!
//! ```text
//! mrom-lint <file>...                  analyze script sources (.mrs) and/or object images
//! mrom-lint --dump-bytecode <file>...  also disassemble each script body's register bytecode
//! ```
//!
//! A file that decodes as a wire buffer is analyzed as a migration image
//! (every method body cross-checked against the object that carries it);
//! anything else is treated as script source and analyzed in isolation.
//!
//! `--dump-bytecode` prints the compiled form the VM executes at admission
//! time — the instruction stream, per-block fuel charges, constant pool and
//! name pool — so a host operator can audit exactly what an admitted body
//! will run.
//!
//! Exit code 0 when everything is clean or carries only warnings, 1 when
//! any file is unreadable/unparsable or any error-severity diagnostic
//! fires, 2 on usage errors.

use std::process::ExitCode;

use mrom::core::{Diagnostic, MethodBody, MromObject, Severity};
use mrom::script::analyze::analyze_program;
use mrom::script::Program;
use mrom::value::wire;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let dump = args.iter().any(|a| a == "--dump-bytecode");
    args.retain(|a| a != "--dump-bytecode");
    if args.is_empty() {
        eprintln!("usage: mrom-lint [--dump-bytecode] <file>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &args {
        match std::fs::read(path) {
            Ok(bytes) => {
                let (report, errors) = lint_bytes(&bytes, dump);
                for line in &report {
                    println!("{path}: {line}");
                }
                match errors {
                    Ok(0) => println!("{path}: clean"),
                    Ok(_) => failed = true,
                    Err(msg) => {
                        eprintln!("mrom-lint: {path}: {msg}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("mrom-lint: cannot read {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Analyzes one input. Returns the printable diagnostic lines plus either
/// the number of error-severity findings or an explanation of why the
/// input could not be analyzed at all. With `dump` set, the bytecode
/// disassembly of every script body is appended to the report.
fn lint_bytes(bytes: &[u8], dump: bool) -> (Vec<String>, Result<usize, String>) {
    // A framed wire buffer is an object image; anything else is script.
    if let Ok(v) = wire::decode(bytes) {
        return match MromObject::from_image_value(&v) {
            Ok(obj) => {
                let (mut lines, errors) = render(obj.analyze());
                if dump {
                    for (name, method) in obj.all_methods() {
                        if let MethodBody::Script(p) = method.body() {
                            lines.push(format!("bytecode of method {name:?}:"));
                            push_disassembly(&mut lines, p);
                        }
                    }
                }
                (lines, errors)
            }
            Err(e) => (Vec::new(), Err(format!("not a valid object image: {e}"))),
        };
    }
    let Ok(source) = std::str::from_utf8(bytes) else {
        return (
            Vec::new(),
            Err("neither a wire buffer nor UTF-8 script source".to_owned()),
        );
    };
    match Program::parse(source) {
        Ok(p) => {
            let (mut lines, errors) = render(analyze_program(&p).diagnostics);
            if dump {
                push_disassembly(&mut lines, &p);
            }
            (lines, errors)
        }
        Err(e) => (Vec::new(), Err(format!("parse failed: {e}"))),
    }
}

fn push_disassembly(lines: &mut Vec<String>, p: &Program) {
    for line in p.compiled().disassemble().lines() {
        lines.push(line.to_owned());
    }
}

fn render(diagnostics: Vec<Diagnostic>) -> (Vec<String>, Result<usize, String>) {
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let lines = diagnostics.iter().map(Diagnostic::to_string).collect();
    (lines, Ok(errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom::core::{Acl, DataItem, Method, MethodBody, ObjectBuilder};
    use mrom::value::{IdGenerator, NodeId, Value};

    #[test]
    fn clean_script_is_clean() {
        let (lines, errors) = lint_bytes(b"param a; return a + 1;", false);
        assert!(lines.is_empty());
        assert_eq!(errors, Ok(0));
    }

    #[test]
    fn script_defects_are_reported() {
        let (lines, errors) = lint_bytes(b"return ghost;", false);
        assert_eq!(errors, Ok(1));
        assert!(lines[0].contains("undefined-variable"));
        // Warnings do not count as errors.
        let (lines, errors) = lint_bytes(b"param spare; return 1;", false);
        assert_eq!(errors, Ok(0));
        assert!(lines[0].contains("unused-param"));
    }

    #[test]
    fn unparsable_input_is_an_error() {
        assert!(lint_bytes(b"return (;", false).1.is_err());
        assert!(lint_bytes(&[0xff, 0xfe, 0x00], false).1.is_err());
    }

    #[test]
    fn dump_bytecode_appends_disassembly() {
        let (lines, errors) = lint_bytes(b"param a; return a + 1;", true);
        assert_eq!(errors, Ok(0));
        assert!(lines.iter().any(|l| l.contains("instrs")));
        assert!(lines.iter().any(|l| l.contains("return")));
    }

    #[test]
    fn dump_bytecode_covers_image_method_bodies() {
        let mut ids = IdGenerator::new(NodeId(6));
        let mut obj = ObjectBuilder::new(ids.next_id()).class("probe").build();
        let me = obj.id();
        obj.add_method(
            me,
            "work",
            Method::public(MethodBody::script("return 2 * 3;").unwrap()),
        )
        .unwrap();
        let image = obj.migration_image(me).unwrap();
        let (lines, errors) = lint_bytes(&image, true);
        assert_eq!(errors, Ok(0));
        assert!(lines
            .iter()
            .any(|l| l.contains("bytecode of method \"work\"")));
        assert!(lines.iter().any(|l| l.contains("instrs")));
    }

    #[test]
    fn images_are_cross_checked() {
        let mut ids = IdGenerator::new(NodeId(5));
        let mut obj = ObjectBuilder::new(ids.next_id())
            .class("shady")
            .fixed_data("present", DataItem::public(Value::Int(1)))
            .fixed_data(
                "sealed",
                DataItem::public(Value::Int(2)).with_read_acl(Acl::Nobody),
            )
            .build();
        let me = obj.id();
        obj.add_method(
            me,
            "bad",
            Method::public(
                MethodBody::script("return self.get(\"absent\") + self.get(\"sealed\");").unwrap(),
            ),
        )
        .unwrap();
        let image = obj.migration_image(me).unwrap();
        let (lines, errors) = lint_bytes(&image, false);
        assert_eq!(errors, Ok(2));
        assert!(lines.iter().any(|l| l.contains("dangling-data-item")));
        assert!(lines.iter().any(|l| l.contains("acl-unsatisfiable")));
        assert!(lines.iter().all(|l| l.contains("bad.body")));
    }
}
