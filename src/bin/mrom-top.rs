//! `mrom-top` — the observability console for the MROM reproduction.
//!
//! The runtime is a library, not a daemon, so there is no live process to
//! attach to: `mrom-top` instead drives a representative workload — a
//! two-site federation round trip with a metered (tower-wrapped) object,
//! a whole-object migration, and a persistence checkpoint — with the
//! [`mrom::obs`] recorder on, then renders what the recorder saw.
//!
//! ```text
//! mrom-top --snapshot            run the workload, print the metrics table
//! mrom-top --snapshot --json     same, as pretty JSON (schema mrom.metrics.v1)
//! mrom-top --watch [--frames N] [--top K]
//!                                windowed telemetry frames: top-K hot
//!                                objects, call matrix, link windows
//! mrom-top trace dump            run the workload, dump the flight recorder
//! mrom-top trace export --chrome [--check]
//!                                flight recorder as chrome://tracing JSON
//!                                (--check validates and prints a summary)
//! ```
//!
//! The same counters are reachable *from inside the model*: every object
//! answers the `getStats` and `getTelemetry` meta-methods, and
//! `mrom::core::stats_object` materializes a snapshot as an
//! introspectable read-only object (see `docs/OBSERVABILITY.md`).
//!
//! Exit code 0 on success, 1 on workload failure (including a poisoned
//! or otherwise unreadable runtime, surfaced as a caught panic), 2 on
//! usage errors.

use std::process::ExitCode;

use hadas::{AmbassadorSpec, Federation};
use mrom::core::{ClassSpec, DataItem, Method, MethodBody};
use mrom::net::{LinkConfig, NetworkConfig};
use mrom::obs::{ObsMode, TelemetrySnapshot, WindowConfig};
use mrom::value::{NodeId, ObjectId, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let run = match strs.as_slice() {
        ["--snapshot"] => cmd_snapshot(false),
        ["--snapshot", "--json"] | ["--json", "--snapshot"] => cmd_snapshot(true),
        ["--watch", rest @ ..] => match parse_watch(rest) {
            Some((frames, top)) => cmd_watch(frames, top),
            None => return usage(),
        },
        ["trace", "dump"] => cmd_trace_dump(),
        ["trace", "export", "--chrome"] => cmd_trace_export(false),
        ["trace", "export", "--chrome", "--check"] => cmd_trace_export(true),
        _ => return usage(),
    };
    match run {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("mrom-top: {msg}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mrom-top <--snapshot [--json] | --watch [--frames N] [--top K] \
         | trace dump | trace export --chrome [--check]>"
    );
    ExitCode::from(2)
}

/// Parses `--watch` tail flags: `--frames N` (default 3) and `--top K`
/// (default 5). Returns `None` on malformed input.
fn parse_watch(rest: &[&str]) -> Option<(usize, usize)> {
    let (mut frames, mut top) = (3usize, 5usize);
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = it.next()?.parse::<usize>().ok()?;
        match *flag {
            "--frames" if value >= 1 => frames = value,
            "--top" if value >= 1 => top = value,
            _ => return None,
        }
    }
    Some((frames, top))
}

/// Runs `work` with panics converted into errors, so a poisoned shared
/// runtime (a worker that died holding a shard) or any other unreadable
/// state exits non-zero with a message instead of a raw panic trace.
fn catch_workload<T>(
    work: impl FnOnce() -> Result<T, String> + std::panic::UnwindSafe,
) -> Result<T, String> {
    match std::panic::catch_unwind(work) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("opaque panic");
            Err(format!("runtime unreadable (workload panicked): {msg}"))
        }
    }
}

/// Runs the demo workload under `Full` recording and renders the metrics
/// snapshot — as a table, or with `--json` as pretty JSON on the stable
/// `mrom.metrics.v1` schema (split out for testing).
fn cmd_snapshot(json: bool) -> Result<String, String> {
    mrom::obs::reset();
    mrom::obs::set_mode(ObsMode::Full);
    let workload = catch_workload(run_workload);
    let out = if json {
        mrom::obs::snapshot_json_pretty()
    } else {
        render_table(&mrom::obs::snapshot_value())
    };
    mrom::obs::set_mode(ObsMode::Disabled);
    workload?;
    Ok(out)
}

/// Runs the demo workload under `Full` recording and dumps the flight
/// recorder (split out for testing).
fn cmd_trace_dump() -> Result<String, String> {
    mrom::obs::reset();
    mrom::obs::set_mode(ObsMode::Full);
    let workload = catch_workload(run_workload);
    let events = mrom::obs::ring_snapshot();
    let overwritten = mrom::obs::ring_overwritten();
    mrom::obs::set_mode(ObsMode::Disabled);
    workload?;
    let mut out = format!(
        "flight recorder: {} event(s), {} overwritten\n",
        events.len(),
        overwritten
    );
    for ev in &events {
        out.push_str(&format!("{ev}\n"));
    }
    Ok(out.trim_end().to_owned())
}

/// Runs the demo workload and exports the flight recorder in Chrome
/// `trace_event` format (load the output via `chrome://tracing` or
/// Perfetto). The export is always validated; `--check` prints the
/// validation summary instead of the JSON (split out for testing).
fn cmd_trace_export(check: bool) -> Result<String, String> {
    mrom::obs::reset();
    mrom::obs::set_mode(ObsMode::Full);
    let workload = catch_workload(run_workload);
    let events = mrom::obs::ring_snapshot();
    mrom::obs::set_mode(ObsMode::Disabled);
    workload?;
    let json = mrom::obs::chrome_trace(&events);
    let records = mrom::obs::validate_chrome_trace(&json)
        .map_err(|e| format!("invalid chrome trace: {e}"))?;
    if check {
        Ok(format!(
            "chrome trace ok: {records} record(s) from {} event(s)",
            events.len()
        ))
    } else {
        Ok(json)
    }
}

/// Drives a three-site federation in frames under windowed `Ring`
/// recording, rendering the sliding-window telemetry (top-K hot
/// objects, call matrix, link windows) after every frame — the closest
/// thing to a live `top` a library runtime can offer (split out for
/// testing).
fn cmd_watch(frames: usize, top: usize) -> Result<String, String> {
    mrom::obs::reset();
    mrom::obs::set_window(Some(WindowConfig::DEFAULT));
    mrom::obs::set_mode(ObsMode::Ring);
    let result = catch_workload(move || run_watch(frames, top));
    mrom::obs::set_mode(ObsMode::Disabled);
    mrom::obs::set_window(None);
    mrom::obs::reset();
    result
}

fn run_watch(frames: usize, top: usize) -> Result<String, String> {
    let fail = |e: hadas::HadasError| e.to_string();
    let cfg = NetworkConfig::new(42).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    let (a, b, c) = (NodeId(1), NodeId(2), NodeId(3));
    for n in [a, b, c] {
        fed.add_site(n).map_err(fail)?;
    }
    fed.link(a, b).map_err(fail)?;
    fed.link(a, c).map_err(fail)?;
    fed.link(b, c).map_err(fail)?;

    let adopt_svc = |fed: &mut Federation, at: NodeId| -> Result<ObjectId, String> {
        let rt = fed.runtime_mut(at).map_err(fail)?;
        let svc = ClassSpec::new("svc")
            .fixed_method(
                "ping",
                Method::public(MethodBody::script("return 7;").map_err(|e| e.to_string())?),
            )
            .instantiate_as(rt.ids_mut().next_id(), None);
        let id = svc.id();
        rt.adopt(svc).map_err(|e| e.to_string())?;
        Ok(id)
    };
    let svc_b = adopt_svc(&mut fed, b)?;
    let svc_c = adopt_svc(&mut fed, c)?;
    let local = adopt_svc(&mut fed, a)?;

    let mut out = String::new();
    let caller = ObjectId::SYSTEM;
    for frame in 1..=frames {
        // Each frame does a skewed batch: site B stays the hot spot.
        for _ in 0..3 {
            fed.remote_invoke(a, b, caller, svc_b, "ping", &[])
                .map_err(fail)?;
        }
        fed.remote_invoke(a, c, caller, svc_c, "ping", &[])
            .map_err(fail)?;
        fed.runtime_mut(a)
            .map_err(fail)?
            .invoke_as_system(local, "ping", &[])
            .map_err(|e| e.to_string())?;
        render_frame(
            &mut out,
            frame,
            frames,
            top,
            &mrom::obs::telemetry_snapshot(),
        );
    }
    Ok(out.trim_end().to_owned())
}

/// Renders one `--watch` frame from a telemetry snapshot.
fn render_frame(
    out: &mut String,
    frame: usize,
    frames: usize,
    top: usize,
    snap: &TelemetrySnapshot,
) {
    out.push_str(&format!(
        "frame {frame}/{frames}  virtual {} us  window {}\n",
        snap.now_us,
        snap.window.map_or_else(
            || "off".to_owned(),
            |w| format!("{}x{}us", w.epochs, w.epoch_micros)
        ),
    ));
    out.push_str(&format!(
        "hot objects (top {} of {}):\n",
        top.min(snap.objects.len()),
        snap.objects.len()
    ));
    for (id, p) in snap.hot_objects(top) {
        out.push_str(&format!(
            "  {id}  inv {}  err {}  fuel p50/p95 {}/{}  busy/1k {}\n",
            p.invocations,
            p.errors,
            p.fuel_p50,
            p.fuel_p95,
            p.busy_per_1k()
        ));
    }
    out.push_str("call matrix (src -> dst: count):\n");
    for ((src, dst), n) in &snap.calls {
        out.push_str(&format!("  {src} -> {dst}: {n}\n"));
    }
    out.push_str("links (delivered/dropped, bytes, latency p50/p95 us):\n");
    for ((src, dst), p) in &snap.links {
        out.push_str(&format!(
            "  {src} -> {dst}: {}/{}  {}B  {}/{}\n",
            p.delivered, p.dropped, p.bytes, p.latency_p50_us, p.latency_p95_us
        ));
    }
    out.push('\n');
}

/// A workload touching every instrumented layer: level-0 dispatch, a
/// meta-invoke tower, migration, federation traffic, and an ambassador
/// relay.
fn run_workload() -> Result<(), String> {
    let fail = |e: hadas::HadasError| e.to_string();
    let cfg = NetworkConfig::new(42).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    let home = NodeId(1);
    let away = NodeId(2);
    fed.add_site(home).map_err(fail)?;
    fed.add_site(away).map_err(fail)?;
    fed.link(home, away).map_err(fail)?;

    // A database APO at `away` exporting one method; the other relays.
    let apo_class = ClassSpec::new("demo-db")
        .fixed_data("rows", DataItem::public(Value::Int(3)))
        .fixed_method(
            "count",
            Method::public(
                MethodBody::script("return self.get(\"rows\");").map_err(|e| e.to_string())?,
            ),
        )
        .fixed_method(
            "sum",
            Method::public(
                MethodBody::script("param a; param b; return a + b;").map_err(|e| e.to_string())?,
            ),
        );
    let apo = apo_class.instantiate_as(
        fed.runtime_mut(away).map_err(fail)?.ids_mut().next_id(),
        None,
    );
    let spec = AmbassadorSpec::relay_only()
        .with_methods(["count"])
        .with_data(["rows"]);
    fed.integrate_apo(away, "db", apo, spec).map_err(fail)?;
    let amb = fed.import_apo(home, away, "db").map_err(fail)?;
    let caller = fed.runtime_mut(home).map_err(fail)?.ids_mut().next_id();
    // Local (migrated) call, then a relayed call over the wire.
    fed.call_through_ambassador(home, caller, amb, "count", &[])
        .map_err(fail)?;
    fed.call_through_ambassador(home, caller, amb, "sum", &[Value::Int(20), Value::Int(22)])
        .map_err(fail)?;

    // A metered agent: tower-wrapped dispatch, then a whole-object hop.
    let agent_class = ClassSpec::new("agent")
        .fixed_data("trips", DataItem::public(Value::Int(0)))
        .fixed_method(
            "work",
            Method::public(MethodBody::script("return 7 * 6;").map_err(|e| e.to_string())?),
        );
    let rt = fed.runtime_mut(home).map_err(fail)?;
    let agent = agent_class.instantiate_as(rt.ids_mut().next_id(), None);
    let agent_id = agent.id();
    rt.adopt(agent).map_err(|e| e.to_string())?;
    rt.object_mut(agent_id)
        .ok_or("agent vanished")?
        .add_method(
            agent_id,
            "meter",
            Method::public(
                MethodBody::script("param m; param a; return self.invoke(m, a);")
                    .map_err(|e| e.to_string())?,
            ),
        )
        .map_err(|e| e.to_string())?;
    rt.object_mut(agent_id)
        .ok_or("agent vanished")?
        .install_meta_invoke(agent_id, "meter")
        .map_err(|e| e.to_string())?;
    rt.invoke_as_system(agent_id, "work", &[])
        .map_err(|e| e.to_string())?;
    fed.dispatch_object(home, away, agent_id).map_err(fail)?;

    // Persistence: the travelled agent checkpoints itself at `away`.
    let mut depot = mrom::persist::Depot::new(mrom::persist::MemStore::new());
    let rt = fed.runtime(away).map_err(fail)?;
    let obj = rt.object(agent_id).ok_or("agent did not arrive")?;
    depot.save(&obj).map_err(|e| e.to_string())?;
    depot.restore(agent_id).map_err(|e| e.to_string())?;
    Ok(())
}

/// Renders a metrics snapshot value tree as an indented table, eliding
/// histogram bucket arrays (split out for testing).
fn render_table(snapshot: &Value) -> String {
    let mut out = String::from("mrom-top metrics snapshot\n");
    render_into(&mut out, snapshot, 0);
    out.trim_end().to_owned()
}

fn render_into(out: &mut String, v: &Value, depth: usize) {
    let pad = "  ".repeat(depth);
    match v {
        Value::Map(entries) => {
            for (key, val) in entries {
                match val {
                    Value::Map(_) => {
                        out.push_str(&format!("{pad}{key}:\n"));
                        render_into(out, val, depth + 1);
                    }
                    Value::List(items) if key == "buckets" => {
                        let populated =
                            items.iter().filter(|b| !matches!(b, Value::Int(0))).count();
                        out.push_str(&format!("{pad}{key}: {populated} populated\n"));
                    }
                    other => out.push_str(&format!("{pad}{key}: {other}\n")),
                }
            }
        }
        other => out.push_str(&format!("{pad}{other}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_runs_the_workload_and_reports_counters() {
        let out = cmd_snapshot(false).unwrap();
        assert!(out.contains("invoke:"), "{out}");
        assert!(out.contains("federation:"), "{out}");
        assert!(out.contains("invocations:"), "{out}");
        // The workload performed real work, so counters are nonzero.
        assert!(!out.contains("invocations: 0\n"), "{out}");
    }

    #[test]
    fn snapshot_json_is_machine_readable_and_schema_stamped() {
        let out = cmd_snapshot(true).unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"schema\""), "{out}");
        assert!(out.contains("mrom.metrics.v1"), "{out}");
        assert!(out.contains("\"metrics\""), "{out}");
        assert!(out.contains("\"federation\""), "{out}");
    }

    #[test]
    fn trace_dump_shows_federation_and_tower_events() {
        let out = cmd_trace_dump().unwrap();
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains("fed_send"), "{out}");
        assert!(out.contains("invoke_start"), "{out}");
        assert!(out.contains("tower_descend"), "{out}");
        assert!(out.contains("object_dispatched"), "{out}");
    }

    #[test]
    fn render_table_elides_buckets() {
        let v = Value::map([(
            "invoke",
            Value::map([(
                "latency_ns",
                Value::map([(
                    "buckets",
                    Value::list([Value::Int(0), Value::Int(3), Value::Int(0)]),
                )]),
            )]),
        )]);
        let out = render_table(&v);
        assert!(out.contains("buckets: 1 populated"), "{out}");
    }

    #[test]
    fn watch_renders_hot_objects_and_call_matrix() {
        let out = cmd_watch(2, 3).unwrap();
        assert!(out.contains("frame 1/2"), "{out}");
        assert!(out.contains("frame 2/2"), "{out}");
        assert!(out.contains("hot objects (top 3 of"), "{out}");
        assert!(out.contains("call matrix"), "{out}");
        assert!(out.contains("n1 -> n2:"), "{out}");
        assert!(out.contains("links"), "{out}");
        // The window keeps accumulating: frame 2 sees more invocations
        // of the hot object than frame 1.
        assert!(out.contains("inv 3"), "{out}");
        assert!(out.contains("inv 6"), "{out}");
    }

    #[test]
    fn watch_flag_parsing_rejects_garbage() {
        assert_eq!(parse_watch(&[]), Some((3, 5)));
        assert_eq!(parse_watch(&["--frames", "7"]), Some((7, 5)));
        assert_eq!(parse_watch(&["--top", "2", "--frames", "1"]), Some((1, 2)));
        assert_eq!(parse_watch(&["--frames"]), None);
        assert_eq!(parse_watch(&["--frames", "0"]), None);
        assert_eq!(parse_watch(&["--bogus", "3"]), None);
    }

    #[test]
    fn chrome_export_is_valid_and_checkable() {
        let json = cmd_trace_export(false).unwrap();
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"invoke "), "{json}");
        let summary = cmd_trace_export(true).unwrap();
        assert!(summary.starts_with("chrome trace ok:"), "{summary}");
    }

    #[test]
    fn workload_panics_become_errors() {
        let out: Result<(), String> = catch_workload(|| panic!("shard poisoned"));
        let msg = out.unwrap_err();
        assert!(msg.contains("runtime unreadable"), "{msg}");
        assert!(msg.contains("shard poisoned"), "{msg}");
    }
}
