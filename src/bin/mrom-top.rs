//! `mrom-top` — the observability console for the MROM reproduction.
//!
//! The runtime is a library, not a daemon, so there is no live process to
//! attach to: `mrom-top` instead drives a representative workload — a
//! two-site federation round trip with a metered (tower-wrapped) object,
//! a whole-object migration, and a persistence checkpoint — with the
//! [`mrom::obs`] recorder on, then renders what the recorder saw.
//!
//! ```text
//! mrom-top --snapshot          run the workload, print the metrics table
//! mrom-top --snapshot --json   same, as pretty-printed JSON
//! mrom-top trace dump          run the workload, dump the flight recorder
//! ```
//!
//! The same counters are reachable *from inside the model*: every object
//! answers the `getStats` meta-method, and `mrom::core::stats_object`
//! materializes a snapshot as an introspectable read-only object (see
//! `docs/OBSERVABILITY.md`).
//!
//! Exit code 0 on success, 1 on workload failure, 2 on usage errors.

use std::process::ExitCode;

use hadas::{AmbassadorSpec, Federation};
use mrom::core::{ClassSpec, DataItem, Method, MethodBody};
use mrom::net::{LinkConfig, NetworkConfig};
use mrom::obs::ObsMode;
use mrom::value::{NodeId, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let run = match strs.as_slice() {
        ["--snapshot"] => cmd_snapshot(false),
        ["--snapshot", "--json"] | ["--json", "--snapshot"] => cmd_snapshot(true),
        ["trace", "dump"] => cmd_trace_dump(),
        _ => {
            eprintln!("usage: mrom-top <--snapshot [--json] | trace dump>");
            return ExitCode::from(2);
        }
    };
    match run {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("mrom-top: {msg}");
            ExitCode::from(1)
        }
    }
}

/// Runs the demo workload under `Full` recording and renders the metrics
/// snapshot (split out for testing).
fn cmd_snapshot(json: bool) -> Result<String, String> {
    mrom::obs::reset();
    mrom::obs::set_mode(ObsMode::Full);
    let workload = run_workload();
    let out = if json {
        mrom::obs::snapshot_json_pretty()
    } else {
        render_table(&mrom::obs::snapshot_value())
    };
    mrom::obs::set_mode(ObsMode::Disabled);
    workload?;
    Ok(out)
}

/// Runs the demo workload under `Full` recording and dumps the flight
/// recorder (split out for testing).
fn cmd_trace_dump() -> Result<String, String> {
    mrom::obs::reset();
    mrom::obs::set_mode(ObsMode::Full);
    let workload = run_workload();
    let events = mrom::obs::ring_snapshot();
    let overwritten = mrom::obs::ring_overwritten();
    mrom::obs::set_mode(ObsMode::Disabled);
    workload?;
    let mut out = format!(
        "flight recorder: {} event(s), {} overwritten\n",
        events.len(),
        overwritten
    );
    for ev in &events {
        out.push_str(&format!("{ev}\n"));
    }
    Ok(out.trim_end().to_owned())
}

/// A workload touching every instrumented layer: level-0 dispatch, a
/// meta-invoke tower, migration, federation traffic, and an ambassador
/// relay.
fn run_workload() -> Result<(), String> {
    let fail = |e: hadas::HadasError| e.to_string();
    let cfg = NetworkConfig::new(42).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    let home = NodeId(1);
    let away = NodeId(2);
    fed.add_site(home).map_err(fail)?;
    fed.add_site(away).map_err(fail)?;
    fed.link(home, away).map_err(fail)?;

    // A database APO at `away` exporting one method; the other relays.
    let apo_class = ClassSpec::new("demo-db")
        .fixed_data("rows", DataItem::public(Value::Int(3)))
        .fixed_method(
            "count",
            Method::public(
                MethodBody::script("return self.get(\"rows\");").map_err(|e| e.to_string())?,
            ),
        )
        .fixed_method(
            "sum",
            Method::public(
                MethodBody::script("param a; param b; return a + b;").map_err(|e| e.to_string())?,
            ),
        );
    let apo = apo_class.instantiate_as(
        fed.runtime_mut(away).map_err(fail)?.ids_mut().next_id(),
        None,
    );
    let spec = AmbassadorSpec::relay_only()
        .with_methods(["count"])
        .with_data(["rows"]);
    fed.integrate_apo(away, "db", apo, spec).map_err(fail)?;
    let amb = fed.import_apo(home, away, "db").map_err(fail)?;
    let caller = fed.runtime_mut(home).map_err(fail)?.ids_mut().next_id();
    // Local (migrated) call, then a relayed call over the wire.
    fed.call_through_ambassador(home, caller, amb, "count", &[])
        .map_err(fail)?;
    fed.call_through_ambassador(home, caller, amb, "sum", &[Value::Int(20), Value::Int(22)])
        .map_err(fail)?;

    // A metered agent: tower-wrapped dispatch, then a whole-object hop.
    let agent_class = ClassSpec::new("agent")
        .fixed_data("trips", DataItem::public(Value::Int(0)))
        .fixed_method(
            "work",
            Method::public(MethodBody::script("return 7 * 6;").map_err(|e| e.to_string())?),
        );
    let rt = fed.runtime_mut(home).map_err(fail)?;
    let agent = agent_class.instantiate_as(rt.ids_mut().next_id(), None);
    let agent_id = agent.id();
    rt.adopt(agent).map_err(|e| e.to_string())?;
    rt.object_mut(agent_id)
        .ok_or("agent vanished")?
        .add_method(
            agent_id,
            "meter",
            Method::public(
                MethodBody::script("param m; param a; return self.invoke(m, a);")
                    .map_err(|e| e.to_string())?,
            ),
        )
        .map_err(|e| e.to_string())?;
    rt.object_mut(agent_id)
        .ok_or("agent vanished")?
        .install_meta_invoke(agent_id, "meter")
        .map_err(|e| e.to_string())?;
    rt.invoke_as_system(agent_id, "work", &[])
        .map_err(|e| e.to_string())?;
    fed.dispatch_object(home, away, agent_id).map_err(fail)?;

    // Persistence: the travelled agent checkpoints itself at `away`.
    let mut depot = mrom::persist::Depot::new(mrom::persist::MemStore::new());
    let rt = fed.runtime(away).map_err(fail)?;
    let obj = rt.object(agent_id).ok_or("agent did not arrive")?;
    depot.save(&obj).map_err(|e| e.to_string())?;
    depot.restore(agent_id).map_err(|e| e.to_string())?;
    Ok(())
}

/// Renders a metrics snapshot value tree as an indented table, eliding
/// histogram bucket arrays (split out for testing).
fn render_table(snapshot: &Value) -> String {
    let mut out = String::from("mrom-top metrics snapshot\n");
    render_into(&mut out, snapshot, 0);
    out.trim_end().to_owned()
}

fn render_into(out: &mut String, v: &Value, depth: usize) {
    let pad = "  ".repeat(depth);
    match v {
        Value::Map(entries) => {
            for (key, val) in entries {
                match val {
                    Value::Map(_) => {
                        out.push_str(&format!("{pad}{key}:\n"));
                        render_into(out, val, depth + 1);
                    }
                    Value::List(items) if key == "buckets" => {
                        let populated =
                            items.iter().filter(|b| !matches!(b, Value::Int(0))).count();
                        out.push_str(&format!("{pad}{key}: {populated} populated\n"));
                    }
                    other => out.push_str(&format!("{pad}{key}: {other}\n")),
                }
            }
        }
        other => out.push_str(&format!("{pad}{other}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_runs_the_workload_and_reports_counters() {
        let out = cmd_snapshot(false).unwrap();
        assert!(out.contains("invoke:"), "{out}");
        assert!(out.contains("federation:"), "{out}");
        assert!(out.contains("invocations:"), "{out}");
        // The workload performed real work, so counters are nonzero.
        assert!(!out.contains("invocations: 0\n"), "{out}");
    }

    #[test]
    fn snapshot_json_is_machine_readable() {
        let out = cmd_snapshot(true).unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"metrics\""), "{out}");
        assert!(out.contains("\"federation\""), "{out}");
    }

    #[test]
    fn trace_dump_shows_federation_and_tower_events() {
        let out = cmd_trace_dump().unwrap();
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains("fed_send"), "{out}");
        assert!(out.contains("invoke_start"), "{out}");
        assert!(out.contains("tower_descend"), "{out}");
        assert!(out.contains("object_dispatched"), "{out}");
    }

    #[test]
    fn render_table_elides_buckets() {
        let v = Value::map([(
            "invoke",
            Value::map([(
                "latency_ns",
                Value::map([(
                    "buckets",
                    Value::list([Value::Int(0), Value::Int(3), Value::Int(0)]),
                )]),
            )]),
        )]);
        let out = render_table(&v);
        assert!(out.contains("buckets: 1 populated"), "{out}");
    }
}
