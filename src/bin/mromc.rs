//! `mromc` — developer tooling for mobile objects, the "tools ... to aid
//! in the design and implementation of applications" the paper lists as
//! future work (§6).
//!
//! ```text
//! mromc check <file>      parse a script method body; report errors with lines
//! mromc fmt <file>        parse and pretty-print a script (canonical form)
//! mromc inspect <image>   describe a migration image (identity, sections, tower)
//! mromc wire <image>      dump the raw value tree of any wire buffer
//! ```
//!
//! Exit code 0 on success, 1 on bad input, 2 on usage errors.

use std::process::ExitCode;

use mrom::core::MromObject;
use mrom::script::Program;
use mrom::value::{wire, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: mromc <check|fmt|inspect|wire> <file>");
            return ExitCode::from(2);
        }
    };
    let run = match cmd {
        "check" => cmd_check(path),
        "fmt" => cmd_fmt(path),
        "inspect" => cmd_inspect(path),
        "wire" => cmd_wire(path),
        other => {
            eprintln!("mromc: unknown command {other:?}");
            return ExitCode::from(2);
        }
    };
    match run {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("mromc: {msg}");
            ExitCode::from(1)
        }
    }
}

fn read_text(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn read_bytes(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_check(path: &str) -> Result<String, String> {
    let source = read_text(path)?;
    check_source(&source)
}

/// Parses a script and reports a summary (split out for testing).
fn check_source(source: &str) -> Result<String, String> {
    match Program::parse(source) {
        Ok(p) => Ok(format!(
            "ok: {} parameter(s), {} top-level statement(s), {} ast node(s)",
            p.params().len(),
            p.body().len(),
            p.node_count()
        )),
        Err(e) => Err(format!("parse failed: {e}")),
    }
}

fn cmd_fmt(path: &str) -> Result<String, String> {
    let source = read_text(path)?;
    fmt_source(&source)
}

/// Pretty-prints a script in canonical form (split out for testing).
fn fmt_source(source: &str) -> Result<String, String> {
    let p = Program::parse(source).map_err(|e| format!("parse failed: {e}"))?;
    Ok(p.to_string())
}

fn cmd_inspect(path: &str) -> Result<String, String> {
    let bytes = read_bytes(path)?;
    inspect_image(&bytes)
}

/// Describes a migration image (split out for testing).
fn inspect_image(bytes: &[u8]) -> Result<String, String> {
    let obj = MromObject::from_image(bytes).map_err(|e| format!("not a valid image: {e}"))?;
    let me = obj.id();
    let mut out = String::new();
    out.push_str(&format!("object   {}\n", obj.id()));
    out.push_str(&format!("origin   {}\n", obj.origin()));
    out.push_str(&format!("class    {}\n", obj.class_name()));
    out.push_str(&format!("mobile   {}\n", obj.is_mobile()));
    out.push_str(&format!("items    {}\n", obj.item_count()));
    out.push_str("data:\n");
    for (name, section) in obj.list_data(me) {
        let value = obj
            .read_data(me, &name)
            .map_or_else(|_| "<unreadable>".to_owned(), |v| v.to_string());
        let shown: String = value.chars().take(48).collect();
        out.push_str(&format!("  [{}] {name} = {shown}\n", section.name()));
    }
    out.push_str("methods:\n");
    for (name, section) in obj.list_methods(me) {
        out.push_str(&format!("  [{}] {name}\n", section.name()));
    }
    if !obj.tower().is_empty() {
        out.push_str(&format!("tower    {:?} (topmost last)\n", obj.tower()));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_wire(path: &str) -> Result<String, String> {
    let bytes = read_bytes(path)?;
    dump_wire(&bytes)
}

/// Dumps any framed wire buffer as a value tree (split out for testing).
fn dump_wire(bytes: &[u8]) -> Result<String, String> {
    let v: Value = wire::decode(bytes).map_err(|e| format!("not a wire buffer: {e}"))?;
    Ok(format!(
        "{} bytes, tree size {}, depth {}\n{v}",
        bytes.len(),
        v.tree_size(),
        v.depth()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom::core::{DataItem, Method, MethodBody, ObjectBuilder};
    use mrom::value::{IdGenerator, NodeId};

    #[test]
    fn check_reports_shape_and_errors() {
        let out = check_source("param a; return a + 1;").unwrap();
        assert!(out.contains("1 parameter(s)"));
        assert!(out.contains("1 top-level statement(s)"));
        let err = check_source("return (;").unwrap_err();
        assert!(err.contains("parse failed"));
        assert!(err.contains("line 1"));
    }

    #[test]
    fn fmt_is_canonical_and_idempotent() {
        let messy = "param a;let x=a+1;if(x>2){return x;}else{return 0;}";
        let once = fmt_source(messy).unwrap();
        let twice = fmt_source(&once).unwrap();
        assert_eq!(once, twice);
        assert!(once.contains("let x = a + 1;"));
    }

    #[test]
    fn inspect_describes_an_image() {
        let mut ids = IdGenerator::new(NodeId(3));
        let mut obj = ObjectBuilder::new(ids.next_id())
            .class("probe")
            .fixed_data("x", DataItem::public(Value::Int(7)))
            .fixed_method(
                "m",
                Method::public(MethodBody::script("return 1;").unwrap()),
            )
            .build();
        let me = obj.id();
        obj.add_method(
            me,
            "mi",
            Method::public(MethodBody::script("param a; param b; return 0;").unwrap()),
        )
        .unwrap();
        obj.install_meta_invoke(me, "mi").unwrap();
        let image = obj.migration_image(me).unwrap();
        let out = inspect_image(&image).unwrap();
        assert!(out.contains("class    probe"));
        assert!(out.contains("[fixed] x = 7"));
        assert!(out.contains("[fixed] m"));
        assert!(out.contains("[extensible] mi"));
        assert!(out.contains("tower"));
        assert!(inspect_image(b"garbage").is_err());
    }

    #[test]
    fn wire_dump_round_trips_any_buffer() {
        let v = Value::map([("k", Value::list([Value::Int(1), Value::from("two")]))]);
        let bytes = wire::encode(&v);
        let out = dump_wire(&bytes).unwrap();
        assert!(out.contains("tree size"));
        assert!(out.contains("\"two\""));
        assert!(dump_wire(b"nope").is_err());
    }
}
