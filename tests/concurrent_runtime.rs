//! Hammer tests for the concurrent sharded site runtime
//! ([`mrom::core::SharedRuntime`]): genuine OS-thread parallelism over
//! one object table.
//!
//! Three properties, straight from the checkout protocol's contract:
//!
//! 1. **Disjoint objects**: N threads invoking over disjoint objects
//!    produce final state identical, object for object, to the same
//!    workload run sequentially — parallelism is unobservable when no
//!    object is shared.
//! 2. **Same-object contention**: concurrent invokes of one object only
//!    ever yield `Ok` or [`MromError::ObjectBusy`]; every success is
//!    durably visible (the final counter equals the success count).
//! 3. **Dispatch-cache coherence**: a storm of `addMethod` against
//!    concurrent invocations never observes a stale dispatch-cache hit —
//!    once an add is acknowledged, every thread sees the method (or a
//!    clean `ObjectBusy`), never "no such method" and never a wrong
//!    body's result.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

/// Reads a width knob from the environment (CI's release hammer step
/// widens the run; the debug tier-1 default stays fast on small hosts).
fn knob(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

use mrom::core::{
    DataItem, Method, MethodBody, MromError, MromObject, ObjectBuilder, Runtime, SharedRuntime,
};
use mrom::value::{NodeId, ObjectId, Value};

const THREADS: usize = 8;

/// Invocations per thread in the disjoint hammer — `MROM_HAMMER_OPS`
/// raises it to the full 10k width in CI's release hammer step.
fn ops_per_thread() -> usize {
    knob("MROM_HAMMER_OPS", 500)
}

/// The canonical script counter (script bodies so the whole object —
/// state *and* behaviour — serializes for byte-level comparison).
fn counter(id: ObjectId) -> MromObject {
    ObjectBuilder::new(id)
        .class("hammer-counter")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "bump",
            Method::public(
                MethodBody::script(
                    "self.set(\"count\", self.get(\"count\") + 1); return self.get(\"count\");",
                )
                .expect("bump parses"),
            ),
        )
        .build()
}

#[test]
fn disjoint_objects_parallel_equals_sequential_object_for_object() {
    // Parallel world: THREADS objects, one hammering thread each.
    let ops_per_thread = ops_per_thread();
    let shared = SharedRuntime::new(NodeId(9));
    let ids: Vec<ObjectId> = (0..THREADS)
        .map(|_| {
            shared
                .adopt(counter(shared.ids().next_id()))
                .expect("adopts")
        })
        .collect();
    thread::scope(|s| {
        for id in &ids {
            s.spawn(|| {
                for _ in 0..ops_per_thread {
                    shared
                        .invoke(ObjectId::SYSTEM, *id, "bump", &[])
                        .expect("disjoint objects never contend");
                }
            });
        }
    });

    // Sequential world: same node → the id generator mints the same id
    // stream, so objects pair up by identity.
    let mut rt = Runtime::new(NodeId(9));
    let seq_ids: Vec<ObjectId> = (0..THREADS)
        .map(|_| {
            let id = rt.ids_mut().next_id();
            rt.adopt(counter(id)).expect("adopts")
        })
        .collect();
    assert_eq!(ids, seq_ids, "same seed, same id stream");
    for id in &seq_ids {
        for _ in 0..ops_per_thread {
            rt.invoke(ObjectId::SYSTEM, *id, "bump", &[]).unwrap();
        }
    }

    for id in &ids {
        let parallel = shared
            .object(*id)
            .expect("object survives the hammer")
            .image_value()
            .expect("serializes");
        let sequential = rt.object(*id).unwrap().image_value().unwrap();
        assert_eq!(
            parallel, sequential,
            "object {id} diverged from the sequential run"
        );
    }
}

#[test]
fn same_object_contention_yields_only_ok_or_object_busy() {
    let shared = SharedRuntime::new(NodeId(10));
    let id = shared.adopt(counter(shared.ids().next_id())).unwrap();
    let attempts_per_thread = knob("MROM_HAMMER_ATTEMPTS", 400);

    let oks = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..attempts_per_thread {
                    match shared.invoke(ObjectId::SYSTEM, id, "bump", &[]) {
                        Ok(_) => {
                            oks.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(MromError::ObjectBusy(busy)) => assert_eq!(busy, id),
                        Err(other) => panic!("contention produced {other:?}"),
                    }
                }
            });
        }
    });

    let oks = oks.load(Ordering::Relaxed);
    assert!(oks >= 1, "at least one invocation must win each race");
    let count = shared
        .object(id)
        .unwrap()
        .read_data(ObjectId::SYSTEM, "count")
        .unwrap();
    assert_eq!(
        count,
        Value::Int(i64::try_from(oks).unwrap()),
        "every acknowledged bump is durably visible, exactly once"
    );
}

#[test]
fn add_method_invoke_storm_never_sees_stale_dispatch_cache() {
    let shared = SharedRuntime::new(NodeId(11));
    let obj = ObjectBuilder::new(shared.ids().next_id())
        .class("hammer-extensible")
        .build();
    let id = shared.adopt(obj).unwrap();
    let methods = knob("MROM_HAMMER_METHODS", 48);
    // Highest method index whose addMethod has been *acknowledged*
    // (0 = none yet). Published only after the add returns Ok.
    let published = AtomicUsize::new(0);

    thread::scope(|s| {
        // Writer: grow the extensible method section one method at a
        // time, retrying when a reader holds the object checked out.
        // `addMethod` is meta-ACL-guarded, so the object itself (its own
        // origin) is the caller.
        s.spawn(|| {
            for k in 0..methods {
                let args = [
                    Value::from(format!("m_{k}")),
                    Value::map([
                        ("body", Value::from(format!("return {k};"))),
                        ("invoke_acl", Value::from("public")),
                    ]),
                ];
                loop {
                    match shared.invoke(id, id, "addMethod", &args) {
                        Ok(_) => break,
                        // Sleep, don't spin: on a single-CPU host a
                        // yield loop starves the thread holding the
                        // checkout and the storm never makes progress.
                        Err(MromError::ObjectBusy(_)) => {
                            thread::sleep(Duration::from_micros(20));
                        }
                        Err(other) => panic!("addMethod failed: {other:?}"),
                    }
                }
                published.store(k + 1, Ordering::SeqCst);
            }
        });
        // Readers: probe every newly acknowledged method exactly once,
        // retrying only through `ObjectBusy`. A stale dispatch-cache
        // view would surface as NoSuchMethod (the add vanished) or a
        // wrong integer (an old body's result) — both fail loudly.
        for _ in 0..THREADS - 1 {
            s.spawn(|| {
                let mut observed = 0usize;
                while observed < methods {
                    let p = published.load(Ordering::SeqCst);
                    if p <= observed {
                        thread::sleep(Duration::from_micros(20));
                        continue;
                    }
                    observed = p;
                    let k = p - 1;
                    loop {
                        match shared.invoke(ObjectId::SYSTEM, id, &format!("m_{k}"), &[]) {
                            Ok(v) => {
                                assert_eq!(
                                    v,
                                    Value::Int(i64::try_from(k).unwrap()),
                                    "stale body served for m_{k}"
                                );
                                break;
                            }
                            Err(MromError::ObjectBusy(_)) => {
                                thread::sleep(Duration::from_micros(20));
                            }
                            Err(other) => {
                                panic!("stale dispatch view for m_{k} (published={p}): {other:?}")
                            }
                        }
                    }
                }
            });
        }
    });

    // Quiesced: every method is visible and correct.
    for k in 0..methods {
        assert_eq!(
            shared
                .invoke(ObjectId::SYSTEM, id, &format!("m_{k}"), &[])
                .unwrap(),
            Value::Int(i64::try_from(k).unwrap())
        );
    }
}
