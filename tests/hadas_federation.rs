//! Integration tests for the HADAS layer: federation bring-up at scale,
//! mixed splits, failure injection, and multi-APO coordination.

use mrom::core::{ClassSpec, DataItem, Method, MethodBody};
use mrom::hadas::scenarios::{
    deploy_employee_db, employee_db_class, lift_maintenance_notice, push_maintenance_notice,
    star_federation,
};
use mrom::hadas::{AmbassadorSpec, Federation, HadasError, UpdateOp};
use mrom::net::{LinkConfig, NetworkConfig};
use mrom::value::{NodeId, Value};

#[test]
fn ten_site_star_brings_up_and_queries() {
    let (mut fed, nodes) = star_federation(1, 10, LinkConfig::lan()).unwrap();
    let hub = nodes[0];
    let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
    assert_eq!(ambs.len(), 9);
    for &(spoke, amb) in &ambs {
        let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
        assert_eq!(
            fed.call_through_ambassador(spoke, client, amb, "count", &[])
                .unwrap(),
            Value::Int(4)
        );
    }
    // Every site agrees on the topology.
    assert_eq!(fed.site_stats(hub).unwrap().deployed, 9);
    assert_eq!(fed.site_stats(hub).unwrap().links, 9);
    for &spoke in &nodes[1..] {
        let s = fed.site_stats(spoke).unwrap();
        assert_eq!(s.guests, 1);
        assert_eq!(s.links, 1);
    }
}

#[test]
fn mixed_splits_route_correctly_per_method() {
    let (mut fed, nodes) = star_federation(2, 2, LinkConfig::lan()).unwrap();
    let (hub, spoke) = (nodes[0], nodes[1]);
    let apo =
        employee_db_class().instantiate_as(fed.runtime_mut(hub).unwrap().ids_mut().next_id(), None);
    fed.integrate_apo(
        hub,
        "employee-db",
        apo,
        AmbassadorSpec::relay_only()
            .with_methods(["count", "salary_of"])
            .with_data(["employees"]),
    )
    .unwrap();
    let amb = fed.import_apo(spoke, hub, "employee-db").unwrap();
    let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();

    // Two local, one relayed.
    let base = fed.net_stats().messages_sent;
    fed.call_through_ambassador(spoke, client, amb, "count", &[])
        .unwrap();
    fed.call_through_ambassador(spoke, client, amb, "salary_of", &[Value::from("dave")])
        .unwrap();
    assert_eq!(
        fed.net_stats().messages_sent,
        base,
        "local methods cost no traffic"
    );
    fed.call_through_ambassador(spoke, client, amb, "department_total", &[Value::from("db")])
        .unwrap();
    assert_eq!(
        fed.net_stats().messages_sent,
        base + 2,
        "one relayed call = request + response"
    );
    // A method that exists nowhere fails cleanly.
    assert!(matches!(
        fed.call_through_ambassador(spoke, client, amb, "ghost", &[]),
        Err(HadasError::Model(_))
    ));
}

#[test]
fn maintenance_covers_relayed_methods_during_partition() {
    let (mut fed, nodes) = star_federation(3, 3, LinkConfig::wan()).unwrap();
    let hub = nodes[0];
    let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
    push_maintenance_notice(&mut fed, hub).unwrap();
    for &spoke in &nodes[1..] {
        fed.net_config_mut().partition(hub, spoke);
    }
    for &(spoke, amb) in &ambs {
        let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
        // Both the local method and the normally-relayed method answer
        // instantly with the notice; zero failed client calls.
        for (m, args) in [("count", vec![]), ("salary_of", vec![Value::from("alice")])] {
            let out = fed
                .call_through_ambassador(spoke, client, amb, m, &args)
                .unwrap();
            assert_eq!(out, Value::from("database is down for maintenance"));
        }
    }
    for &spoke in &nodes[1..] {
        fed.net_config_mut().heal(hub, spoke);
    }
    lift_maintenance_notice(&mut fed, hub).unwrap();
    let (spoke, amb) = ambs[0];
    let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
    assert_eq!(
        fed.call_through_ambassador(spoke, client, amb, "salary_of", &[Value::from("alice")])
            .unwrap(),
        Value::Int(120)
    );
}

#[test]
fn lossy_network_eventually_times_out_but_state_stays_consistent() {
    // 100% loss: every synchronous operation times out cleanly.
    let cfg = NetworkConfig::new(4).with_default_link(LinkConfig::lan().loss_probability(1.0));
    let mut fed = Federation::new(cfg);
    fed.add_site(NodeId(1)).unwrap();
    fed.add_site(NodeId(2)).unwrap();
    assert!(matches!(
        fed.link(NodeId(1), NodeId(2)),
        Err(HadasError::Timeout { .. })
    ));
    assert!(!fed.is_linked(NodeId(1), NodeId(2)));
}

#[test]
fn update_push_is_idempotent_per_op_semantics() {
    let (mut fed, nodes) = star_federation(5, 2, LinkConfig::lan()).unwrap();
    let hub = nodes[0];
    let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
    let (spoke, amb) = ambs[0];
    // First add succeeds.
    fed.push_update(
        hub,
        "employee-db",
        &[UpdateOp::AddData("version".into(), Value::Int(1))],
    )
    .unwrap();
    // Second identical add collides remotely (duplicate item) — the error
    // comes back as a remote failure, not a hang or silent overwrite.
    assert!(matches!(
        fed.push_update(
            hub,
            "employee-db",
            &[UpdateOp::AddData("version".into(), Value::Int(2))],
        ),
        Err(HadasError::Remote(_))
    ));
    // Set (value write) is the idempotent form.
    fed.push_update(
        hub,
        "employee-db",
        &[UpdateOp::SetData("version".into(), Value::Int(2))],
    )
    .unwrap();
    // Pushed items default to origin-private: the origin APO reads them,
    // local clients at the hosting site do not.
    let apo_id = fed.apo_id(hub, "employee-db").unwrap();
    let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
    let guest = fed.runtime(spoke).unwrap().object(amb).unwrap();
    assert_eq!(guest.read_data(apo_id, "version").unwrap(), Value::Int(2));
    assert!(guest.read_data(client, "version").is_err());
}

#[test]
fn two_apos_coordinate_through_one_site() {
    // Interoperability programming: an interop program at the client site
    // combines two imported services.
    let (mut fed, nodes) = star_federation(6, 3, LinkConfig::lan()).unwrap();
    let (hub_a, hub_b, client_site) = (nodes[0], nodes[1], nodes[2]);
    fed.link(client_site, hub_b).unwrap();
    fed.link(hub_b, hub_a).unwrap();

    // Service 1 at hub_a: the employee db (already linked to hub_a via the
    // star topology: every spoke linked to nodes[0]).
    let db = employee_db_class()
        .instantiate_as(fed.runtime_mut(hub_a).unwrap().ids_mut().next_id(), None);
    fed.integrate_apo(
        hub_a,
        "db",
        db,
        AmbassadorSpec::relay_only()
            .with_methods(["salary_of"])
            .with_data(["employees"]),
    )
    .unwrap();

    // Service 2 at hub_b: a tax calculator.
    let tax = ClassSpec::new("tax")
        .fixed_data("rate_percent", DataItem::public(Value::Int(25)))
        .fixed_method(
            "net_of",
            Method::public(
                MethodBody::script(
                    "param gross; return gross - gross * self.get(\"rate_percent\") / 100;",
                )
                .unwrap(),
            ),
        )
        .instantiate_as(fed.runtime_mut(hub_b).unwrap().ids_mut().next_id(), None);
    fed.integrate_apo(
        hub_b,
        "tax",
        tax,
        AmbassadorSpec::relay_only()
            .with_methods(["net_of"])
            .with_data(["rate_percent"]),
    )
    .unwrap();

    let db_amb = fed.import_apo(client_site, hub_a, "db").unwrap();
    let tax_amb = fed.import_apo(client_site, hub_b, "tax").unwrap();
    let client = fed.runtime_mut(client_site).unwrap().ids_mut().next_id();

    // The coordination: gross from one service, net from the other.
    let gross = fed
        .call_through_ambassador(
            client_site,
            client,
            db_amb,
            "salary_of",
            &[Value::from("carol")],
        )
        .unwrap();
    let net = fed
        .call_through_ambassador(
            client_site,
            client,
            tax_amb,
            "net_of",
            std::slice::from_ref(&gross),
        )
        .unwrap();
    assert_eq!(gross, Value::Int(130));
    assert_eq!(net, Value::Int(98)); // 130 - 32 (integer division of 130*25/100)
}

#[test]
fn ambassador_identity_is_stable_across_the_wire() {
    let (mut fed, nodes) = star_federation(7, 2, LinkConfig::lan()).unwrap();
    let hub = nodes[0];
    let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
    let (spoke, amb) = ambs[0];
    // The deployed record at the hub and the guest record at the spoke
    // agree on the ambassador identity (decentralized naming worked).
    let deployed = fed.deployed_ambassadors(hub, "employee-db").unwrap();
    assert_eq!(deployed, vec![(spoke, amb)]);
    let info = fed.guest_info(spoke, amb).unwrap();
    assert_eq!(info.origin_node, hub);
    // And its origin principal is the APO.
    let apo_id = fed.apo_id(hub, "employee-db").unwrap();
    assert_eq!(
        fed.runtime(spoke).unwrap().object(amb).unwrap().origin(),
        apo_id
    );
}

#[test]
fn interop_program_coordinates_guest_ambassadors() {
    // Figure 2's Interop component: a coordination-level program installed
    // in the IOO's extensible section, driving two imported services.
    let (mut fed, nodes) = star_federation(8, 3, LinkConfig::lan()).unwrap();
    let (hub_a, hub_b, client_site) = (nodes[0], nodes[1], nodes[2]);
    fed.link(client_site, hub_b).unwrap();

    let db = employee_db_class()
        .instantiate_as(fed.runtime_mut(hub_a).unwrap().ids_mut().next_id(), None);
    fed.integrate_apo(
        hub_a,
        "db",
        db,
        AmbassadorSpec::relay_only()
            .with_methods(["salary_of", "department_total"])
            .with_data(["employees"]),
    )
    .unwrap();
    let bonus = mrom::core::ClassSpec::new("bonus")
        .fixed_method(
            "bonus_for",
            Method::public(MethodBody::script("param salary; return salary / 10;").unwrap()),
        )
        .instantiate_as(fed.runtime_mut(hub_b).unwrap().ids_mut().next_id(), None);
    fed.integrate_apo(
        hub_b,
        "bonus",
        bonus,
        AmbassadorSpec::relay_only().with_methods(["bonus_for"]),
    )
    .unwrap();

    let db_amb = fed.import_apo(client_site, hub_a, "db").unwrap();
    let bonus_amb = fed.import_apo(client_site, hub_b, "bonus").unwrap();

    // The interop program: total compensation = salary + bonus, composed
    // from two guest Ambassadors by object reference.
    fed.install_interop_program(
        client_site,
        "total_comp",
        r#"
        param db_ref;
        param bonus_ref;
        param name;
        let salary = self.send(db_ref, "salary_of", [name]);
        let bonus = self.send(bonus_ref, "bonus_for", [salary]);
        return salary + bonus;
        "#,
    )
    .unwrap();

    let out = fed
        .run_interop(
            client_site,
            "total_comp",
            &[
                Value::ObjectRef(db_amb),
                Value::ObjectRef(bonus_amb),
                Value::from("alice"),
            ],
        )
        .unwrap();
    assert_eq!(out, Value::Int(132)); // 120 + 12

    // The guest listing an interop author would use.
    let mut guests = fed.guests(client_site).unwrap();
    guests.sort_by(|a, b| a.1.cmp(&b.1));
    assert_eq!(guests.len(), 2);
    assert_eq!(guests[0].1, "bonus");
    assert_eq!(guests[1].1, "db");

    // Duplicate program names are rejected; a second site is unaffected.
    assert!(fed
        .install_interop_program(client_site, "total_comp", "return 0;")
        .is_err());
    assert!(fed
        .install_interop_program(hub_a, "total_comp", "return 0;")
        .is_ok());
}

#[test]
fn dispatch_object_moves_agents_and_recovers_on_failure() {
    let (mut fed, nodes) = star_federation(9, 3, LinkConfig::lan()).unwrap();
    let (hub, a, b) = (nodes[0], nodes[1], nodes[2]);
    // Build a minimal agent with an arrival hook at spoke `a`.
    let rt = fed.runtime_mut(a).unwrap();
    let agent = mrom::core::ObjectBuilder::new(rt.ids_mut().next_id())
        .class("agent")
        .meta_acl(mrom::core::Acl::Public)
        .ext_data("stamps", mrom::core::DataItem::public(Value::list([])))
        .ext_method(
            "on_arrival",
            Method::public(
                MethodBody::script(
                    "param ctx; self.set(\"stamps\", push(self.get(\"stamps\"), ctx[\"host_site\"])); return true;",
                )
                .unwrap(),
            ),
        )
        .build();
    let id = agent.id();
    rt.adopt(agent).unwrap();

    // Moving to an unlinked destination fails fast; the object stays put.
    assert!(matches!(
        fed.dispatch_object(a, b, id),
        Err(HadasError::NotLinked { .. })
    ));
    assert!(fed.runtime(a).unwrap().object(id).is_some());

    // Move to the hub: arrival hook runs there.
    fed.dispatch_object(a, hub, id).unwrap();
    assert!(fed.runtime(a).unwrap().object(id).is_none());
    let stamps = fed
        .runtime(hub)
        .unwrap()
        .object(id)
        .unwrap()
        .read_data(id, "stamps")
        .unwrap();
    assert_eq!(stamps, Value::list([Value::Int(hub.0 as i64)]));

    // A partition makes the move time out — and the object is restored
    // locally, never lost in transit.
    fed.net_config_mut().partition(hub, a);
    assert!(matches!(
        fed.dispatch_object(hub, a, id),
        Err(HadasError::Timeout { .. })
    ));
    assert!(fed.runtime(hub).unwrap().object(id).is_some());
    fed.net_config_mut().heal(hub, a);
    fed.dispatch_object(hub, a, id).unwrap();
    let stamps = fed
        .runtime(a)
        .unwrap()
        .object(id)
        .unwrap()
        .read_data(id, "stamps")
        .unwrap();
    assert_eq!(
        stamps,
        Value::list([Value::Int(hub.0 as i64), Value::Int(a.0 as i64)])
    );
}

#[test]
fn dispatch_rejects_non_mobile_objects_without_losing_them() {
    let (mut fed, nodes) = star_federation(10, 2, LinkConfig::lan()).unwrap();
    let (hub, spoke) = (nodes[0], nodes[1]);
    let rt = fed.runtime_mut(spoke).unwrap();
    let rooted = mrom::core::ObjectBuilder::new(rt.ids_mut().next_id())
        .fixed_method(
            "native",
            Method::new(MethodBody::native(|_, _| Ok(Value::Null))),
        )
        .build();
    let id = rooted.id();
    rt.adopt(rooted).unwrap();
    assert!(matches!(
        fed.dispatch_object(spoke, hub, id),
        Err(HadasError::Model(mrom::core::MromError::NotMobile { .. }))
    ));
    // Still at home, still callable.
    assert!(fed.runtime(spoke).unwrap().object(id).is_some());
}

#[test]
fn hostile_wire_garbage_does_not_wedge_the_engine() {
    let (mut fed, nodes) = star_federation(11, 2, LinkConfig::lan()).unwrap();
    let (hub, spoke) = (nodes[0], nodes[1]);
    integrate_db_like(&mut fed, hub);

    // Blast garbage and half-valid frames at both sites, interleaved with
    // a real operation.
    for junk in [
        vec![],
        vec![0xde, 0xad, 0xbe, 0xef],
        b"MR\x01\x7e".to_vec(),                    // framed, unknown tag
        mrom::value::wire::encode(&Value::Int(5)), // valid value, not a protocol message
    ] {
        fed.inject_raw(spoke, hub, junk.clone()).unwrap();
        fed.inject_raw(hub, spoke, junk).unwrap();
    }
    // A real import must still work with the junk in flight (the engine
    // skips what it cannot decode while pumping).
    let amb = fed.import_apo(spoke, hub, "db").unwrap();
    fed.pump_all();
    let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
    assert_eq!(
        fed.call_through_ambassador(spoke, client, amb, "count", &[])
            .unwrap(),
        Value::Int(4)
    );
}

fn integrate_db_like(fed: &mut Federation, at: NodeId) {
    let apo =
        employee_db_class().instantiate_as(fed.runtime_mut(at).unwrap().ids_mut().next_id(), None);
    fed.integrate_apo(
        at,
        "db",
        apo,
        AmbassadorSpec::relay_only()
            .with_methods(["count"])
            .with_data(["employees"]),
    )
    .unwrap();
}
