//! Scale checks for the §1 requirement that "the model should not be
//! limited by the number, size, or geographical dispersion of the objects
//! in the system": thousands of objects per node, a wide federation, and
//! identity uniqueness across the whole universe.

use std::collections::HashSet;

use mrom::core::{ClassSpec, Method, MethodBody, Runtime};
use mrom::hadas::scenarios::{deploy_employee_db, star_federation};
use mrom::net::LinkConfig;
use mrom::value::{NodeId, Value};

#[test]
fn ten_thousand_objects_on_one_node() {
    let mut rt = Runtime::new(NodeId(1));
    rt.classes_mut()
        .register(ClassSpec::new("cell").fixed_method(
            "tick",
            Method::public(MethodBody::script("param x; return x + 1;").unwrap()),
        ))
        .unwrap();
    let ids: Vec<_> = (0..10_000).map(|_| rt.create("cell").unwrap()).collect();
    assert_eq!(rt.object_count(), 10_000);
    // All identities are distinct (decentralized naming holds at volume).
    let unique: HashSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), 10_000);
    // Sampled invocations stay correct across the population.
    for (i, &id) in ids.iter().enumerate().step_by(997) {
        assert_eq!(
            rt.invoke_as_system(id, "tick", &[Value::Int(i as i64)])
                .unwrap(),
            Value::Int(i as i64 + 1)
        );
    }
}

#[test]
fn identities_are_unique_across_a_wide_universe() {
    // 40 nodes × 500 objects: no collisions anywhere.
    let mut all = HashSet::new();
    for n in 1..=40u64 {
        let mut gen = mrom::value::IdGenerator::new(NodeId(n));
        for _ in 0..500 {
            assert!(all.insert(gen.next_id()), "collision at node {n}");
        }
    }
    assert_eq!(all.len(), 20_000);
}

#[test]
fn thirty_site_federation_brings_up_and_serves() {
    // The fleet harness drives the same thirty-site star bring-up the
    // hand-rolled version of this test used to, plus Zipf traffic,
    // migrations, and churn — and then checks the global invariants
    // (single host per object, exactly-once counter windows, drained
    // wire, balanced accounting, telemetry accounting) instead of a few
    // hand-picked counters.
    let cfg = mrom::fleet::FleetConfig {
        topology: mrom::net::Topology::Star,
        sites: 30,
        objects_per_site: 20,
        invocations: 600,
        churn_events: 3,
        migration_every: 25,
        zipf_permille: 1100,
        workers: 1,
        ..mrom::fleet::FleetConfig::smoke()
    };
    let run = mrom::fleet::run_fleet(&cfg, 123).unwrap();
    run.report.assert_invariants();
    assert_eq!(run.report.sites, 30);
    assert_eq!(run.report.objects, 600);
    assert!(run.report.ops_ok > 0, "spokes serve traffic");
    assert!(run.report.migrations_ok > 0, "objects move between sites");
    assert_eq!(run.report.crashes, 3, "churn hit the spokes");
    // Traffic accounting survived the whole run.
    assert!(run.report.stats.bytes_sent > 50_000);

    // The §5 employee-DB deployment still rides on the same federation
    // machinery: bring one up beside the fleet to keep the original
    // scenario covered end to end.
    let (mut fed, nodes) = star_federation(123, 30, LinkConfig::lan()).unwrap();
    let hub = nodes[0];
    let ambs = deploy_employee_db(&mut fed, hub, &nodes[1..]).unwrap();
    assert_eq!(ambs.len(), 29);
    for &(spoke, amb) in &ambs {
        let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
        assert_eq!(
            fed.call_through_ambassador(spoke, client, amb, "count", &[])
                .unwrap(),
            Value::Int(4)
        );
    }
    assert_eq!(fed.site_stats(hub).unwrap().deployed, 29);
}

#[test]
fn big_object_survives_migration_and_persistence() {
    // A single object holding ~1 MB of state round-trips through image
    // and depot without loss.
    let mut rt = Runtime::new(NodeId(9));
    rt.classes_mut()
        .register(ClassSpec::new("warehouse").fixed_method(
            "inventory_size",
            Method::public(MethodBody::script("return len(self.get(\"inventory\"));").unwrap()),
        ))
        .unwrap();
    let id = rt.create("warehouse").unwrap();
    let big_list = Value::List(
        (0..10_000)
            .map(|i| Value::Str(format!("item-{i:06}-{}", "x".repeat(90))))
            .collect(),
    );
    rt.object_mut(id)
        .unwrap()
        .add_data(id, "inventory", big_list)
        .unwrap();

    let obj = rt.evict(id).unwrap();
    let image = obj.migration_image(id).unwrap();
    assert!(image.len() > 900_000, "image only {} bytes", image.len());
    let back = mrom::core::MromObject::from_image(&image).unwrap();
    let mut rt2 = Runtime::new(NodeId(10));
    rt2.adopt(back).unwrap();
    assert_eq!(
        rt2.invoke_as_system(id, "inventory_size", &[]).unwrap(),
        Value::Int(10_000)
    );

    let mut depot = mrom::persist::Depot::new(mrom::persist::MemStore::new());
    depot.save(&rt2.object(id).unwrap()).unwrap();
    assert_eq!(depot.restore(id).unwrap(), *rt2.object(id).unwrap());
}
