//! Workspace-level chaos sweep: the fault-tolerant federation survives
//! the full scenario matrix across many seeds, and every run is
//! reproducible byte for byte.
//!
//! `MROM_CHAOS_SEEDS` widens the sweep (CI sets it); the default keeps
//! the tier-1 test run fast.

use mrom::hadas::chaos::{
    run_scenario, run_scenario_with_site_workers, ChaosReport, ChaosScenario,
};

fn sweep_seeds() -> Vec<u64> {
    let count = std::env::var("MROM_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(4);
    (1..=count.max(1)).collect()
}

fn run(scenario: ChaosScenario, seed: u64) -> ChaosReport {
    run_scenario(scenario, seed)
        .unwrap_or_else(|e| panic!("{} seed {seed} errored: {e}", scenario.name()))
}

#[test]
fn chaos_matrix_upholds_global_invariants() {
    let mut runs = 0;
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let report = run(scenario, seed);
            report.assert_invariants();
            runs += 1;
        }
    }
    assert_eq!(runs, sweep_seeds().len() * ChaosScenario::ALL.len());
}

#[test]
fn chaos_runs_are_reproducible_byte_for_byte() {
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let first = run(scenario, seed);
            let second = run(scenario, seed);
            // Structural equality over every counter...
            assert_eq!(first, second, "{} seed {seed}", scenario.name());
            // ...and literal byte equality of the rendered NetStats, the
            // determinism witness the harness promises.
            assert_eq!(
                format!("{:?}", first.stats),
                format!("{:?}", second.stats),
                "{} seed {seed} NetStats must match byte for byte",
                scenario.name()
            );
        }
    }
}

#[test]
fn concurrent_site_matrix_upholds_global_invariants() {
    // ConcurrentSite: the same scenario matrix with every site running a
    // 4-thread invocation pool. Same invariants, same sweep width.
    let mut runs = 0;
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let report = run_scenario_with_site_workers(scenario, seed, 4).unwrap_or_else(|e| {
                panic!("{} seed {seed} workers=4 errored: {e}", scenario.name())
            });
            report.assert_invariants();
            runs += 1;
        }
    }
    assert_eq!(runs, sweep_seeds().len() * ChaosScenario::ALL.len());
}

#[test]
fn faults_actually_fire_across_the_sweep() {
    // Guards the harness against silently degenerating into a fault-free
    // run (e.g. a future refactor dropping the link overrides): across
    // the sweep we must observe drops, duplicates, and failed ops.
    let mut dropped = 0;
    let mut duplicated = 0;
    let mut failed_ops = 0;
    for seed in sweep_seeds() {
        for scenario in ChaosScenario::ALL {
            let report = run(scenario, seed);
            dropped += report.stats.messages_dropped;
            duplicated += report.stats.messages_duplicated;
            failed_ops += u64::from(report.ops_failed);
        }
    }
    assert!(dropped > 0, "loss/partition/crash faults fired");
    assert!(duplicated > 0, "duplication faults fired");
    assert!(failed_ops > 0, "some operations were forced to fail");
}
