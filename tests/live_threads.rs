//! Real-concurrency integration: mobile objects migrating between node
//! runtimes that live on separate OS threads, over the crossbeam-backed
//! live transport. This validates what the deterministic simulator cannot:
//! that migration images, runtimes, and protocol plumbing are `Send` and
//! survive genuine parallelism.

use std::thread;
use std::time::Duration;

use mrom::core::{ClassSpec, DataItem, Method, MethodBody, MromObject, Runtime};
use mrom::net::{live_cluster, LiveDelivery, LiveNode};
use mrom::value::{NodeId, Value};

/// One generous deadline for any single cross-thread hop. The receive
/// itself is event-driven (a blocking channel wait, no polling); the
/// deadline exists only so a genuinely wedged transport fails the test
/// instead of hanging it, and is sized for heavily loaded CI machines
/// rather than the expected microseconds.
const HOP_DEADLINE: Duration = Duration::from_secs(120);

/// Event-driven receive: parks the thread until the message arrives and
/// fails loudly (with context) if the transport wedges.
fn recv_or_die(h: &LiveNode, what: &str) -> LiveDelivery {
    h.recv_timeout(HOP_DEADLINE).unwrap_or_else(|| {
        panic!(
            "{what}: nothing arrived at {} within {HOP_DEADLINE:?}",
            h.node()
        )
    })
}

fn worker_class() -> ClassSpec {
    ClassSpec::new("worker")
        .fixed_data("log", DataItem::public(Value::list([])))
        .fixed_method(
            "work",
            Method::public(
                MethodBody::script(
                    r#"
                    param node;
                    let log = self.get("log");
                    self.set("log", push(log, node));
                    return len(self.get("log"));
                    "#,
                )
                .unwrap(),
            ),
        )
}

/// An object ping-pongs between two threads N times, doing work at each
/// stop; the visit log must be perfectly alternating and complete.
#[test]
fn object_ping_pongs_between_threads() {
    const ROUNDS: usize = 16;
    let mut handles = live_cluster(&[NodeId(1), NodeId(2)]).unwrap();
    let h2 = handles.pop().unwrap();
    let h1 = handles.pop().unwrap();

    let hop = |rt: &mut Runtime, obj_id, here: NodeId| {
        rt.invoke_as_system(obj_id, "work", &[Value::Int(here.0 as i64)])
            .unwrap();
        let obj = rt.evict(obj_id).unwrap();
        obj.migration_image(obj_id).unwrap()
    };

    let t1 = thread::spawn(move || {
        let mut rt = Runtime::new(NodeId(1));
        let obj = worker_class().instantiate_as(rt.ids_mut().next_id(), None);
        let obj_id = obj.id();
        rt.adopt(obj).unwrap();
        // First leg.
        let image = hop(&mut rt, obj_id, NodeId(1));
        h1.send(NodeId(2), image).unwrap();
        // Keep volleying.
        for round in 0..ROUNDS - 1 {
            let d = recv_or_die(&h1, &format!("return leg {round}"));
            let obj = MromObject::from_image(&d.payload).unwrap();
            rt.adopt(obj).unwrap();
            let image = hop(&mut rt, obj_id, NodeId(1));
            h1.send(NodeId(2), image).unwrap();
        }
        // Final receive: the object retires at node 1.
        let d = recv_or_die(&h1, "final leg");
        let obj = MromObject::from_image(&d.payload).unwrap();
        rt.adopt(obj).unwrap();
        let log = rt.object(obj_id).unwrap().read_data(obj_id, "log").unwrap();
        (obj_id, log)
    });

    let t2 = thread::spawn(move || {
        let mut rt = Runtime::new(NodeId(2));
        for round in 0..ROUNDS {
            let d = recv_or_die(&h2, &format!("inbound leg {round}"));
            let obj = MromObject::from_image(&d.payload).unwrap();
            let obj_id = obj.id();
            rt.adopt(obj).unwrap();
            let image = hop(&mut rt, obj_id, NodeId(2));
            h2.send(NodeId(1), image).unwrap();
        }
    });

    t2.join().unwrap();
    let (_, log) = t1.join().unwrap();
    let visits = log.as_list().unwrap();
    assert_eq!(visits.len(), 2 * ROUNDS);
    for (i, v) in visits.iter().enumerate() {
        let expected = if i % 2 == 0 { 1 } else { 2 };
        assert_eq!(v, &Value::Int(expected), "visit {i}");
    }
}

/// Many agents migrate concurrently from one producer thread to many
/// consumer threads; every agent arrives exactly once and works.
#[test]
fn fan_out_migration_under_parallel_load() {
    const CONSUMERS: u64 = 4;
    const AGENTS_PER_CONSUMER: usize = 25;
    let nodes: Vec<NodeId> = (0..=CONSUMERS).map(NodeId).collect();
    let mut handles = live_cluster(&nodes).unwrap();
    let producer = handles.remove(0);

    let consumers: Vec<_> = handles
        .into_iter()
        .map(|h| {
            thread::spawn(move || {
                let mut rt = Runtime::new(h.node());
                let mut done = 0usize;
                while done < AGENTS_PER_CONSUMER {
                    let d = recv_or_die(&h, &format!("agent {done}"));
                    let obj = MromObject::from_image(&d.payload).unwrap();
                    let id = obj.id();
                    rt.adopt(obj).unwrap();
                    let n = rt
                        .invoke_as_system(id, "work", &[Value::Int(h.node().0 as i64)])
                        .unwrap();
                    assert_eq!(n, Value::Int(1));
                    done += 1;
                }
                done
            })
        })
        .collect();

    let mut rt = Runtime::new(NodeId(0));
    for _round in 0..AGENTS_PER_CONSUMER {
        for target in 1..=CONSUMERS {
            let obj = worker_class().instantiate_as(rt.ids_mut().next_id(), None);
            let id = obj.id();
            rt.adopt(obj).unwrap();
            let obj = rt.evict(id).unwrap();
            let image = obj.migration_image(id).unwrap();
            producer.send(NodeId(target), image).unwrap();
        }
    }

    let total: usize = consumers.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(total, CONSUMERS as usize * AGENTS_PER_CONSUMER);
    // Safe to read only after every consumer joined: the live transport
    // records the delivery at send time, and all sends happen-before the
    // joins above.
    let stats = producer.stats_snapshot();
    assert_eq!(
        stats.messages_delivered,
        CONSUMERS * AGENTS_PER_CONSUMER as u64
    );
    assert_eq!(stats.messages_dropped, 0);
}
