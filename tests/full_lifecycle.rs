//! Cross-crate integration: an object's full life — creation, mutation,
//! wrapping, migration over the simulated network, persistence, recovery —
//! exercised through the public facade.

use mrom::core::{
    invoke, Acl, ClassSpec, DataItem, InvokeLimits, Method, MethodBody, MromError, MromObject,
    NoWorld, Runtime,
};
use mrom::net::{LinkConfig, NetworkConfig, SimNet};
use mrom::persist::{BlobStore, Depot, FileStore, MemStore};
use mrom::value::{NodeId, ObjectId, Value};

fn agent_class() -> ClassSpec {
    ClassSpec::new("agent")
        .fixed_data("name", DataItem::public(Value::from("scout")))
        .fixed_method(
            "report",
            Method::public(
                MethodBody::script(
                    "return self.get(\"name\") + \" at hop \" + str(self.get(\"hops\"));",
                )
                .unwrap(),
            ),
        )
        .ext_data("hops", DataItem::public(Value::Int(0)))
        .ext_method(
            "hop",
            Method::public(
                MethodBody::script(
                    "self.set(\"hops\", self.get(\"hops\") + 1); return self.get(\"hops\");",
                )
                .unwrap(),
            ),
        )
}

/// An agent hops across three runtimes over the simulated network,
/// mutating itself along the way; every mutation survives every hop.
#[test]
fn agent_roams_three_nodes_via_the_network() {
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let mut runtimes: Vec<Runtime> = nodes.iter().map(|&n| Runtime::new(n)).collect();
    let mut net = SimNet::new(NetworkConfig::new(99).with_default_link(LinkConfig::lan()));
    for &n in &nodes {
        net.add_node(n).unwrap();
    }

    // Born at node 1.
    let agent = agent_class().instantiate_as(runtimes[0].ids_mut().next_id(), None);
    let agent_id = agent.id();
    runtimes[0].adopt(agent).unwrap();

    for i in 0..nodes.len() - 1 {
        // Run it a bit, then let it extend itself with a souvenir of the
        // current node.
        runtimes[i].invoke_as_system(agent_id, "hop", &[]).unwrap();
        let node_num = nodes[i].0 as i64;
        runtimes[i]
            .invoke(
                agent_id,
                agent_id,
                "addDataItem",
                &[
                    Value::Str(format!("souvenir_{node_num}")),
                    Value::Int(node_num),
                ],
            )
            .unwrap();

        // Evict, self-serialize, ship, unpack, adopt.
        let obj = runtimes[i].evict(agent_id).unwrap();
        let image = obj.migration_image(agent_id).unwrap();
        net.send(nodes[i], nodes[i + 1], image).unwrap();
        let delivery = net.step().expect("image in flight");
        assert_eq!(delivery.dst, nodes[i + 1]);
        let unpacked = MromObject::from_image(&delivery.payload).unwrap();
        runtimes[i + 1].adopt(unpacked).unwrap();
    }

    // At the final node: state + structure accumulated along the route.
    let final_rt = &mut runtimes[2];
    assert_eq!(
        final_rt.invoke_as_system(agent_id, "hop", &[]).unwrap(),
        Value::Int(3)
    );
    assert_eq!(
        final_rt.invoke_as_system(agent_id, "report", &[]).unwrap(),
        Value::from("scout at hop 3")
    );
    let obj = final_rt.object(agent_id).unwrap();
    // Self-added items default to origin-private: readable by the agent
    // itself, invisible to the host.
    assert_eq!(
        obj.read_data(agent_id, "souvenir_1").unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        obj.read_data(agent_id, "souvenir_2").unwrap(),
        Value::Int(2)
    );
    assert!(obj.read_data(ObjectId::SYSTEM, "souvenir_1").is_err());
    // Exactly the image bytes crossed the network.
    assert_eq!(net.stats().messages_delivered, 2);
}

/// The persistence story end to end with the file backend: save, crash
/// (drop), recover, resume — including a corrupted-sibling quarantine.
#[test]
fn file_persistence_survives_restart_and_corruption() {
    let dir = std::env::temp_dir().join(format!("mrom-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("objects.log");

    let mut rt = Runtime::new(NodeId(7));
    rt.classes_mut().register(agent_class()).unwrap();
    let a = rt.create("agent").unwrap();
    let b = rt.create("agent").unwrap();
    rt.invoke_as_system(a, "hop", &[]).unwrap();
    rt.invoke_as_system(a, "hop", &[]).unwrap();
    rt.invoke_as_system(b, "hop", &[]).unwrap();

    {
        let mut depot = Depot::new(FileStore::open(&log).unwrap());
        depot.save(&rt.object(a).unwrap()).unwrap();
        depot.save(&rt.object(b).unwrap()).unwrap();
        // Object a hops once more; re-save (log-structured replace).
        rt.invoke_as_system(a, "hop", &[]).unwrap();
        depot.save(&rt.object(a).unwrap()).unwrap();
    } // "crash": depot dropped, file closed

    // Restart: bootstrap everything back.
    let depot = Depot::new(FileStore::open(&log).unwrap());
    let (objs, failed) = depot.restore_all();
    assert_eq!(objs.len(), 2);
    assert!(failed.is_empty());
    let mut rt2 = Runtime::new(NodeId(7));
    for obj in objs {
        rt2.adopt(obj).unwrap();
    }
    assert_eq!(rt2.invoke_as_system(a, "hop", &[]).unwrap(), Value::Int(4));
    assert_eq!(rt2.invoke_as_system(b, "hop", &[]).unwrap(), Value::Int(2));

    // Corrupt b's stored image on disk; a must still recover.
    let mut store = depot.into_inner();
    let key = b.to_string();
    let mut raw = store.get(&key).unwrap().unwrap();
    raw[20] ^= 0xFF;
    store.put(&key, &raw).unwrap(); // write damaged bytes back
                                    // Damage the *decoded image*, not the record: the record CRC is now
                                    // valid for the damaged bytes, so corruption is caught at image level.
    let depot = Depot::new(store);
    let (objs, failed) = depot.restore_all();
    assert_eq!(objs.len() + failed.len(), 2);
    assert!(
        objs.iter().any(|o| o.id() == a),
        "the healthy object always recovers"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Security end to end: a hostile host runtime tries everything against a
/// visiting mobile object and gets nothing the ACLs do not grant.
#[test]
fn hostile_host_cannot_break_a_visiting_object() {
    let mut home = Runtime::new(NodeId(1));
    let mut hostile = Runtime::new(NodeId(666));

    let mut obj = agent_class().instantiate_as(home.ids_mut().next_id(), None);
    let me = obj.id();
    obj.add_data(me, "secret_plan", Value::from("classified"))
        .unwrap();
    // Lock meta-mutation completely before travelling.
    obj.set_meta_acl(me, Acl::Nobody).unwrap();
    let image = obj.migration_image(me); // Nobody blocks even the origin now
    assert!(matches!(image, Err(MromError::AccessDenied { .. })));

    // Rebuild with a travel-safe policy: meta stays origin-only.
    let mut obj = agent_class().instantiate_as(home.ids_mut().next_id(), None);
    let me = obj.id();
    obj.add_data(me, "secret_plan", Value::from("classified"))
        .unwrap();
    let image = obj.migration_image(me).unwrap();

    // The hostile node unpacks the visitor.
    let visitor = MromObject::from_image(&image).unwrap();
    let visitor_id = hostile.adopt(visitor).unwrap();
    let host_admin = hostile.ids_mut().next_id();

    // Public interface works.
    assert_eq!(
        hostile
            .invoke(host_admin, visitor_id, "report", &[])
            .unwrap(),
        Value::from("scout at hop 0")
    );
    // Secrets stay secret; structure stays intact; the body stays hidden.
    {
        let obj_ref = hostile.object(visitor_id).unwrap();
        assert!(obj_ref.read_data(host_admin, "secret_plan").is_err());
        assert!(!obj_ref
            .list_data(host_admin)
            .iter()
            .any(|(n, _)| n == "secret_plan"));
        let desc = obj_ref.method_descriptor(host_admin, "report").unwrap();
        assert!(desc.as_map().unwrap()["body"].is_null());
    }
    assert!(hostile
        .invoke(
            host_admin,
            visitor_id,
            "deleteMethod",
            &[Value::from("report")]
        )
        .is_err());
    assert!(hostile
        .invoke(
            host_admin,
            visitor_id,
            "addMethod",
            &[Value::from("backdoor"), Value::from("return 0;")]
        )
        .is_err());
    // Re-exporting the guest (stealing it with its bodies) is denied too.
    assert!(hostile
        .object(visitor_id)
        .unwrap()
        .migration_image(host_admin)
        .is_err());
}

/// Hostile mobile code cannot hold a host hostage: fuel, call depth, and
/// tower bounds all fire.
#[test]
fn resource_bombs_are_contained() {
    let mut rt = Runtime::new(NodeId(13));
    rt.set_limits(InvokeLimits {
        fuel: 200_000,
        ..InvokeLimits::default()
    });
    rt.classes_mut()
        .register(
            ClassSpec::new("bomb")
                .fixed_method(
                    "spin",
                    Method::public(MethodBody::script("while (true) { let x = 1; }").unwrap()),
                )
                .fixed_method(
                    "recurse",
                    Method::public(
                        MethodBody::script("return self.invoke(\"recurse\", []);").unwrap(),
                    ),
                )
                .fixed_method(
                    "alloc",
                    Method::public(MethodBody::script("return range(99999999);").unwrap()),
                ),
        )
        .unwrap();
    let bomb = rt.create("bomb").unwrap();
    for method in ["spin", "recurse", "alloc"] {
        let before = std::time::Instant::now();
        let err = rt.invoke_as_system(bomb, method, &[]).unwrap_err();
        assert!(
            before.elapsed().as_secs() < 5,
            "{method} must die quickly, took {:?}",
            before.elapsed()
        );
        assert!(
            matches!(err, MromError::Script(_) | MromError::CallDepthExceeded(_)),
            "{method}: {err}"
        );
    }
    // The host is intact and the object still answers.
    assert_eq!(rt.object_count(), 1);
}

/// The invocation tower composes with migration, persistence, and both
/// directions of ACL checking — the full Figure 1 + §5 semantics in one
/// scenario.
#[test]
fn towered_object_survives_full_round_trip() {
    let mut rt = Runtime::new(NodeId(4));
    let mut obj = agent_class().instantiate_as(rt.ids_mut().next_id(), None);
    let me = obj.id();
    // An audit level that counts invocations.
    obj.add_data(me, "audit_count", Value::Int(0)).unwrap();
    obj.add_method(
        me,
        "audit",
        Method::public(
            MethodBody::script(
                r#"
            param m;
            param a;
            self.set("audit_count", self.get("audit_count") + 1);
            return self.invoke(m, a);
            "#,
            )
            .unwrap(),
        ),
    )
    .unwrap();
    obj.install_meta_invoke(me, "audit").unwrap();

    // Exercise, persist, restore, exercise again.
    let mut world = NoWorld;
    let caller = rt.ids_mut().next_id();
    invoke(&mut obj, &mut world, caller, "hop", &[]).unwrap();
    invoke(&mut obj, &mut world, caller, "report", &[]).unwrap();
    assert_eq!(obj.read_data(me, "audit_count").unwrap(), Value::Int(2));

    let mut depot = Depot::new(MemStore::new());
    depot.save(&obj).unwrap();
    let mut back = depot.restore(me).unwrap();
    assert_eq!(back.tower(), [std::sync::Arc::<str>::from("audit")]);
    invoke(&mut back, &mut world, caller, "hop", &[]).unwrap();
    assert_eq!(back.read_data(me, "audit_count").unwrap(), Value::Int(3));
    assert_eq!(
        invoke(
            &mut back,
            &mut world,
            caller,
            "getDataItem",
            &[Value::from("hops")]
        )
        .unwrap()
        .as_map()
        .unwrap()["value"],
        Value::Int(2)
    );
    // getDataItem itself went through the tower.
    assert_eq!(back.read_data(me, "audit_count").unwrap(), Value::Int(4));
}

/// Node-level checkpoint/restore: every mobile object a runtime hosts is
/// persisted in one call; native-bodied objects are reported, not lost.
#[test]
fn runtime_checkpoint_and_restore() {
    let mut rt = Runtime::new(NodeId(31));
    rt.classes_mut().register(agent_class()).unwrap();
    let a = rt.create("agent").unwrap();
    let b = rt.create("agent").unwrap();
    rt.invoke_as_system(a, "hop", &[]).unwrap();
    // One object with a native body: it cannot checkpoint.
    let pinned_obj = mrom::core::ObjectBuilder::new(rt.ids_mut().next_id())
        .fixed_method(
            "native",
            Method::new(MethodBody::native(|_, _| Ok(Value::Null))),
        )
        .build();
    let pinned_id = rt.adopt(pinned_obj).unwrap();

    let mut depot = Depot::new(MemStore::new());
    let objects: Vec<_> = rt
        .object_ids()
        .into_iter()
        .filter_map(|id| rt.object(id).map(|o| o.clone()))
        .collect();
    let (saved, pinned) = depot.checkpoint(objects.iter()).unwrap();
    assert_eq!(saved, 2);
    assert_eq!(pinned, vec![pinned_id]);

    // Cold restart.
    let (restored, failed) = depot.restore_all();
    assert!(failed.is_empty());
    let mut rt2 = Runtime::new(NodeId(31));
    for obj in restored {
        rt2.adopt(obj).unwrap();
    }
    assert_eq!(rt2.object_count(), 2);
    assert_eq!(rt2.invoke_as_system(a, "hop", &[]).unwrap(), Value::Int(2));
    assert_eq!(rt2.invoke_as_system(b, "hop", &[]).unwrap(), Value::Int(1));
}
