//! Admission control at the HADAS trust boundaries.
//!
//! The federation is where foreign bytes first become live objects, so it
//! is where `AdmissionPolicy::Strict` must bite: a migrating object whose
//! methods reference state that did not travel with it is refused at the
//! *receiving* site (and survives intact at the sender), and an exported
//! ambassador whose copied methods were sliced away from their data is
//! refused before it ever ships.

use mrom::core::{Acl, AdmissionPolicy, DataItem, Method, MethodBody, ObjectBuilder};
use mrom::hadas::scenarios::star_federation;
use mrom::hadas::{instantiate_ambassador_with_policy, AmbassadorSpec, Federation, HadasError};
use mrom::net::LinkConfig;
use mrom::value::{IdGenerator, NodeId, ObjectId, Value};

/// An agent whose only method reads a data item it does not carry — the
/// canonical "crafted migration image" the analyzer must catch.
fn adopt_defective_agent(fed: &mut Federation, at: NodeId) -> ObjectId {
    let rt = fed.runtime_mut(at).unwrap();
    let agent = ObjectBuilder::new(rt.ids_mut().next_id())
        .class("sloppy-agent")
        .meta_acl(Acl::Public)
        .ext_method(
            "leak",
            Method::public(MethodBody::script("return self.get(\"left_behind\");").unwrap()),
        )
        .build();
    let id = agent.id();
    rt.adopt(agent).unwrap();
    id
}

#[test]
fn strict_receive_path_refuses_a_crafted_migrant() {
    let (mut fed, nodes) = star_federation(41, 2, LinkConfig::lan()).unwrap();
    let (hub, spoke) = (nodes[0], nodes[1]);
    let id = adopt_defective_agent(&mut fed, spoke);

    // The receiving side runs the analyzer; the refusal travels back as a
    // protocol error and the object is restored at the origin, not lost.
    assert_eq!(
        fed.set_admission_policy(AdmissionPolicy::Strict),
        AdmissionPolicy::Off
    );
    match fed.dispatch_object(spoke, hub, id) {
        Err(HadasError::Remote(reason)) => {
            assert!(reason.contains("refused admission"), "reason: {reason}");
            assert!(reason.contains("dangling-data-item"), "reason: {reason}");
        }
        other => panic!("expected remote admission refusal, got {other:?}"),
    }
    assert!(fed.runtime(spoke).unwrap().object(id).is_some());
    assert!(fed.runtime(hub).unwrap().object(id).is_none());

    // Dropping back to Off admits the very same image.
    fed.set_admission_policy(AdmissionPolicy::Off);
    fed.dispatch_object(spoke, hub, id).unwrap();
    assert!(fed.runtime(hub).unwrap().object(id).is_some());
}

#[test]
fn off_is_the_default_and_admits_the_same_migrant() {
    let (mut fed, nodes) = star_federation(42, 2, LinkConfig::lan()).unwrap();
    let (hub, spoke) = (nodes[0], nodes[1]);
    assert_eq!(fed.admission_policy(), AdmissionPolicy::Off);
    let id = adopt_defective_agent(&mut fed, spoke);
    fed.dispatch_object(spoke, hub, id).unwrap();
    assert!(fed.runtime(hub).unwrap().object(id).is_some());
}

#[test]
fn warn_admits_but_strict_spares_clean_migrants() {
    let (mut fed, nodes) = star_federation(43, 2, LinkConfig::lan()).unwrap();
    let (hub, spoke) = (nodes[0], nodes[1]);

    // Defective agent passes under Warn (analysis runs, nothing blocks).
    let bad = adopt_defective_agent(&mut fed, spoke);
    fed.set_admission_policy(AdmissionPolicy::Warn);
    fed.dispatch_object(spoke, hub, bad).unwrap();

    // A self-contained agent passes even under Strict.
    let rt = fed.runtime_mut(spoke).unwrap();
    let clean = ObjectBuilder::new(rt.ids_mut().next_id())
        .class("tidy-agent")
        .meta_acl(Acl::Public)
        .ext_data("hops", DataItem::public(Value::Int(0)))
        .ext_method(
            "bump",
            Method::public(
                MethodBody::script("return self.set(\"hops\", self.get(\"hops\") + 1);").unwrap(),
            ),
        )
        .build();
    let clean_id = clean.id();
    rt.adopt(clean).unwrap();
    fed.set_admission_policy(AdmissionPolicy::Strict);
    fed.dispatch_object(spoke, hub, clean_id).unwrap();
    assert!(fed.runtime(hub).unwrap().object(clean_id).is_some());
}

/// An APO whose `count` method depends on the `employees` data item.
fn build_apo(fed: &mut Federation, at: NodeId) -> mrom::core::MromObject {
    let rt = fed.runtime_mut(at).unwrap();
    ObjectBuilder::new(rt.ids_mut().next_id())
        .class("directory")
        .fixed_data(
            "employees",
            DataItem::public(Value::list([Value::from("ada")])),
        )
        .fixed_method(
            "count",
            Method::public(MethodBody::script("return len(self.get(\"employees\"));").unwrap()),
        )
        .build()
}

#[test]
fn strict_export_refuses_an_ambassador_sliced_from_its_data() {
    let (mut fed, nodes) = star_federation(44, 2, LinkConfig::lan()).unwrap();
    let hub = nodes[0];
    let apo = build_apo(&mut fed, hub);
    let mut ids = IdGenerator::new(NodeId(77));

    // `count` is copied but `employees` stays behind: incoherent slice.
    let bad_spec = AmbassadorSpec::relay_only().with_methods(["count"]);
    match instantiate_ambassador_with_policy(
        &apo,
        "directory",
        hub,
        &bad_spec,
        &mut ids,
        AdmissionPolicy::Strict,
    ) {
        Err(HadasError::AdmissionRefused { at, .. }) => assert_eq!(at, hub),
        other => panic!("expected admission refusal, got {other:?}"),
    }
    // Off ships it anyway (today's behavior), and a coherent slice that
    // brings its data along satisfies even Strict.
    instantiate_ambassador_with_policy(
        &apo,
        "directory",
        hub,
        &bad_spec,
        &mut ids,
        AdmissionPolicy::Off,
    )
    .unwrap();
    let good_spec = AmbassadorSpec::relay_only()
        .with_methods(["count"])
        .with_data(["employees"]);
    instantiate_ambassador_with_policy(
        &apo,
        "directory",
        hub,
        &good_spec,
        &mut ids,
        AdmissionPolicy::Strict,
    )
    .unwrap();
}

#[test]
fn strict_federation_blocks_import_of_an_incoherent_export() {
    let (mut fed, nodes) = star_federation(45, 2, LinkConfig::lan()).unwrap();
    let (hub, spoke) = (nodes[0], nodes[1]);
    let apo = build_apo(&mut fed, hub);
    fed.integrate_apo(
        hub,
        "directory",
        apo,
        AmbassadorSpec::relay_only().with_methods(["count"]),
    )
    .unwrap();

    fed.set_admission_policy(AdmissionPolicy::Strict);
    assert!(fed.import_apo(spoke, hub, "directory").is_err());
    assert!(fed.guests(spoke).unwrap().is_empty());

    fed.set_admission_policy(AdmissionPolicy::Off);
    let amb = fed.import_apo(spoke, hub, "directory").unwrap();
    let client = fed.runtime_mut(spoke).unwrap().ids_mut().next_id();
    // Off ships the broken slice, and the defect Strict predicted fires
    // at first use: the copied body runs locally without its data.
    let crash = fed
        .call_through_ambassador(spoke, client, amb, "count", &[])
        .unwrap_err();
    assert!(crash.to_string().contains("employees"), "crash: {crash}");
}
